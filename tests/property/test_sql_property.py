"""Property-based tests: SQL query results against a Python model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine

values = st.integers(min_value=-50, max_value=50)
rows_strategy = st.lists(
    st.tuples(values, values),
    max_size=40,
    unique_by=lambda r: r[0],
)


def build(rows):
    engine = Engine()
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    for k, v in rows:
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?)", (k, v))
    engine.commit(txn)
    return engine


def query(engine, sql, params=()):
    txn = engine.begin()
    try:
        return engine.execute_sync(txn, "db", sql, params)
    finally:
        engine.commit(txn)


@settings(max_examples=50, deadline=None)
@given(rows_strategy, values, values)
def test_range_filter_matches_model(rows, lo, hi):
    engine = build(rows)
    result = query(engine,
                   "SELECT k FROM t WHERE k >= ? AND k <= ? ORDER BY k",
                   (lo, hi))
    expected = sorted(k for k, _ in rows if lo <= k <= hi)
    assert [r[0] for r in result.rows] == expected


@settings(max_examples=50, deadline=None)
@given(rows_strategy, values)
def test_point_lookup_matches_model(rows, probe):
    engine = build(rows)
    result = query(engine, "SELECT v FROM t WHERE k = ?", (probe,))
    expected = [v for k, v in rows if k == probe]
    assert [r[0] for r in result.rows] == expected


@settings(max_examples=50, deadline=None)
@given(rows_strategy)
def test_aggregates_match_model(rows):
    engine = build(rows)
    result = query(engine, "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t")
    count, total, low, high = result.rows[0]
    assert count == len(rows)
    if rows:
        vs = [v for _, v in rows]
        assert total == sum(vs)
        assert low == min(vs)
        assert high == max(vs)
    else:
        assert total is None and low is None and high is None


@settings(max_examples=50, deadline=None)
@given(rows_strategy, values)
def test_update_then_read_consistent(rows, delta):
    engine = build(rows)
    query(engine, "UPDATE t SET v = v + ?", (delta,))
    result = query(engine, "SELECT k, v FROM t ORDER BY k")
    expected = sorted((k, v + delta) for k, v in rows)
    assert result.rows == [tuple(e) for e in expected]


@settings(max_examples=50, deadline=None)
@given(rows_strategy, values)
def test_delete_matches_model(rows, threshold):
    engine = build(rows)
    result = query(engine, "DELETE FROM t WHERE v < ?", (threshold,))
    expected_deleted = sum(1 for _, v in rows if v < threshold)
    assert result.rowcount == expected_deleted
    remaining = query(engine, "SELECT COUNT(*) FROM t").scalar()
    assert remaining == len(rows) - expected_deleted


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_abort_is_identity(rows):
    engine = build(rows)
    before = query(engine, "SELECT k, v FROM t ORDER BY k").rows
    txn = engine.begin()
    engine.execute_sync(txn, "db", "UPDATE t SET v = 0")
    engine.execute_sync(txn, "db", "INSERT INTO t VALUES (999, 1)")
    engine.execute_sync(txn, "db", "DELETE FROM t WHERE k >= 0")
    engine.abort(txn)
    after = query(engine, "SELECT k, v FROM t ORDER BY k").rows
    assert before == after


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10))
def test_limit_offset_window(rows, limit, offset):
    engine = build(rows)
    result = query(engine,
                   f"SELECT k FROM t ORDER BY k LIMIT {limit} OFFSET {offset}")
    expected = sorted(k for k, _ in rows)[offset:offset + limit]
    assert [r[0] for r in result.rows] == expected


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_group_by_matches_model(rows):
    engine = build(rows)
    result = query(engine, "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v")
    model = {}
    for _, v in rows:
        model[v] = model.get(v, 0) + 1
    assert result.rows == sorted(model.items())
