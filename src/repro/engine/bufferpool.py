"""An LRU buffer-pool model.

The pool does not cache data (tables are in Python memory anyway); it
models *which pages would be resident* so the executor can distinguish
cheap cache hits from expensive disk reads. One pool serves all databases
an engine hosts — exactly the multi-tenant cache interference that makes
the paper's read-routing Option 1 (all reads of a database to one replica)
beat Option 3 (reads sprayed across replicas) in Figures 2-4: Option 1
keeps each database's working set hot on one machine, while Option 3
duplicates working sets across machines and evicts twice as much.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Tuple

PageId = Tuple[Hashable, ...]


@dataclass
class PoolStats:
    """Cumulative hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class AccessReport:
    """Hits/misses charged to one batch of page accesses."""

    hits: int = 0
    misses: int = 0

    def merge(self, other: "AccessReport") -> None:
        self.hits += other.hits
        self.misses += other.misses


class BufferPool:
    """Fixed-capacity LRU over page identifiers."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError(f"buffer pool needs >= 1 page: {capacity_pages}")
        self.capacity = capacity_pages
        self._pages: "OrderedDict[PageId, None]" = OrderedDict()
        self.stats = PoolStats()

    def __len__(self) -> int:
        return len(self._pages)

    def access(self, page: PageId) -> bool:
        """Touch one page; returns True on hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return False

    def access_many(self, pages) -> AccessReport:
        """Touch a sequence of pages, returning the batch hit/miss split."""
        report = AccessReport()
        for page in pages:
            if self.access(page):
                report.hits += 1
            else:
                report.misses += 1
        return report

    def invalidate_prefix(self, prefix: Tuple[Hashable, ...]) -> int:
        """Drop every resident page whose id starts with ``prefix``.

        Used when a database is dropped or migrated off the machine.
        Returns the number of pages dropped.
        """
        doomed = [p for p in self._pages if p[: len(prefix)] == prefix]
        for page in doomed:
            del self._pages[page]
        return len(doomed)

    def resident(self, page: PageId) -> bool:
        """Non-mutating residency probe (no stats impact)."""
        return page in self._pages
