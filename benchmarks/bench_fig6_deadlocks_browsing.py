"""Figure 6 — deadlock rate vs database size, browsing mix.

Browsing is ~95 % reads, so the absolute deadlock rate sits near zero at
every size — the paper's browsing plot is the flattest of the three.
"""

import pytest

from common import report
from deadlock_common import assert_deadlock_shape, run_deadlock_figure


@pytest.mark.benchmark(group="fig6")
def test_fig6_deadlocks_browsing(benchmark, capsys):
    text, data = benchmark.pedantic(
        lambda: run_deadlock_figure("browsing"), rounds=1, iterations=1)
    report("fig6_deadlocks_browsing", text, capsys)
    assert_deadlock_shape(data, write_heavy=False)
