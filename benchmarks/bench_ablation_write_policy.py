"""Ablation — aggressive vs conservative write acknowledgement.

Not a paper figure, but the design choice behind Table 1: the aggressive
controller exists because acknowledging after the first replica cuts
client-visible write latency. This ablation quantifies that latency win
under Option 1 (where aggressive is still serializable), justifying why
the paper bothers with the aggressive mode at all.
"""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.harness import format_table, run_tpcw_cluster
from repro.workloads.tpcw import TpcwScale

from common import report


def run_ablation():
    results = {}
    for policy in (WritePolicy.CONSERVATIVE, WritePolicy.AGGRESSIVE):
        results[policy] = run_tpcw_cluster(
            mix_name="ordering",
            read_option=ReadOption.OPTION_1,
            write_policy=policy,
            machines=4,
            n_databases=4,
            replicas=2,
            clients_per_db=4,
            duration_s=12.0,
            scale=TpcwScale(items=800, emulated_browsers=4),
            think_time_s=0.02,
            buffer_pool_pages=512,
        )
    rows = []
    for policy, result in results.items():
        mean_rt = (sum(c.response_time_total
                       for c in result.metrics.per_db.values())
                   / max(1, result.committed))
        rows.append([policy.value, result.throughput_tps,
                     mean_rt * 1000.0, result.deadlocks])
    text = format_table(
        ["write policy", "throughput (tps)", "mean txn latency (ms)",
         "deadlocks"], rows)
    return text, results


@pytest.mark.benchmark(group="ablation-write-policy")
def test_ablation_write_policy(benchmark, capsys):
    text, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_write_policy", text, capsys)
    conservative = results[WritePolicy.CONSERVATIVE]
    aggressive = results[WritePolicy.AGGRESSIVE]

    def mean_latency(result):
        return (sum(c.response_time_total
                    for c in result.metrics.per_db.values())
                / max(1, result.committed))

    # Aggressive acks on the first replica: latency must not be worse.
    assert mean_latency(aggressive) <= mean_latency(conservative) * 1.05
    assert aggressive.committed > 0 and conservative.committed > 0
