"""Integration tests for overload protection: per-tenant admission at
the statement entry point, hot-replica read shedding, the overload
monitor's invariant rules, and the stampede soak's isolation outcome."""

import pytest

from repro.analysis.invariants import check_trace
from repro.analysis.trace import TraceEvent
from repro.cluster import ClusterConfig, ClusterController, WritePolicy
from repro.cluster.controller import TransactionAborted
from repro.errors import OverloadRejectedError
from repro.harness.runner import run_stampede_soak
from repro.sim import Simulator
from repro.sla.model import Sla
from repro.workloads.microbench import KV_DDL
from tests.conftest import assert_no_violations, make_cluster

KEYS = 20


def make_admitted_cluster(sim, sla=None, machines=3, replicas=2,
                          **config_kwargs) -> ClusterController:
    controller = make_cluster(sim, machines=machines, admission_control=True,
                              **config_kwargs)
    controller.create_database("kv", KV_DDL, replicas=replicas, sla=sla)
    controller.bulk_load("kv", "kv", [(k, 0) for k in range(KEYS)])
    return controller


def burst(controller, transactions, key_offset=0):
    """Sim process: fire ``transactions`` update txns back to back;
    returns the list of abort causes (None for commits)."""
    conn = controller.connect("kv")
    outcomes = []
    for i in range(transactions):
        try:
            yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                               ((key_offset + i) % KEYS,))
            yield conn.commit()
        except TransactionAborted as exc:
            outcomes.append(exc.cause)
        else:
            outcomes.append(None)
    conn.close()
    return outcomes


class TestAdmissionEndToEnd:
    def test_burst_over_bucket_is_rejected_retryably(self, sim):
        # Sla floor 1 tps -> rate 1.5, capacity max(1, 3) = 3 tokens.
        controller = make_admitted_cluster(sim, sla=Sla(1.0, 0.05))
        proc = sim.process(burst(controller, 8))
        sim.run()
        outcomes = proc.value
        rejected = [c for c in outcomes
                    if isinstance(c, OverloadRejectedError)]
        assert rejected, "burst should overflow the token bucket"
        assert outcomes.count(None) >= 3, "burst capacity should admit"
        for cause in rejected:
            assert cause.database == "kv"
            assert cause.retryable is True

        counters = controller.metrics.per_db["kv"]
        assert counters.overload_rejected == len(rejected)
        assert counters.rejected == len(rejected)
        summary = controller.metrics.per_db_summary()["kv"]
        assert summary["overload_rejected"] == len(rejected)
        assert summary["overload_rejected_fraction"] == pytest.approx(
            len(rejected) / len(outcomes))
        assert summary["latency"]["count"] == summary["committed"]

        rejects = controller.trace.events(kind="admission_reject", db="kv")
        assert len(rejects) == len(rejected)
        assert all(e.extra["rate"] == pytest.approx(1.5) for e in rejects)
        assert_no_violations(controller)

    def test_bucket_refills_with_sim_time(self, sim):
        controller = make_admitted_cluster(sim, sla=Sla(1.0, 0.05))

        def paced():
            conn = controller.connect("kv")
            drained = yield from burst(controller, 6)
            yield sim.timeout(4.0)   # 1.5 tps * 4 s > one token
            try:
                yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
                yield conn.commit()
            except TransactionAborted as exc:
                drained.append(exc.cause)
            else:
                drained.append(None)
            conn.close()
            return drained

        proc = sim.process(paced())
        sim.run()
        assert proc.value[-1] is None, "refilled bucket should admit again"

    def test_no_sla_tenant_never_rejected(self, sim):
        controller = make_admitted_cluster(sim, sla=None)
        proc = sim.process(burst(controller, 20))
        sim.run()
        assert all(c is None for c in proc.value)
        assert controller.metrics.per_db["kv"].overload_rejected == 0

    def test_drop_database_forgets_bucket(self, sim):
        controller = make_admitted_cluster(sim, sla=Sla(1.0, 0.05))
        controller.drop_database("kv")
        assert "kv" not in controller.admission.buckets
        assert "kv" not in controller.slas


class TestReadShedding:
    def _run_readers(self, sim, controller, clients=4, reads=25):
        def reader(offset):
            conn = controller.connect("kv")
            committed = 0
            for i in range(reads):
                try:
                    yield conn.execute("SELECT v FROM kv WHERE k = ?",
                                       ((offset + i) % KEYS,))
                    yield conn.commit()
                except TransactionAborted:
                    pass
                else:
                    committed += 1
            conn.close()
            return committed

        procs = [sim.process(reader(c * 7)) for c in range(clients)]
        sim.run()
        return [p.value for p in procs]

    def test_overloaded_replica_sheds_reads(self, sim):
        config_kwargs = {"write_policy": WritePolicy.CONSERVATIVE}
        controller = make_admitted_cluster(sim, **config_kwargs)
        controller.config.admission.shed_inflight_watermark = 1
        committed = self._run_readers(sim, controller)
        assert sum(committed) > 0
        sheds = controller.trace.events(kind="shed_read", db="kv")
        assert sheds, "watermark 1 under concurrent readers must shed"
        for event in sheds:
            assert event.machine in controller.replica_map.replicas("kv")
        assert_no_violations(controller)

    def test_all_replicas_over_watermark_still_serves(self, sim):
        # The fairness regression: a single replica that is always over
        # the watermark must still serve every read (least-loaded
        # fallback), not starve the tenant.
        controller = make_admitted_cluster(sim, replicas=1, machines=1)
        controller.config.admission.shed_inflight_watermark = 1
        committed = self._run_readers(sim, controller, clients=3, reads=10)
        assert all(c == 10 for c in committed), \
            "shedding must never become unavailability"
        assert_no_violations(controller)

    def test_aggressive_policy_never_sheds(self, sim):
        # Theorem 1's serializability argument pins option-1 reads to
        # the designated replica under the aggressive policy.
        controller = make_admitted_cluster(
            sim, write_policy=WritePolicy.AGGRESSIVE)
        controller.config.admission.shed_inflight_watermark = 1
        self._run_readers(sim, controller)
        assert controller.trace.events(kind="shed_read") == []


def sla_window(seq, db, finished, rejected, bound=0.05, within=True):
    return TraceEvent(seq=seq, t=float(seq), kind="sla_window", db=db,
                      extra={"finished": finished, "rejected": rejected,
                             "fraction": rejected / finished,
                             "bound": bound, "within_rate": within,
                             "offered_tps": float(finished), "rate": 6.0})


class TestOverloadInvariantRules:
    def test_in_rate_breach_window_is_flagged(self):
        events = [sla_window(0, "kv1", finished=100, rejected=10,
                             within=True)]
        violations = check_trace(events)
        assert [v.rule for v in violations] == \
            ["neighbour-sla-holds-under-stampede"]

    def test_over_rate_breach_window_is_admissions_job(self):
        events = [sla_window(0, "kv0", finished=100, rejected=90,
                             within=False)]
        assert check_trace(events) == []

    def test_cumulative_over_bound_is_flagged(self):
        # Each window individually tolerated (rejected <= bound*n + 1),
        # but the run total breaks the bound: the cumulative rule.
        events = [sla_window(i, "kv2", finished=20, rejected=2)
                  for i in range(3)]
        violations = check_trace(events)
        assert [v.rule for v in violations] == \
            ["rejections-within-sla-bound"]

    def test_within_bound_run_is_clean(self):
        events = [sla_window(i, "kv2", finished=50, rejected=1)
                  for i in range(4)]
        assert check_trace(events) == []


class TestStampedeSoak:
    def test_admission_on_throttles_and_isolates(self):
        result = run_stampede_soak(admission=True, duration_s=16.0,
                                   ramp_at_s=6.0, hot_clients=30, seed=5)
        rate = result.hot_provisioned_tps
        assert rate == pytest.approx(6.0)
        assert result.hot_goodput_tps <= rate * 1.3 + 0.5
        assert result.neighbour_max_rejected_fraction <= 0.05
        assert all(not b.within_rate for b in result.breaches), \
            "every breach window must belong to an over-rate tenant"
        assert result.monitor_windows > 0
        assert_no_violations(result.controller)

    def test_admission_off_replays_unthrottled(self):
        result = run_stampede_soak(admission=False, duration_s=16.0,
                                   ramp_at_s=6.0, hot_clients=30, seed=5)
        assert result.hot_provisioned_tps is None
        assert result.controller.admission is None
        assert result.metrics.per_db["kv0"].overload_rejected == 0
        assert result.shed_reads == 0
        assert_no_violations(result.controller)


class TestReplayIdentity:
    """``admission_control=False`` (the default) must change nothing:
    same seed, same schedule, bit-identical trace and metrics."""

    def _run(self, **config_kwargs):
        sim = Simulator()
        config = ClusterConfig(lock_wait_timeout_s=2.0, **config_kwargs)
        controller = ClusterController(sim, config)
        controller.add_machines(3)
        controller.create_database("kv", KV_DDL, replicas=2,
                                   sla=Sla(2.0, 0.05))
        controller.bulk_load("kv", "kv", [(k, 0) for k in range(KEYS)])
        from repro.workloads.microbench import KeyValueWorkload, KvStats
        workload = KeyValueWorkload(controller, keys=KEYS, seed=11)
        stats = [KvStats() for _ in range(3)]
        for cid in range(3):
            proc = sim.process(workload.client(
                cid, transactions=40, think_time_s=0.05, stats=stats[cid]))
            proc.defused = True
        sim.run()
        events = [(e.t, e.kind, e.db, e.txn, e.machine,
                   tuple(sorted(e.extra.items())))
                  for e in controller.trace.events()]
        counters = {db: (c.committed, c.deadlocks, c.rejected, c.rollbacks)
                    for db, c in controller.metrics.per_db.items()}
        return events, counters, [s.committed for s in stats]

    def test_default_matches_explicit_off(self):
        assert self._run() == self._run(admission_control=False)

    def test_run_is_deterministic(self):
        baseline = self._run(admission_control=True)
        assert baseline == self._run(admission_control=True)
