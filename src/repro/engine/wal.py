"""Write-ahead logging, restart recovery, and the retained log tail.

The WAL is the engine's durability story: every row change is logged
before it is applied, COMMIT and PREPARE force the log, and
:func:`recover` rebuilds storage state from a log after a crash-restart.

The recovery contract matters for 2PC: transactions that logged PREPARE
but no outcome are restored *in doubt* — their effects applied and their
exclusive locks re-taken — so the cluster controller (the 2PC coordinator)
can still decide them. Everything uncommitted and unprepared is discarded
(presumed abort).

The log is also the *replication stream*: :class:`RetainedTail` is the
LSN-addressed retained suffix machinery shared by the engine WAL and the
cluster's per-database commit logs. Entries get dense, monotonically
increasing LSNs; a bounded tail of recent entries is retained for delta
catch-up, and :class:`SnapshotPin`\\ s mark LSNs that an in-flight
snapshot copy still needs — truncation never advances past the lowest
pinned LSN, so a replica built from a snapshot taken at a pinned LSN can
always replay forward from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class RecordType(enum.Enum):
    BEGIN = "BEGIN"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    PREPARE = "PREPARE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"


class LogRecord:
    """One WAL entry. Treated as immutable once appended.

    A plain __slots__ class, not a dataclass: records are constructed
    three-plus times per write transaction on the commit path, and a
    frozen dataclass pays ~8x per construction for object.__setattr__.
    """

    __slots__ = ("lsn", "txn_id", "kind", "db", "table", "rid", "before",
                 "after")

    def __init__(self, lsn: int, txn_id: int, kind: RecordType,
                 db: str = None, table: str = None, rid: int = None,
                 before: Tuple[Any, ...] = None,
                 after: Tuple[Any, ...] = None):
        self.lsn = lsn
        self.txn_id = txn_id
        self.kind = kind
        self.db = db
        self.table = table
        self.rid = rid
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return (f"LogRecord(lsn={self.lsn}, txn_id={self.txn_id}, "
                f"kind={self.kind}, db={self.db!r}, table={self.table!r}, "
                f"rid={self.rid})")


class SnapshotPin:
    """A claim on the retained tail: "keep everything after ``lsn``".

    Handed out by :meth:`RetainedTail.pin` (and the WAL's
    :meth:`WriteAheadLog.pin_snapshot`) at the instant a snapshot copy is
    taken. While the pin is held, truncation keeps every entry with an
    LSN greater than ``lsn`` so the snapshot's consumer can replay the
    suffix. Release exactly once via the owning tail.
    """

    __slots__ = ("lsn", "released")

    def __init__(self, lsn: int):
        self.lsn = lsn
        self.released = False

    def __repr__(self) -> str:
        state = "released" if self.released else "held"
        return f"SnapshotPin(lsn={self.lsn}, {state})"


class RetainedTail:
    """An LSN-addressed, truncatable suffix of an append-only log.

    Entries are addressed by dense LSNs starting at 1. At most ``retain``
    entries are kept (``retain=None`` keeps everything); older entries
    are truncated on append, except that truncation never advances past
    the lowest held :class:`SnapshotPin`. ``start_lsn`` is the lowest
    LSN still retained; :meth:`covers` tells a catch-up whether it can
    replay forward from a given LSN or must fall back to a full copy.
    """

    def __init__(self, retain: Optional[int] = None):
        self.retain = retain
        self._entries: List[Any] = []
        self._start_lsn = 1          # LSN of _entries[0]
        self._pins: List[SnapshotPin] = []
        self.truncated = 0           # entries dropped so far (stat)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_lsn(self) -> int:
        """The highest LSN assigned so far (0 when empty)."""
        return self._start_lsn + len(self._entries) - 1

    @property
    def start_lsn(self) -> int:
        """The lowest LSN still retained (last_lsn + 1 when drained)."""
        return self._start_lsn

    def append(self, payload: Any) -> int:
        """Append one entry; returns its LSN."""
        self._entries.append(payload)
        lsn = self.last_lsn
        self._truncate()
        return lsn

    def covers(self, from_lsn: int) -> bool:
        """True when every entry *after* ``from_lsn`` is still retained,
        i.e. a consumer at ``from_lsn`` can catch up by replay alone."""
        return from_lsn + 1 >= self._start_lsn

    def since(self, from_lsn: int) -> List[Tuple[int, Any]]:
        """Retained ``(lsn, payload)`` pairs with ``lsn > from_lsn``.

        Raises :class:`ValueError` when the requested suffix has been
        truncated away (the caller must fall back to a full copy).
        """
        if not self.covers(from_lsn):
            raise ValueError(
                f"log truncated: need entries after {from_lsn}, "
                f"tail starts at {self._start_lsn}")
        lo = max(from_lsn + 1, self._start_lsn)
        offset = lo - self._start_lsn
        return [(self._start_lsn + i, self._entries[i])
                for i in range(offset, len(self._entries))]

    def pin(self, lsn: Optional[int] = None) -> SnapshotPin:
        """Pin the tail at ``lsn`` (default: the current head)."""
        if lsn is None:
            lsn = self.last_lsn
        if not self.covers(lsn):
            raise ValueError(
                f"cannot pin at {lsn}: tail starts at {self._start_lsn}")
        pin = SnapshotPin(lsn)
        self._pins.append(pin)
        return pin

    def release(self, pin: SnapshotPin) -> None:
        """Release a pin; truncation may advance past its LSN again."""
        if pin.released:
            return
        pin.released = True
        self._pins.remove(pin)
        self._truncate()

    def min_pinned_lsn(self) -> Optional[int]:
        return min((p.lsn for p in self._pins), default=None)

    def compact(self) -> int:
        """Drop every unpinned entry, keeping the LSN position.

        Used to page out a cold tenant's delta log: the tail object
        survives (so ``last_lsn`` keeps counting from where it was and
        ``covers()`` stays truthful — a later delta catch-up correctly
        falls back to a full copy), but its retained payloads are
        released. Pinned suffixes are kept so an in-flight snapshot
        copy can still replay forward. Returns the number of entries
        dropped.
        """
        floor = self.last_lsn + 1
        pinned = self.min_pinned_lsn()
        if pinned is not None:
            floor = min(floor, pinned + 1)
        if floor <= self._start_lsn:
            return 0
        drop = floor - self._start_lsn
        del self._entries[:drop]
        self._start_lsn = floor
        self.truncated += drop
        return drop

    def _truncate(self) -> None:
        if self.retain is None:
            return
        # Keep at most `retain` entries, but never drop an entry some
        # snapshot still needs (lsn > pin.lsn must stay replayable).
        floor = self.last_lsn - self.retain + 1
        pinned = self.min_pinned_lsn()
        if pinned is not None:
            floor = min(floor, pinned + 1)
        if floor <= self._start_lsn:
            return
        drop = floor - self._start_lsn
        del self._entries[:drop]
        self._start_lsn = floor
        self.truncated += drop


@dataclass
class WalStats:
    records: int = 0
    flushes: int = 0
    truncated: int = 0


class WriteAheadLog:
    """An append-only log with an explicit flush horizon.

    The log keeps an LSN-addressed retained tail: records below
    ``start_lsn`` have been truncated (after a checkpoint made them
    redundant), and :meth:`pin_snapshot` holds truncation back so a
    snapshot taken at that LSN can always be caught up by replaying
    :meth:`records_since`. By default nothing is ever truncated —
    :meth:`truncate` is an explicit checkpoint operation.
    """

    def __init__(self):
        self._records: List[LogRecord] = []
        self._start_lsn = 1           # LSN of _records[0]
        self._next_lsn = 1
        self.flushed_lsn = 0
        self._pins: List[SnapshotPin] = []
        self.stats = WalStats()

    def __len__(self) -> int:
        return len(self._records)

    # -- the LSN-addressed tail ------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """Highest LSN appended so far (0 when nothing was logged)."""
        return self._next_lsn - 1

    @property
    def start_lsn(self) -> int:
        """Lowest LSN still retained."""
        return self._start_lsn

    def covers(self, from_lsn: int) -> bool:
        """True when every record after ``from_lsn`` is still retained."""
        return from_lsn + 1 >= self._start_lsn

    def records_since(self, from_lsn: int) -> List[LogRecord]:
        """Retained records with ``lsn > from_lsn`` (the catch-up suffix)."""
        if not self.covers(from_lsn):
            raise ValueError(
                f"WAL truncated: need records after {from_lsn}, "
                f"tail starts at {self._start_lsn}")
        offset = max(from_lsn + 1, self._start_lsn) - self._start_lsn
        return self._records[offset:]

    def pin_snapshot(self, lsn: Optional[int] = None) -> SnapshotPin:
        """Pin the tail at ``lsn`` (default: the log head) so records
        after it survive truncation until :meth:`release_snapshot`."""
        if lsn is None:
            lsn = self.last_lsn
        if not self.covers(lsn):
            raise ValueError(
                f"cannot pin at {lsn}: tail starts at {self._start_lsn}")
        pin = SnapshotPin(lsn)
        self._pins.append(pin)
        return pin

    def release_snapshot(self, pin: SnapshotPin) -> None:
        if pin.released:
            return
        pin.released = True
        self._pins.remove(pin)

    def min_pinned_lsn(self) -> Optional[int]:
        return min((p.lsn for p in self._pins), default=None)

    def truncate(self, upto_lsn: int) -> int:
        """Drop records with ``lsn <= upto_lsn`` (checkpoint).

        Truncation is clamped to the flush horizon (unflushed records
        are not yet redundant) and to the lowest snapshot pin (a pinned
        suffix must stay replayable). Returns the number of records
        dropped.
        """
        floor = min(upto_lsn, self.flushed_lsn)
        pinned = self.min_pinned_lsn()
        if pinned is not None:
            floor = min(floor, pinned)
        if floor < self._start_lsn:
            return 0
        drop = 0
        while drop < len(self._records) and self._records[drop].lsn <= floor:
            drop += 1
        if drop:
            del self._records[:drop]
            self._start_lsn = floor + 1
            self.stats.truncated += drop
        return drop

    def append(self, txn_id: int, kind: RecordType, db: str = None,
               table: str = None, rid: int = None,
               before: Tuple[Any, ...] = None,
               after: Tuple[Any, ...] = None) -> LogRecord:
        record = LogRecord(self._next_lsn, txn_id, kind, db, table, rid,
                           before, after)
        self._next_lsn += 1
        self._records.append(record)
        self.stats.records += 1
        return record

    def append_batch(self, txn_id: int, kind: RecordType,
                     entries: List[Tuple[str, str, int,
                                         Optional[Tuple[Any, ...]],
                                         Optional[Tuple[Any, ...]]]]
                     ) -> None:
        """Append many same-kind records in one call.

        ``entries`` is ``[(db, table, rid, before, after), ...]``. The
        compiled UPDATE/DELETE loops buffer their row records and land
        them here once per statement: one counter update and one list
        extend instead of per-row bookkeeping. Records still get
        distinct, ordered LSNs; this is safe because those loops yield
        no lock waits between rows, so no other transaction's records
        can interleave with the batch anyway.
        """
        lsn = self._next_lsn
        records = [
            LogRecord(lsn + i, txn_id, kind, db, table, rid, before, after)
            for i, (db, table, rid, before, after) in enumerate(entries)
        ]
        self._next_lsn += len(records)
        self._records.extend(records)
        self.stats.records += len(records)

    def flush(self) -> None:
        """Force everything appended so far to 'disk'."""
        self.flushed_lsn = self._next_lsn - 1
        self.stats.flushes += 1

    def durable_records(self) -> List[LogRecord]:
        """Records that survive a crash (appended and flushed)."""
        return [r for r in self._records if r.lsn <= self.flushed_lsn]

    def all_records(self) -> List[LogRecord]:
        return list(self._records)


@dataclass
class RecoveredState:
    """Outcome of log analysis during restart recovery."""

    committed: List[int] = field(default_factory=list)
    in_doubt: List[int] = field(default_factory=list)
    discarded: List[int] = field(default_factory=list)


def analyze(records: List[LogRecord]) -> RecoveredState:
    """Classify every transaction in a durable log."""
    outcome: Dict[int, str] = {}
    for record in records:
        if record.kind is RecordType.BEGIN:
            outcome.setdefault(record.txn_id, "active")
        elif record.kind is RecordType.PREPARE:
            outcome[record.txn_id] = "prepared"
        elif record.kind is RecordType.COMMIT:
            outcome[record.txn_id] = "committed"
        elif record.kind is RecordType.ABORT:
            outcome[record.txn_id] = "aborted"
        else:
            outcome.setdefault(record.txn_id, "active")
    state = RecoveredState()
    for txn_id, status in outcome.items():
        if status == "committed":
            state.committed.append(txn_id)
        elif status == "prepared":
            state.in_doubt.append(txn_id)
        else:
            state.discarded.append(txn_id)
    return state
