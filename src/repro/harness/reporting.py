"""Plain-text tables and series, in the shape the paper reports."""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str,
                  points: Sequence[Tuple[float, float]]) -> str:
    """Render one named (x, y) series, one point per line."""
    lines = [f"# {name}"]
    for x, y in points:
        lines.append(f"{_fmt(x)}\t{_fmt(y)}")
    return "\n".join(lines)
