"""Unit tests for the EXPLAIN plan printer."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.explain import explain, explain_statement


@pytest.fixture
def eng():
    engine = Engine()
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE item (i_id INT PRIMARY KEY, "
                        "i_title VARCHAR(20), i_a_id INT)")
    engine.execute_sync(txn, "db",
                        "CREATE TABLE author (a_id INT PRIMARY KEY, "
                        "a_name VARCHAR(20))")
    engine.execute_sync(txn, "db", "CREATE INDEX item_a ON item (i_a_id)")
    engine.commit(txn)
    return engine


class TestExplain:
    def test_point_lookup_shows_pk_index(self, eng):
        text = explain(eng.plan("db", "SELECT i_title FROM item "
                                      "WHERE i_id = 1"))
        assert "IndexEqScan item.__pk__" in text
        assert "Project" in text

    def test_seq_scan_with_filter(self, eng):
        text = explain(eng.plan("db", "SELECT i_id FROM item "
                                      "WHERE i_title = 'x'"))
        assert "SeqScan item" in text
        assert "Filter" in text

    def test_join_plan_rendered(self, eng):
        text = explain(eng.plan(
            "db", "SELECT a_name FROM item, author "
                  "WHERE i_a_id = a_id AND i_id = 2"))
        assert "IndexLookupJoin" in text
        lines = text.splitlines()
        assert lines[0].startswith("-> ")
        assert any(line.startswith("  -> ") for line in lines)

    def test_aggregate_and_sort(self, eng):
        text = explain(eng.plan(
            "db", "SELECT i_a_id, COUNT(*) c FROM item GROUP BY i_a_id "
                  "ORDER BY c DESC LIMIT 5"))
        assert "Aggregate group by" in text
        assert "Sort by" in text
        assert "Limit 5" in text

    def test_update_plan(self, eng):
        text = explain(eng.plan("db", "UPDATE item SET i_title = 'x' "
                                      "WHERE i_id = 3"))
        assert "Update item" in text
        assert "row X locks" in text

    def test_delete_plan(self, eng):
        text = explain(eng.plan("db", "DELETE FROM item WHERE i_a_id = 1"))
        assert "Delete from item" in text

    def test_insert_plan(self, eng):
        text = explain(eng.plan("db",
                                "INSERT INTO author VALUES (1, 'a')"))
        assert "Insert into author (1 rows)" in text

    def test_range_scan_bounds_shown(self, eng):
        text = explain(eng.plan("db", "SELECT i_id FROM item "
                                      "WHERE i_id > 5 AND i_id <= 10"))
        assert "IndexRangeScan" in text
        assert "(" in text and "]" in text


class TestExplainStatement:
    def test_reports_compiled_mode(self, eng):
        text = explain_statement(eng, "db",
                                 "SELECT i_title FROM item WHERE i_id = 1")
        assert "IndexEqScan item.__pk__" in text
        assert text.endswith("[execution: compiled]")

    def test_reports_interpreted_when_compilation_off(self):
        engine = Engine(config=EngineConfig(compile_plans=False))
        engine.create_database("db")
        txn = engine.begin()
        engine.execute_sync(txn, "db",
                            "CREATE TABLE x (a INT PRIMARY KEY)")
        engine.commit(txn)
        text = explain_statement(engine, "db", "SELECT a FROM x")
        assert text.endswith("[execution: interpreted]")
