"""A simulated cluster machine hosting one MiniSQL engine.

The machine converts engine cost reports into simulated time on its CPU
and disk resources, enforces per-transaction FIFO ordering of operations
(a statement sent to this machine for transaction T executes after every
earlier operation of T here — the property the paper's anomaly example
relies on), applies the cluster's lock-wait timeout, and models failure:
``fail()`` kills the engine and interrupts everything in flight.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, Optional, Sequence

from repro.cluster.config import MachineConfig
from repro.engine import Engine
from repro.engine.dump import dump_database, dump_table
from repro.engine.executor import ExecResult
from repro.engine.transactions import Transaction, TxnState
from repro.errors import (DeadlockError, LockTimeoutError,
                          MachineFailedError, TransactionError)
from repro.sim import Interrupt, Process, Resource, Simulator


class Machine:
    """One commodity machine: engine + CPU + disk + failure state."""

    #: Completed-RPC results remembered for retransmission dedup.
    RPC_CACHE_LIMIT = 4096

    def __init__(self, sim: Simulator, name: str, config: MachineConfig,
                 history=None):
        self.sim = sim
        self.name = name
        self.config = config
        self.cpu = Resource(sim, capacity=config.cores)
        self.disk = Resource(sim, capacity=config.disks)
        self._history = history
        self.engine = Engine(name, config.engine, history=history)
        self.alive = True
        self.failed_at: Optional[float] = None
        # Fenced: declared dead by the failure detector while (possibly)
        # still alive. A fenced machine's replicas are stale; it serves
        # nothing until readmitted as a blank spare.
        self.fenced = False
        # Tail process of each transaction's FIFO op chain on this machine.
        self._tails: Dict[int, Process] = {}
        self._active: set = set()
        # RPC dedup: message id -> the process executing (or having
        # executed) that message, so a retransmitted request returns the
        # original outcome instead of re-executing the statement.
        self._rpc_cache: "OrderedDict[int, Process]" = OrderedDict()
        # Write statements executed per transaction; PREPARE compares
        # this against the coordinator's sent count to detect a branch
        # that missed a (dropped) write.
        self._write_counts: Dict[int, int] = {}

    # -- load signals (overload detection) -------------------------------------

    @property
    def inflight(self) -> int:
        """Sim processes currently running or queued on this machine.

        The overload watermark of the admission layer: every submitted
        statement, 2PC phase, and copy-tool step counts until it
        settles, so a machine drowning in queued work reads high even
        while its CPU resource is merely saturated.
        """
        return len(self._active)

    @property
    def queue_depth(self) -> int:
        """Transactions with an unfinished FIFO op chain on this machine."""
        return len(self._tails)

    def overloaded(self, watermark: int) -> bool:
        """Is this machine past the in-flight watermark? (0 = never)."""
        return watermark > 0 and self.inflight >= watermark

    # -- capacity (SLA dimensions) -------------------------------------------

    def capacity_vector(self):
        from repro.sla.model import ResourceVector
        return ResourceVector(
            cpu=float(self.config.cores),
            memory_mb=self.config.memory_mb,
            disk_io_mbps=self.config.disk_bandwidth_mbps,
            disk_mb=self.config.disk_mb,
        )

    # -- failure ---------------------------------------------------------------

    def fail(self) -> None:
        """Power off: lose the engine, kill everything in flight."""
        if not self.alive:
            return
        self.alive = False
        self.failed_at = self.sim.now
        for proc in list(self._active):
            proc.interrupt(MachineFailedError(self.name))
        self._active.clear()
        self._tails.clear()
        self._rpc_cache.clear()
        self._write_counts.clear()

    def fence(self) -> None:
        """Fence off a machine the detector declared dead.

        Models the machine-side lease expiry that accompanies the
        controller's declaration: everything in flight dies, new work is
        refused, and the (stale) replicas it hosts serve nothing. The
        engine state is kept — fencing is reversible only through
        :meth:`readmit_as_spare`, which wipes it.
        """
        if self.fenced:
            return
        self.fenced = True
        for proc in list(self._active):
            proc.interrupt(MachineFailedError(f"{self.name} (fenced)"))
        self._active.clear()
        self._tails.clear()
        self._rpc_cache.clear()
        self._write_counts.clear()

    def readmit_as_spare(self) -> None:
        """Re-enter the cluster as a blank spare after a false declaration.

        Per the paper's treatment of recovered machines, a machine that
        reappears after being declared dead does not resume serving its
        old replicas — they may have missed writes. It is wiped and
        rejoins as a fresh machine holding nothing.
        """
        self.engine = Engine(self.name, self.config.engine,
                             history=self._history)
        self.fenced = False
        self.alive = True
        self.failed_at = None
        self._tails.clear()
        self._active.clear()
        self._rpc_cache.clear()
        self._write_counts.clear()

    def repair(self) -> None:
        """Return a failed machine to service as a blank spare."""
        self.readmit_as_spare()

    def rejoin_with_data(self) -> None:
        """Re-enter the cluster keeping the engine's data (delta rejoin).

        A machine declared dead whose data survived intact catches up
        from its last durable LSN instead of being wiped. Transaction
        branches left open by the fencing (including in-doubt prepares
        whose decision it never received) are rolled back first: their
        effects are re-delivered by the log replay if they committed
        globally, and never were commits otherwise.
        """
        for txn in list(self.engine.transactions.values()):
            if not txn.finished:
                self.engine.abort(txn)
        self.fenced = False
        self.alive = True
        self.failed_at = None
        self._tails.clear()
        self._active.clear()
        self._rpc_cache.clear()
        self._write_counts.clear()

    def committed_txn_ids(self) -> set:
        """Transactions whose COMMIT is durable in this machine's WAL.

        The rejoin catch-up replays only log entries outside this set, so
        a commit the machine applied but never acked (the ack was lost
        right before it was declared) is not applied twice.
        """
        from repro.engine.wal import RecordType
        return {r.txn_id for r in self.engine.wal.durable_records()
                if r.kind is RecordType.COMMIT}

    def _check_alive(self) -> None:
        if not self.alive:
            raise MachineFailedError(self.name)
        if self.fenced:
            raise MachineFailedError(f"{self.name} (fenced)")

    # -- op submission (FIFO per transaction) -----------------------------------

    def submit(self, txn_id: int, body: Generator, label: str = "") -> Process:
        """Queue ``body`` behind the transaction's earlier ops here."""
        prev = self._tails.get(txn_id)
        proc = self.sim.process(self._chained(prev, body),
                                name=f"{self.name}:{label or txn_id}")
        self._tails[txn_id] = proc
        self._active.add(proc)
        proc.add_callback(lambda _e: self._active.discard(proc))
        return proc

    def _chained(self, prev: Optional[Process], body: Generator) -> Generator:
        if prev is not None and prev.is_alive:
            try:
                yield prev
            except Exception:
                pass  # ordering only; the earlier op's error was handled
        result = yield from body
        return result

    def submit_rpc(self, msg_id: int, txn_id: int,
                   body_factory: Callable[[], Generator],
                   label: str = "") -> Process:
        """Execute one at-most-once message; retransmissions deduplicate.

        The first request carrying ``msg_id`` submits a fresh body; a
        retransmission (same id) returns the original process — running
        or completed — so a retried statement is never applied twice.
        """
        proc = self._rpc_cache.get(msg_id)
        if proc is not None:
            return proc
        proc = self.submit(txn_id, body_factory(), label=label)
        self._rpc_cache[msg_id] = proc
        while len(self._rpc_cache) > self.RPC_CACHE_LIMIT:
            self._rpc_cache.popitem(last=False)
        return proc

    def forget_txn(self, txn_id: int) -> None:
        self._tails.pop(txn_id, None)
        self._write_counts.pop(txn_id, None)

    def run_copy(self, body: Generator, label: str = "") -> Process:
        """Run a copy-tool step (dump/load) bound to this machine.

        The process is tracked like transactional work, so ``fail()``
        interrupts an in-flight dump or load instead of letting it keep
        streaming data off a powered-down machine.
        """
        proc = self.sim.process(body, name=f"{self.name}:{label}")
        self._active.add(proc)
        proc.add_callback(lambda _e: self._active.discard(proc))
        return proc

    # -- engine operations ----------------------------------------------------------

    def _engine_txn(self, txn_id: int) -> Transaction:
        """The local branch of a global transaction, started on demand.

        A *finished* branch means an earlier statement of this
        transaction deadlocked or timed out here and rolled the branch
        back (the InnoDB rule: a deadlock rolls back the whole
        transaction, not just the statement). Any later operation for the
        same transaction must fail rather than silently open a fresh
        branch — that is what keeps a diverged replica from preparing.
        """
        txn = self.engine.transactions.get(txn_id)
        if txn is None:
            return self.engine.begin(txn_id)
        if txn.finished:
            raise DeadlockError(
                f"txn {txn_id} was already rolled back on {self.name}")
        return txn

    def statement_body(self, txn_id: int, db: str, sql: str,
                       params: Sequence[Any],
                       lock_timeout: float,
                       count_write: bool = False) -> Generator:
        """Execute one statement; the generator is a sim process body.

        A deadlock or lock-wait timeout rolls back the transaction's
        local branch immediately (releasing its locks and cancelling its
        queued request) before the error propagates to the controller.
        """
        self._check_alive()
        txn = self._engine_txn(txn_id)
        gen = self.engine.execute(txn, db, sql, params)
        try:
            while True:
                try:
                    request = next(gen)
                except StopIteration as stop:
                    result: ExecResult = stop.value
                    break
                if request.granted:
                    continue  # granted before we could subscribe
                granted = self.sim.event()

                def on_grant(req, ev=granted):
                    if not ev.triggered:
                        ev.succeed(req)

                def on_fail(req, ev=granted):
                    if not ev.triggered:
                        ev.fail(req.error or RuntimeError("lock failed"))

                request.on_grant.append(on_grant)
                request.on_fail.append(on_fail)
                timeout = self.sim.timeout(lock_timeout)
                yield self.sim.any_of([granted, timeout])
                if not granted.triggered:
                    # Lock wait timed out: distributed-deadlock safety valve.
                    gen.close()
                    raise LockTimeoutError(
                        f"txn {txn_id} timed out after {lock_timeout}s "
                        f"waiting for {request.resource} on {self.name}"
                    )
                if not granted.ok:
                    gen.close()
                    raise granted.value
                if txn.finished:
                    # The controller rolled the branch back while we were
                    # waiting and the grant raced the abort: stop before
                    # the statement mutates anything under a dead branch.
                    gen.close()
                    raise DeadlockError(
                        f"txn {txn_id} rolled back on {self.name} during "
                        f"a lock wait")
            yield from self._charge(result)
        except Interrupt as exc:
            gen.close()
            raise MachineFailedError(self.name) from exc
        except (DeadlockError, LockTimeoutError):
            # Roll back the local branch right away: releases its locks
            # (waking waiters) and cancels any queued lock request, so a
            # later PREPARE here fails instead of committing a branch
            # that is missing this statement.
            if self.alive and not txn.finished:
                self.engine.abort(txn)
            raise
        self._check_alive()
        if count_write:
            # Executed-write tally for the PREPARE gap check.
            self._write_counts[txn_id] = self._write_counts.get(txn_id, 0) + 1
        return result

    def _charge(self, result: ExecResult) -> Generator:
        """Hold CPU/disk for the simulated duration of a statement."""
        cfg = self.config.engine
        cost = result.cost
        cpu_s = (cfg.cpu_cost_per_statement_us
                 + cost.rows_scanned * cfg.cpu_cost_per_row_us
                 + cost.cache_hits * cfg.page_hit_us) / 1e6
        yield from self.cpu.use(cpu_s)
        if cost.cache_misses:
            disk_s = cost.cache_misses * cfg.page_miss_ms / 1e3
            yield from self.disk.use(disk_s)

    def prepare_body(self, txn_id: int,
                     expected_writes: Optional[int] = None) -> Generator:
        self._check_alive()
        txn = self.engine.transactions.get(txn_id)
        if txn is None or txn.finished:
            # The branch was rolled back (deadlock/timeout) or never
            # started here; the coordinator must abort the transaction.
            raise TransactionError(
                f"cannot prepare txn {txn_id} on {self.name}: "
                f"branch is not active")
        if expected_writes is not None:
            executed = self._write_counts.get(txn_id, 0)
            if executed != expected_writes:
                # A write message to this replica was lost in the fabric
                # and never retransmitted successfully: the branch is
                # missing statements and must not be committed anywhere.
                raise TransactionError(
                    f"cannot prepare txn {txn_id} on {self.name}: "
                    f"executed {executed} of {expected_writes} writes")
        self.engine.prepare(txn)
        try:
            yield from self.disk.use(self.config.engine.log_flush_ms / 1e3)
        except Interrupt as exc:
            # Died mid-flush: surface the machine failure, not the raw
            # interrupt, so the coordinator's 2PC handling sees it.
            raise MachineFailedError(self.name) from exc
        self._check_alive()
        return True

    def commit_body(self, txn_id: int) -> Generator:
        self._check_alive()
        txn = self.engine.transactions.get(txn_id)
        if txn is None or txn.finished:
            return True
        self.engine.commit(txn)
        try:
            yield from self.disk.use(self.config.engine.log_flush_ms / 1e3)
        except Interrupt as exc:
            # Died mid-flush: the coordinator must keep delivering the
            # decided COMMIT to the surviving participants, so this must
            # arrive as the MachineFailedError its phase-2 loop skips.
            raise MachineFailedError(self.name) from exc
        self.forget_txn(txn_id)
        return True

    def abort_body(self, txn_id: int) -> Generator:
        if not self.alive:
            return True
        txn = self.engine.transactions.get(txn_id)
        if txn is not None and not txn.finished:
            self.engine.abort(txn)
        self.forget_txn(txn_id)
        return True
        yield  # pragma: no cover - generator marker

    def abort_local(self, txn_id: int) -> None:
        """Immediate, non-simulated abort (controller cleanup path)."""
        if not self.alive:
            return
        txn = self.engine.transactions.get(txn_id)
        if txn is not None and not txn.finished:
            self.engine.abort(txn)
        self.forget_txn(txn_id)

    # -- copy tool (recovery) -----------------------------------------------------

    def dump_table_body(self, db: str, table: str,
                        on_snapshot=None) -> Generator:
        """Run the copy tool for one table, charging disk read time.

        ``on_snapshot`` (if given) is called synchronously at the
        snapshot instant — the dump's S locks were just granted and the
        rows copied, but the I/O charge has not started — so the caller
        can pin the replication log's LSN that the snapshot reflects.
        """
        self._check_alive()
        gen = dump_table(self.engine, db, table)
        dump = yield from self._drive_dump(gen)
        if on_snapshot is not None:
            on_snapshot(dump)
        yield from self._charge_copy_io(dump.bytes_estimate)
        return dump

    def dump_database_body(self, db: str, on_snapshot=None) -> Generator:
        """Dump every table of ``db``; see :meth:`dump_table_body` for
        the ``on_snapshot`` snapshot-instant callback."""
        self._check_alive()
        gen = dump_database(self.engine, db)
        dumps = yield from self._drive_dump(gen)
        if on_snapshot is not None:
            on_snapshot(dumps)
        yield from self._charge_copy_io(sum(d.bytes_estimate for d in dumps))
        return dumps

    def _drive_dump(self, gen: Generator) -> Generator:
        """Drive a dump generator; dump lock waits have no timeout."""
        try:
            while True:
                try:
                    request = next(gen)
                except StopIteration as stop:
                    return stop.value
                granted = self.sim.event()
                request.on_grant.append(
                    lambda req, ev=granted: ev.triggered or ev.succeed(req))
                request.on_fail.append(
                    lambda req, ev=granted: ev.triggered or ev.fail(
                        req.error or RuntimeError("lock failed")))
                yield granted
        except Interrupt as exc:
            gen.close()
            raise MachineFailedError(self.name) from exc

    def _charge_copy_io(self, nbytes: int) -> Generator:
        """Charge copy I/O in chunks so foreground work can interleave.

        A real dump streams the table; holding the disk resource for the
        whole copy would starve every co-tenant's reads, which is not how
        shared disks behave.
        """
        scaled = nbytes * self.config.copy_bytes_factor
        seconds = (scaled / (1024.0 * 1024.0)) / self.config.disk_bandwidth_mbps
        if seconds <= 0:
            return
        chunks = max(1, min(200, int(seconds / 0.05)))
        per_chunk = seconds / chunks
        for _ in range(chunks):
            yield from self.disk.use(per_chunk)

    def apply_log_body(self, db: str, entries) -> Generator:
        """Replay retained-log entries (delta catch-up apply stream).

        ``entries`` is ``[(lsn, (txn_id, [(sql, params), ...])), ...]``
        in LSN order. Each entry replays as one local transaction under
        its original transaction id, so the machine's WAL records it as
        committed and a repeated catch-up skips it. The machine is not
        in the replica map while this runs, so the replay never contends
        with foreground traffic.
        """
        self._check_alive()
        applied = 0
        try:
            for _lsn, (txn_id, writes) in entries:
                self._check_alive()
                txn = self.engine.begin(txn_id)
                try:
                    for sql, params in writes:
                        result = self.engine.execute_sync(txn, db, sql,
                                                          params)
                        yield from self._charge(result)
                    self.engine.commit(txn)
                except BaseException:
                    if not txn.finished:
                        self.engine.abort(txn)
                    raise
                applied += 1
        except Interrupt as exc:
            raise MachineFailedError(self.name) from exc
        return applied

    def load_rows_body(self, db: str, table: str, rows) -> Generator:
        """Bulk-load copied rows on the destination machine."""
        self._check_alive()
        self.engine.load_table_rows(db, table, rows)
        nbytes = self.engine.database(db).table(table).estimated_bytes()
        yield from self._charge_copy_io(nbytes)
        self._check_alive()
        return True
