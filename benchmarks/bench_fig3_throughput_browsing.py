"""Figure 3 — throughput with synchronous replication, browsing mix."""

import pytest

from common import report
from throughput_common import peak, run_throughput_figure


@pytest.mark.benchmark(group="fig3")
def test_fig3_throughput_browsing(benchmark, capsys):
    text, series = benchmark.pedantic(
        lambda: run_throughput_figure("browsing"), rounds=1, iterations=1)
    report("fig3_throughput_browsing", text, capsys)
    no_repl = peak(series, "no-replication")
    opt1 = peak(series, "option-1")
    opt2 = peak(series, "option-2")
    opt3 = peak(series, "option-3")
    assert opt1 > opt2
    assert opt1 > opt3
    # Browsing is read-dominated: replication's write cost is small, so
    # Option 1 sits closest to no-replication in this mix.
    assert 0.70 * no_repl <= opt1 <= no_repl
    assert opt3 <= opt2 * 1.10
