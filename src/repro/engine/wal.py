"""Write-ahead logging and restart recovery.

The WAL is the engine's durability story: every row change is logged
before it is applied, COMMIT and PREPARE force the log, and
:func:`recover` rebuilds storage state from a log after a crash-restart.

The recovery contract matters for 2PC: transactions that logged PREPARE
but no outcome are restored *in doubt* — their effects applied and their
exclusive locks re-taken — so the cluster controller (the 2PC coordinator)
can still decide them. Everything uncommitted and unprepared is discarded
(presumed abort).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class RecordType(enum.Enum):
    BEGIN = "BEGIN"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    PREPARE = "PREPARE"
    COMMIT = "COMMIT"
    ABORT = "ABORT"


class LogRecord:
    """One WAL entry. Treated as immutable once appended.

    A plain __slots__ class, not a dataclass: records are constructed
    three-plus times per write transaction on the commit path, and a
    frozen dataclass pays ~8x per construction for object.__setattr__.
    """

    __slots__ = ("lsn", "txn_id", "kind", "db", "table", "rid", "before",
                 "after")

    def __init__(self, lsn: int, txn_id: int, kind: RecordType,
                 db: str = None, table: str = None, rid: int = None,
                 before: Tuple[Any, ...] = None,
                 after: Tuple[Any, ...] = None):
        self.lsn = lsn
        self.txn_id = txn_id
        self.kind = kind
        self.db = db
        self.table = table
        self.rid = rid
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return (f"LogRecord(lsn={self.lsn}, txn_id={self.txn_id}, "
                f"kind={self.kind}, db={self.db!r}, table={self.table!r}, "
                f"rid={self.rid})")


@dataclass
class WalStats:
    records: int = 0
    flushes: int = 0


class WriteAheadLog:
    """An append-only log with an explicit flush horizon."""

    def __init__(self):
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self.stats = WalStats()

    def __len__(self) -> int:
        return len(self._records)

    def append(self, txn_id: int, kind: RecordType, db: str = None,
               table: str = None, rid: int = None,
               before: Tuple[Any, ...] = None,
               after: Tuple[Any, ...] = None) -> LogRecord:
        record = LogRecord(self._next_lsn, txn_id, kind, db, table, rid,
                           before, after)
        self._next_lsn += 1
        self._records.append(record)
        self.stats.records += 1
        return record

    def append_batch(self, txn_id: int, kind: RecordType,
                     entries: List[Tuple[str, str, int,
                                         Optional[Tuple[Any, ...]],
                                         Optional[Tuple[Any, ...]]]]
                     ) -> None:
        """Append many same-kind records in one call.

        ``entries`` is ``[(db, table, rid, before, after), ...]``. The
        compiled UPDATE/DELETE loops buffer their row records and land
        them here once per statement: one counter update and one list
        extend instead of per-row bookkeeping. Records still get
        distinct, ordered LSNs; this is safe because those loops yield
        no lock waits between rows, so no other transaction's records
        can interleave with the batch anyway.
        """
        lsn = self._next_lsn
        records = [
            LogRecord(lsn + i, txn_id, kind, db, table, rid, before, after)
            for i, (db, table, rid, before, after) in enumerate(entries)
        ]
        self._next_lsn += len(records)
        self._records.extend(records)
        self.stats.records += len(records)

    def flush(self) -> None:
        """Force everything appended so far to 'disk'."""
        self.flushed_lsn = self._next_lsn - 1
        self.stats.flushes += 1

    def durable_records(self) -> List[LogRecord]:
        """Records that survive a crash (appended and flushed)."""
        return [r for r in self._records if r.lsn <= self.flushed_lsn]

    def all_records(self) -> List[LogRecord]:
        return list(self._records)


@dataclass
class RecoveredState:
    """Outcome of log analysis during restart recovery."""

    committed: List[int] = field(default_factory=list)
    in_doubt: List[int] = field(default_factory=list)
    discarded: List[int] = field(default_factory=list)


def analyze(records: List[LogRecord]) -> RecoveredState:
    """Classify every transaction in a durable log."""
    outcome: Dict[int, str] = {}
    for record in records:
        if record.kind is RecordType.BEGIN:
            outcome.setdefault(record.txn_id, "active")
        elif record.kind is RecordType.PREPARE:
            outcome[record.txn_id] = "prepared"
        elif record.kind is RecordType.COMMIT:
            outcome[record.txn_id] = "committed"
        elif record.kind is RecordType.ABORT:
            outcome[record.txn_id] = "aborted"
        else:
            outcome.setdefault(record.txn_id, "active")
    state = RecoveredState()
    for txn_id, status in outcome.items():
        if status == "committed":
            state.committed.append(txn_id)
        elif status == "prepared":
            state.in_doubt.append(txn_id)
        else:
            state.discarded.append(txn_id)
    return state
