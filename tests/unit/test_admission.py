"""Unit tests for the overload-protection layer: token buckets,
admission provisioning, load-aware shedding, and the error contract."""

import pytest

from repro.cluster.admission import (AdmissionConfig, AdmissionController,
                                     TokenBucket, least_loaded, shed_choice)
from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Machine
from repro.errors import OverloadRejectedError, ProactiveRejectionError
from repro.sim import Simulator
from repro.sla.model import Sla


# -- token bucket -------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0)
        grants = [bucket.try_acquire(0.0) for _ in range(5)]
        assert grants == [True, True, True, True, False]

    def test_lazy_refill_at_rate(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0)
        for _ in range(4):
            assert bucket.try_acquire(0.0)
        assert bucket.tokens_at(0.0) == 0.0
        assert bucket.tokens_at(1.0) == pytest.approx(2.0)
        assert bucket.tokens_at(1.5) == pytest.approx(3.0)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0)
        assert bucket.try_acquire(0.0)
        assert bucket.tokens_at(100.0) == pytest.approx(4.0)

    def test_time_never_runs_backwards(self):
        # A consult at an earlier timestamp must not mint tokens.
        bucket = TokenBucket(rate=1.0, capacity=2.0, now=10.0)
        assert bucket.try_acquire(10.0)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)
        assert bucket.tokens_at(10.0) == 0.0

    def test_partial_tokens_accumulate(self):
        bucket = TokenBucket(rate=0.5, capacity=1.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(1.0)   # only 0.5 tokens yet
        assert bucket.try_acquire(2.0)       # a full token at 1/rate

    def test_deterministic_replay(self):
        # Same consult schedule -> same grants; no RNG, no wall clock.
        schedule = [0.0, 0.1, 0.4, 0.4, 1.3, 2.0, 2.0, 2.1, 7.5]

        def run():
            bucket = TokenBucket(rate=1.5, capacity=3.0)
            return [bucket.try_acquire(t) for t in schedule]

        assert run() == run()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


# -- admission controller ----------------------------------------------------


class TestAdmissionController:
    def make(self, now=None):
        clock_now = now if now is not None else [0.0]
        return AdmissionController(AdmissionConfig(),
                                   clock=lambda: clock_now[0]), clock_now

    def test_provisions_from_sla_with_headroom(self):
        admission, _ = self.make()
        admission.provision("db", Sla(4.0, 0.05))
        assert admission.provisioned_rate("db") == pytest.approx(6.0)
        bucket = admission.buckets["db"]
        assert bucket.capacity == pytest.approx(12.0)  # 2 s of burst

    def test_no_sla_gets_default_rate(self):
        admission, _ = self.make()
        admission.provision("db", None)
        assert admission.provisioned_rate("db") == \
            AdmissionConfig().default_rate_tps

    def test_unknown_db_auto_provisioned_not_rejected(self):
        admission, _ = self.make()
        assert admission.admit("never-seen")
        assert "never-seen" in admission.buckets

    def test_admit_spends_and_refills_on_sim_clock(self):
        admission, clock_now = self.make()
        admission.provision("db", Sla(1.0, 0.05))   # rate 1.5, capacity 3
        grants = [admission.admit("db") for _ in range(4)]
        assert grants == [True, True, True, False]
        clock_now[0] = 1.0                          # +1.5 tokens
        assert admission.admit("db")

    def test_forget_drops_bucket(self):
        admission, _ = self.make()
        admission.provision("db", Sla(4.0, 0.05))
        admission.forget("db")
        assert "db" not in admission.buckets
        assert admission.provisioned_rate("db") == \
            AdmissionConfig().default_rate_tps


# -- read shedding -----------------------------------------------------------


class TestShedding:
    LOADS = {"a": 9, "b": 3, "c": 5}

    def test_least_loaded_picks_minimum(self):
        assert least_loaded(["a", "b", "c"], self.LOADS) == "b"

    def test_least_loaded_first_on_ties(self):
        assert least_loaded(["a", "b", "c"], {"a": 2, "b": 2, "c": 2}) == "a"

    def test_least_loaded_requires_replicas(self):
        with pytest.raises(ValueError):
            least_loaded([], {})

    def test_under_watermark_keeps_preferred(self):
        assert shed_choice("c", ["a", "b", "c"], self.LOADS, 8) == \
            ("c", False)

    def test_over_watermark_spills_to_least_loaded(self):
        assert shed_choice("a", ["a", "b", "c"], self.LOADS, 8) == \
            ("b", True)

    def test_zero_watermark_disables_shedding(self):
        assert shed_choice("a", ["a", "b", "c"], self.LOADS, 0) == \
            ("a", False)

    def test_all_over_watermark_still_serves(self):
        # The fairness regression: when every replica is over the
        # watermark, the least-loaded one serves — shedding must never
        # become unavailability.
        loads = {"a": 9, "b": 12, "c": 15}
        choice, shed = shed_choice("a", ["a", "b", "c"], loads, 8)
        assert choice == "a"
        assert shed is False      # preferred already is least-loaded
        choice, shed = shed_choice("c", ["a", "b", "c"], loads, 8)
        assert (choice, shed) == ("a", True)


# -- machine load signals ----------------------------------------------------


class TestMachineLoadSignals:
    def test_fresh_machine_is_idle(self):
        machine = Machine(Simulator(), "m1", ClusterConfig().machine)
        assert machine.inflight == 0
        assert machine.queue_depth == 0
        assert not machine.overloaded(8)

    def test_zero_watermark_never_overloaded(self):
        machine = Machine(Simulator(), "m1", ClusterConfig().machine)
        assert not machine.overloaded(0)


# -- error contract ----------------------------------------------------------


class TestErrorContract:
    def test_overload_rejection_is_retryable_and_tagged(self):
        exc = OverloadRejectedError("over rate", database="kv")
        assert exc.database == "kv"
        assert exc.retryable is True
        assert isinstance(exc, ProactiveRejectionError)

    def test_proactive_rejection_defaults(self):
        exc = ProactiveRejectionError("copy window")
        assert exc.database is None
        assert exc.retryable is False

    def test_proactive_rejection_carries_fields(self):
        exc = ProactiveRejectionError("copy window", database="tpcw1",
                                      retryable=True)
        assert exc.database == "tpcw1"
        assert exc.retryable is True


# -- config flag -------------------------------------------------------------


def test_admission_control_defaults_off():
    config = ClusterConfig()
    assert config.admission_control is False
    assert isinstance(config.admission, AdmissionConfig)
