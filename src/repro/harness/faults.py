"""Fault injection: machine failures, repairs, and network partitions.

The paper's availability model (Section 4.1) is parameterized by a
machine failure rate; :class:`FailureInjector` produces exactly that —
Poisson machine failures at a configurable mean time between failures —
so experiments can measure rejected fractions under sustained failures
rather than a single staged one. Two extensions for robustness soaks:

* ``repair_mtbf_s`` adds a Poisson *repair* stream that returns dead
  machines to the cluster as blank spares, so long soaks no longer
  monotonically drain the cluster to ``min_live_machines`` and stall;
* ``oracle=False`` switches from :meth:`fail_machine` (the controller is
  told instantly) to :meth:`crash_machine` (the machine just goes
  silent; only the heartbeat failure detector can notice).

:class:`PartitionInjector` drives the network fabric: it cuts random
links or splits the cluster into disconnected groups, healing each
episode after a random duration — the workload for the partition-soak
experiment and its no-split-brain / fencing invariants.

:class:`ControllerKillInjector` targets the consensus control plane
(:mod:`repro.cluster.consensus`): it fail-stops controller replicas —
preferring the current leader, never below the group's majority — and
optionally cuts controller↔controller links, so soaks exercise
elections, lease hand-off, and take-over cleanup under churn.

:class:`WanPartitionInjector` is the cross-colo analogue: it cuts
colo↔colo WAN links (stalling log shipping until catch-up) or isolates
a whole colo from the system controller and its peers (starving the
colo heartbeat detector), healing each episode after a random duration
— the workload for the disaster-recovery soak and its dual-primary /
prefix-order / lag-drain invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.cluster.controller import ClusterController
from repro.cluster.network import CONTROLLER, SYSTEM
from repro.sim import Interrupt, Process
from repro.sim.rng import SeededRNG


@dataclass
class FailureEvent:
    when: float
    machine: str
    databases_affected: List[str]


@dataclass
class RepairEvent:
    when: float
    machine: str


@dataclass
class PartitionEvent:
    when: float
    kind: str                                  # "cut" | "split"
    links: List[Tuple[str, str]] = field(default_factory=list)
    groups: List[List[str]] = field(default_factory=list)
    healed_at: Optional[float] = None


class _RestartableInjector:
    """start()/stop() lifecycle shared by the injectors.

    ``stop()`` interrupts the loop processes and forgets them; a later
    ``start()`` spawns fresh ones, so one injector instance can be
    started and stopped repeatedly within a run. Loop processes are
    always defused — both so background failures cannot crash the
    kernel and so the stop interrupt itself never counts as unhandled
    if it lands after the loop already finished.
    """

    def __init__(self, controller: ClusterController):
        self.controller = controller
        self._procs: List[Process] = []

    def _loops(self) -> List[Tuple[str, Generator]]:
        raise NotImplementedError

    def start(self) -> None:
        if any(p.is_alive for p in self._procs):
            return
        self._procs = []
        for name, loop in self._loops():
            proc = self.controller.sim.process(loop, name=name)
            proc.defused = True
            self._procs.append(proc)

    def stop(self) -> None:
        for proc in self._procs:
            proc.defused = True
            if proc.is_alive:
                proc.interrupt("injector stopped")
        self._procs = []


class FailureInjector(_RestartableInjector):
    """Fails random live machines with exponential inter-arrival times."""

    def __init__(self, controller: ClusterController, mtbf_s: float,
                 seed: int = 0, min_live_machines: int = 1,
                 spare_last_replicas: bool = True,
                 repair_mtbf_s: Optional[float] = None,
                 oracle: bool = True):
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        if repair_mtbf_s is not None and repair_mtbf_s <= 0:
            raise ValueError("repair MTBF must be positive")
        super().__init__(controller)
        self.mtbf_s = mtbf_s
        self.repair_mtbf_s = repair_mtbf_s
        # oracle=True: fail_machine (controller learns instantly).
        # oracle=False: crash_machine (silence; detection must notice).
        self.oracle = oracle
        self.rng = SeededRNG(seed).fork("failure-injector")
        # Never fail below this many live machines (the cluster would
        # just be gone; the paper assumes failures are sparse).
        self.min_live_machines = min_live_machines
        # Skip machines holding the only live replica of some database
        # (simulates the paper's assumption that simultaneous loss of
        # all replicas is a disaster-recovery event, not a cluster one).
        self.spare_last_replicas = spare_last_replicas
        self.events: List[FailureEvent] = []
        self.repairs: List[RepairEvent] = []

    def _loops(self) -> List[Tuple[str, Generator]]:
        loops = [("failure-injector", self._loop())]
        if self.repair_mtbf_s is not None:
            loops.append(("repair-injector", self._repair_loop()))
        return loops

    def _candidates(self) -> List[str]:
        live = [m.name for m in self.controller.live_machines()]
        if len(live) <= self.min_live_machines:
            return []
        if not self.spare_last_replicas:
            return live
        spared = set()
        for db in self.controller.replica_map.databases():
            live_replicas = self.controller.live_replicas(db)
            if len(live_replicas) == 1:
                spared.add(live_replicas[0])
        return [name for name in live if name not in spared]

    def _repair_candidates(self) -> List[str]:
        """Dead machines the replica map no longer routes to.

        A crashed (non-oracle) machine keeps its map entries until the
        failure detector declares it, so repair naturally waits for
        detection to run its course.
        """
        return sorted(
            name for name, machine in self.controller.machines.items()
            if not machine.alive
            and not self.controller.replica_map.hosted_on(name))

    def _loop(self) -> Generator:
        sim = self.controller.sim
        try:
            while True:
                yield sim.timeout(self.rng.expovariate(1.0 / self.mtbf_s))
                candidates = self._candidates()
                if not candidates:
                    continue
                victim = self.rng.choice(sorted(candidates))
                if self.oracle:
                    affected = self.controller.fail_machine(victim)
                else:
                    self.controller.crash_machine(victim)
                    affected = []
                self.events.append(FailureEvent(sim.now, victim, affected))
        except Interrupt:
            return

    def _repair_loop(self) -> Generator:
        sim = self.controller.sim
        try:
            while True:
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.repair_mtbf_s))
                candidates = self._repair_candidates()
                if not candidates:
                    continue
                machine = self.rng.choice(candidates)
                self.controller.repair_machine(machine)
                self.repairs.append(RepairEvent(sim.now, machine))
        except Interrupt:
            return


@dataclass
class ControllerKillEvent:
    when: float
    node: str
    was_leader: bool
    repaired_at: Optional[float] = None


class ControllerKillInjector(_RestartableInjector):
    """Kills consensus controller replicas (preferring the leader), and
    optionally partitions the control-plane links, then heals both.

    Episodes are sequential: crash one replica, wait an exponential
    repair delay, repair it. The victim is the current lease holder with
    probability ``prefer_leader`` (kills that force an election are the
    interesting ones); the injector never reduces the group below its
    majority, so the control plane always stays electable. A second loop
    (when the fabric is enabled and ``partition_mtbf_s`` is set) cuts a
    random controller↔controller link for an exponential duration —
    renewals and accepts stall, leases lapse, and deposed leaders must
    cut off their in-flight COMMITs.
    """

    def __init__(self, controller: ClusterController, kill_mtbf_s: float,
                 seed: int = 0, mean_repair_s: float = 5.0,
                 prefer_leader: float = 0.8,
                 partition_mtbf_s: Optional[float] = None,
                 mean_heal_s: float = 2.0):
        if kill_mtbf_s <= 0:
            raise ValueError("kill MTBF must be positive")
        if mean_repair_s <= 0:
            raise ValueError("mean repair time must be positive")
        super().__init__(controller)
        if controller.consensus is None:
            raise ValueError("ControllerKillInjector needs the consensus "
                             "control plane (config.consensus_enabled)")
        self.consensus = controller.consensus
        self.kill_mtbf_s = kill_mtbf_s
        self.mean_repair_s = mean_repair_s
        self.prefer_leader = prefer_leader
        self.partition_mtbf_s = partition_mtbf_s
        self.mean_heal_s = mean_heal_s
        self.rng = SeededRNG(seed).fork("controller-kill-injector")
        self.events: List[ControllerKillEvent] = []
        self.partitions: List[PartitionEvent] = []

    def _loops(self) -> List[Tuple[str, Generator]]:
        loops = [("controller-kill-injector", self._kill_loop())]
        if (self.partition_mtbf_s is not None
                and self.controller.fabric.enabled):
            loops.append(("controller-partition-injector",
                          self._partition_loop()))
        return loops

    def _pick_victim(self) -> Optional[str]:
        group = self.consensus.group
        alive = sorted(n.name for n in group.nodes.values() if n.alive)
        if len(alive) <= group.majority:
            return None          # never make the group unelectable
        leader = group.leader()
        if (leader is not None and leader.name in alive
                and self.rng.random() < self.prefer_leader):
            return leader.name
        return self.rng.choice(alive)

    def _kill_loop(self) -> Generator:
        sim = self.controller.sim
        group = self.consensus.group
        try:
            while True:
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.kill_mtbf_s))
                victim = self._pick_victim()
                if victim is None:
                    continue
                was_leader = group.nodes[victim].is_leader
                event = ControllerKillEvent(sim.now, victim, was_leader)
                self.events.append(event)
                self.consensus.crash_controller(victim)
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.mean_repair_s))
                self.consensus.repair_controller(victim)
                event.repaired_at = sim.now
        except Interrupt:
            # Repair whatever this injector still has down so a stopped
            # soak can drain (and re-elect) cleanly.
            for event in self.events:
                if event.repaired_at is None:
                    self.consensus.repair_controller(event.node)
                    event.repaired_at = self.controller.sim.now
            return

    def _partition_loop(self) -> Generator:
        sim = self.controller.sim
        fabric = self.controller.fabric
        names = list(self.consensus.group.names)
        try:
            while True:
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.partition_mtbf_s))
                if len(names) < 2:
                    continue
                a, b = self.rng.sample(sorted(names), 2)
                fabric.cut(a, b)
                event = PartitionEvent(sim.now, "cut", links=[(a, b)])
                self.partitions.append(event)
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.mean_heal_s))
                fabric.heal(a, b)
                event.healed_at = sim.now
        except Interrupt:
            for event in self.partitions:
                if event.healed_at is None:
                    for a, b in event.links:
                        self.controller.fabric.heal(a, b)
                    event.healed_at = self.controller.sim.now
            return


class PartitionInjector(_RestartableInjector):
    """Cuts random fabric links (or splits the cluster), then heals.

    Episodes arrive with exponential inter-arrival times (``mtbf_s``)
    and last an exponential duration (``mean_heal_s``). With probability
    ``split_probability`` an episode isolates a random group of machines
    from the controller and everyone else; otherwise it cuts between one
    and ``max_cut_links`` individual controller↔machine links.
    Episodes are sequential (cut, wait, heal) so every link an episode
    cut is healed by the same episode.
    """

    def __init__(self, controller: ClusterController, mtbf_s: float,
                 seed: int = 0, mean_heal_s: float = 5.0,
                 split_probability: float = 0.25, max_cut_links: int = 2,
                 asymmetric_probability: float = 0.25):
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        if mean_heal_s <= 0:
            raise ValueError("mean heal time must be positive")
        super().__init__(controller)
        if not controller.fabric.enabled:
            raise ValueError("PartitionInjector needs the network fabric "
                             "(config.network.enabled)")
        self.mtbf_s = mtbf_s
        self.mean_heal_s = mean_heal_s
        self.split_probability = split_probability
        self.max_cut_links = max_cut_links
        # Chance that a cut episode severs only *one* direction of a
        # link: requests vanish but responses flow, or the reverse —
        # the nastiest case for RPC dedup and failure detection.
        self.asymmetric_probability = asymmetric_probability
        self.rng = SeededRNG(seed).fork("partition-injector")
        self.events: List[PartitionEvent] = []

    def _loops(self) -> List[Tuple[str, Generator]]:
        return [("partition-injector", self._loop())]

    def _loop(self) -> Generator:
        sim = self.controller.sim
        fabric = self.controller.fabric
        try:
            while True:
                yield sim.timeout(self.rng.expovariate(1.0 / self.mtbf_s))
                machines = sorted(self.controller.machines)
                if not machines:
                    continue
                if (len(machines) >= 2
                        and self.rng.random() < self.split_probability):
                    event = self._split(machines)
                else:
                    event = self._cut_links(machines)
                self.events.append(event)
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.mean_heal_s))
                for a, b in event.links:
                    fabric.heal(a, b)
                event.healed_at = sim.now
        except Interrupt:
            # Heal whatever this injector still has cut so a stopped
            # soak can drain cleanly.
            for event in self.events:
                if event.healed_at is None:
                    for a, b in event.links:
                        self.controller.fabric.heal(a, b)
                    event.healed_at = sim.now
            return

    def _split(self, machines: List[str]) -> PartitionEvent:
        """Isolate a random minority of machines from everyone else."""
        fabric = self.controller.fabric
        k = self.rng.randint(1, max(1, len(machines) // 2))
        isolated = sorted(self.rng.sample(machines, k))
        rest = [CONTROLLER] + [m for m in machines if m not in isolated]
        links = [(a, b) for a in rest for b in isolated]
        for a, b in links:
            fabric.cut(a, b)
        self.controller.trace.emit(
            "net_partition", groups=[sorted(rest), isolated])
        return PartitionEvent(self.controller.sim.now, "split",
                              links=links, groups=[sorted(rest), isolated])

    def _cut_links(self, machines: List[str]) -> PartitionEvent:
        """Cut a few individual controller↔machine links.

        Each cut may be asymmetric: only one direction is severed, so
        e.g. a machine keeps receiving statements whose acks never make
        it back. Healing is always symmetric (a no-op on the direction
        that was never cut).
        """
        fabric = self.controller.fabric
        k = self.rng.randint(1, min(self.max_cut_links, len(machines)))
        targets = sorted(self.rng.sample(machines, k))
        links = []
        for name in targets:
            if self.rng.random() < self.asymmetric_probability:
                link = (CONTROLLER, name) if self.rng.random() < 0.5 \
                    else (name, CONTROLLER)
                fabric.cut(*link, symmetric=False)
            else:
                link = (CONTROLLER, name)
                fabric.cut(*link)
            links.append(link)
        return PartitionEvent(self.controller.sim.now, "cut", links=links)


class WanPartitionInjector(_RestartableInjector):
    """Cuts colo↔colo WAN links or isolates a colo, then heals.

    Episodes arrive with exponential inter-arrival times (``mtbf_s``)
    and last an exponential duration (``mean_heal_s``). With probability
    ``isolate_probability`` an episode isolates one colo from the system
    controller *and* every peer colo — starving the colo heartbeat
    detector (suspicion, and declaration if the outage outlives the
    detector's patience); otherwise it cuts a single colo↔colo link,
    stalling that direction's log shipping until the resumable catch-up
    drains it after the heal. Episodes are sequential, so every link an
    episode cut is healed by the same episode.
    """

    def __init__(self, system, mtbf_s: float, seed: int = 0,
                 mean_heal_s: float = 2.0,
                 isolate_probability: float = 0.25,
                 asymmetric_probability: float = 0.25):
        if mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        if mean_heal_s <= 0:
            raise ValueError("mean heal time must be positive")
        if not system.wan.enabled:
            raise ValueError("WanPartitionInjector needs the WAN fabric "
                             "(wan.enabled)")
        super().__init__(system)
        self.system = system
        self.mtbf_s = mtbf_s
        self.mean_heal_s = mean_heal_s
        self.isolate_probability = isolate_probability
        self.asymmetric_probability = asymmetric_probability
        self.rng = SeededRNG(seed).fork("wan-partition-injector")
        self.events: List[PartitionEvent] = []

    def _loops(self) -> List[Tuple[str, Generator]]:
        return [("wan-partition-injector", self._loop())]

    def _loop(self) -> Generator:
        sim = self.system.sim
        fabric = self.system.wan
        try:
            while True:
                yield sim.timeout(self.rng.expovariate(1.0 / self.mtbf_s))
                colos = sorted(self.system.colos)
                if not colos:
                    continue
                if self.rng.random() < self.isolate_probability:
                    event = self._isolate(colos)
                elif len(colos) >= 2:
                    event = self._cut_wan_link(colos)
                else:
                    continue
                self.events.append(event)
                yield sim.timeout(
                    self.rng.expovariate(1.0 / self.mean_heal_s))
                for a, b in event.links:
                    fabric.heal(a, b)
                event.healed_at = sim.now
        except Interrupt:
            # Heal whatever this injector still has cut so a stopped
            # soak can drain cleanly.
            for event in self.events:
                if event.healed_at is None:
                    for a, b in event.links:
                        self.system.wan.heal(a, b)
                    event.healed_at = self.system.sim.now
            return

    def _isolate(self, colos: List[str]) -> PartitionEvent:
        """Cut one colo off from the system controller and every peer."""
        fabric = self.system.wan
        victim = self.rng.choice(colos)
        rest = [SYSTEM] + [c for c in colos if c != victim]
        links = [(a, victim) for a in rest]
        for a, b in links:
            fabric.cut(a, b)
        self.system.trace.emit("net_partition",
                               groups=[sorted(rest), [victim]])
        return PartitionEvent(self.system.sim.now, "split", links=links,
                              groups=[sorted(rest), [victim]])

    def _cut_wan_link(self, colos: List[str]) -> PartitionEvent:
        """Cut one colo↔colo WAN link (maybe only one direction)."""
        fabric = self.system.wan
        a, b = self.rng.sample(colos, 2)
        if self.rng.random() < self.asymmetric_probability:
            link = (a, b)
            fabric.cut(*link, symmetric=False)
        else:
            link = (a, b)
            fabric.cut(*link)
        return PartitionEvent(self.system.sim.now, "cut", links=[link])
