"""Experiment harness: shared drivers and reporting for the benchmarks."""

from repro.harness.faults import FailureInjector
from repro.harness.reporting import format_series, format_table
from repro.harness.runner import (RecoveryExperimentResult, TpcwRunResult,
                                  run_recovery_experiment, run_tpcw_cluster,
                                  run_sla_placement)

__all__ = [
    "FailureInjector",
    "RecoveryExperimentResult",
    "TpcwRunResult",
    "format_series",
    "format_table",
    "run_recovery_experiment",
    "run_sla_placement",
    "run_tpcw_cluster",
]
