"""The colo controller: clusters plus a pool of free machines.

"Each colo contains one or more machine clusters... The clusters are
coordinated by a fault-tolerant colo controller, which routes client
database connection requests to the appropriate cluster that hosts the
database. In addition, the colo controller manages a pool of free
machines and adds them to clusters as needed."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.controller import ClusterController, Connection
from repro.cluster.machine import Machine
from repro.errors import NoReplicaError, SlaViolationError
from repro.sim import Simulator
from repro.sla.model import ResourceVector
from repro.sla.placement import DatabaseLoad, MachineBin, first_fit


class ColoController:
    """One physical location: clusters, free pool, connection routing."""

    def __init__(self, sim: Simulator, name: str,
                 cluster_config: Optional[ClusterConfig] = None,
                 free_machines: int = 10,
                 location: float = 0.0):
        self.sim = sim
        self.name = name
        self.cluster_config = cluster_config or ClusterConfig()
        self.clusters: Dict[str, ClusterController] = {}
        self.free_pool = free_machines
        # Abstract geographic coordinate used for proximity routing.
        self.location = location
        # db -> cluster name
        self._db_cluster: Dict[str, str] = {}
        # Placement bookkeeping: machine name -> bin (capacity/used).
        self._bins: Dict[str, MachineBin] = {}

    # -- cluster management -------------------------------------------------------

    def add_cluster(self, name: Optional[str] = None,
                    machines: int = 4) -> ClusterController:
        name = name or f"{self.name}-cluster{len(self.clusters) + 1}"
        if machines > self.free_pool:
            raise SlaViolationError(
                f"colo {self.name}: free pool has {self.free_pool} machines, "
                f"requested {machines}")
        cluster = ClusterController(self.sim, self.cluster_config, name=name)
        for _ in range(machines):
            self._provision(cluster)
        cluster.free_machine_hook = lambda c=cluster: self.provision_machine(c)
        self.clusters[name] = cluster
        return cluster

    def _provision(self, cluster: ClusterController) -> Machine:
        if self.free_pool <= 0:
            raise SlaViolationError(f"colo {self.name}: free pool exhausted")
        self.free_pool -= 1
        machine = cluster.add_machine()
        self._bins[machine.name] = MachineBin(machine.name,
                                              machine.capacity_vector())
        return machine

    def provision_machine(self, cluster: ClusterController) -> Optional[Machine]:
        """Move one machine from the free pool into ``cluster``."""
        if self.free_pool <= 0:
            return None
        return self._provision(cluster)

    def cluster_of(self, db: str) -> ClusterController:
        if db not in self._db_cluster:
            raise NoReplicaError(f"colo {self.name} does not host {db!r}")
        return self.clusters[self._db_cluster[db]]

    def hosts(self, db: str) -> bool:
        return db in self._db_cluster

    # -- SLA-driven database placement ----------------------------------------------

    def place_database(self, db: str, ddl: List[str],
                       requirement: ResourceVector,
                       replicas: int) -> ClusterController:
        """Choose machines with First-Fit (Algorithm 2) and create the db.

        Tries each cluster in order; extends a cluster from the free pool
        when the new database's replicas do not fit on its current
        machines (Algorithm 2 lines 12-14).
        """
        if not self.clusters:
            self.add_cluster(machines=min(4, self.free_pool))
        last_error: Optional[Exception] = None
        for cluster in self.clusters.values():
            try:
                machines = self._fit_in_cluster(cluster, db, requirement,
                                                replicas)
            except SlaViolationError as exc:
                last_error = exc
                continue
            cluster.create_database(db, ddl, machines=machines)
            for machine_name in machines:
                self._bins[machine_name].place(
                    DatabaseLoad(db, requirement, replicas=1))
            self._db_cluster[db] = cluster.name
            return cluster
        raise last_error or SlaViolationError(
            f"colo {self.name}: no cluster can host {db!r}")

    def _fit_in_cluster(self, cluster: ClusterController, db: str,
                        requirement: ResourceVector,
                        replicas: int) -> List[str]:
        ordered_bins = [self._bins[name] for name in cluster.machines
                        if cluster.machines[name].alive]
        chosen: List[str] = []
        for _ in range(replicas):
            placed = False
            for machine_bin in ordered_bins:
                if machine_bin.name in chosen:
                    continue
                if machine_bin.can_fit(requirement):
                    chosen.append(machine_bin.name)
                    placed = True
                    break
            if not placed:
                machine = self.provision_machine(cluster)
                if machine is None:
                    raise SlaViolationError(
                        f"colo {self.name}: cannot fit replica of {db!r}")
                chosen.append(machine.name)
                ordered_bins.append(self._bins[machine.name])
        return chosen

    # -- connection routing -----------------------------------------------------------

    def connect(self, db: str) -> Connection:
        return self.cluster_of(db).connect(db)
