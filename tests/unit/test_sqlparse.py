"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.engine.sqlparse import TokenType, parse, parse_expression, tokenize
from repro.engine.sqlparse import nodes as n
from repro.errors import SqlError


class TestLexer:
    def test_keywords_uppercase(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercase(self):
        tokens = tokenize("MyTable my_col2")
        assert [t.value for t in tokens[:-1]] == ["mytable", "my_col2"]

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.14 and isinstance(tokens[1].value, float)

    def test_strings_with_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_params_and_operators(self):
        tokens = tokenize("a <= ? <> !=")
        values = [t.value for t in tokens[:-1]]
        assert values == ["a", "<=", "?", "<>", "!="]

    def test_qualified_name_dots(self):
        tokens = tokenize("t1.col")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "col"]

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("a @ b")

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestSelectParsing:
    def test_simple_select_star(self):
        stmt = parse("SELECT * FROM item")
        assert isinstance(stmt, n.Select)
        assert stmt.star
        assert stmt.tables[0].table == "item"

    def test_select_items_and_aliases(self):
        stmt = parse("SELECT a, b AS bee, COUNT(*) cnt FROM t")
        assert [i.alias for i in stmt.items] == [None, "bee", "cnt"]

    def test_comma_join_with_aliases(self):
        stmt = parse("SELECT * FROM item i, author a WHERE i.i_a_id = a.a_id")
        assert [t.binding for t in stmt.tables] == ["i", "a"]
        assert isinstance(stmt.where, n.BinaryOp)

    def test_explicit_join(self):
        stmt = parse("SELECT * FROM item JOIN author ON i_a_id = a_id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.table == "author"

    def test_group_order_limit_offset(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a "
                     "ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t garbage garbage")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, b")


class TestDmlParsing:
    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_full_row(self):
        stmt = parse("INSERT INTO t VALUES (?, ?)")
        assert stmt.columns == []
        assert isinstance(stmt.rows[0][0], n.Param)

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE k = 3")
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 5")
        assert stmt.table == "t"

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDdlParsing:
    def test_create_table_inline_pk(self):
        stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10))")
        assert stmt.primary_key == ["id"]
        assert not stmt.columns[0].nullable

    def test_create_table_composite_pk(self):
        stmt = parse("CREATE TABLE t (a INT NOT NULL, b INT NOT NULL, "
                     "PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_both_pk_styles_rejected(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a INT PRIMARY KEY, PRIMARY KEY (a))")

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON t (a, b)")
        assert stmt.columns == ["a", "b"]
        assert not stmt.unique

    def test_create_unique_index(self):
        assert parse("CREATE UNIQUE INDEX idx ON t (a)").unique

    def test_type_length_spec_ignored(self):
        stmt = parse("CREATE TABLE t (a NUMERIC(12, 2))")
        assert stmt.columns[0].type_name == "numeric"


class TestExpressions:
    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_arith_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-a")
        assert isinstance(expr, n.UnaryOp) and expr.op == "NEG"

    def test_not_in(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, n.InList) and expr.negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert isinstance(expr, n.Between)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 5").negated

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("a IS NULL").negated
        assert parse_expression("a IS NOT NULL").negated

    def test_like_and_not_like(self):
        like = parse_expression("a LIKE 'x%'")
        assert isinstance(like, n.BinaryOp) and like.op == "LIKE"
        not_like = parse_expression("a NOT LIKE 'x%'")
        assert isinstance(not_like, n.UnaryOp) and not_like.op == "NOT"

    def test_params_indexed_in_order(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        params = []

        def walk(expr):
            if isinstance(expr, n.Param):
                params.append(expr.index)
            elif isinstance(expr, n.BinaryOp):
                walk(expr.left)
                walk(expr.right)

        walk(stmt.where)
        assert params == [0, 1]

    def test_aggregates(self):
        expr = parse_expression("COUNT(*)")
        assert expr.star
        expr = parse_expression("SUM(DISTINCT a)")
        assert expr.distinct and expr.name == "SUM"

    def test_neq_normalized(self):
        expr = parse_expression("a != 1")
        assert expr.op == "<>"
