"""TPC-W: the transactional web benchmark the paper evaluates with.

The paper "bypassed the application servers and only focused on the
database operations", so this implementation drives the *database
transactions* of the 14 TPC-W web interactions directly through cluster
connections, with the three standard mixes:

* **browsing** — 95 % browse / 5 % order,
* **shopping** — 80 % browse / 20 % order (the default reporting mix),
* **ordering** — 50 % browse / 50 % order.

Components: schema DDL (:mod:`schema`), a scaled deterministic data
generator (:mod:`datagen`), the interaction transaction templates
(:mod:`transactions`), the mix tables (:mod:`mixes`), and the emulated
browser client (:mod:`client`).
"""

from repro.workloads.tpcw.client import TpcwClient
from repro.workloads.tpcw.datagen import TpcwDatabase, TpcwScale
from repro.workloads.tpcw.mixes import MIXES, Mix

__all__ = ["MIXES", "Mix", "TpcwClient", "TpcwDatabase", "TpcwScale"]
