"""Ablation — replication factor 1 vs 2 vs 3.

The paper fixes 2 replicas per database; this ablation shows the cost
curve: each extra replica adds write fan-out and 2PC participants,
trading throughput for failure tolerance.
"""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.harness import format_table, run_tpcw_cluster
from repro.workloads.tpcw import TpcwScale

from common import report


def run_ablation():
    results = {}
    for replicas in (1, 2, 3):
        results[replicas] = run_tpcw_cluster(
            mix_name="shopping",
            read_option=ReadOption.OPTION_1,
            write_policy=WritePolicy.CONSERVATIVE,
            machines=6,
            n_databases=4,
            replicas=replicas,
            clients_per_db=4,
            duration_s=12.0,
            scale=TpcwScale(items=800, emulated_browsers=4),
            think_time_s=0.02,
            buffer_pool_pages=384,
        )
    rows = [[replicas, result.throughput_tps, result.buffer_hit_rate]
            for replicas, result in results.items()]
    text = format_table(
        ["replicas", "throughput (tps)", "buffer hit rate"], rows)
    return text, results


@pytest.mark.benchmark(group="ablation-replication")
def test_ablation_replication_factor(benchmark, capsys):
    text, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_replication_factor", text, capsys)
    # Throughput declines monotonically-ish with replication degree.
    assert results[1].throughput_tps >= results[2].throughput_tps
    assert results[2].throughput_tps >= results[3].throughput_tps * 0.9
