"""Statistics-invariant property test.

The catalogue statistics are maintained incrementally — commit replays
the transaction's undo log as deltas, aborts touch nothing. After any
randomized soak of inserts, updates, deletes, commits, and aborts, the
incrementally-maintained :class:`TableStats` must equal a from-scratch
recount of the committed heap (``TableStats.rebuild``), including the
lazily-refreshed min/max bounds and exact per-value counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig
from repro.errors import EngineError
from repro.engine.stats import TableStats

keys = st.integers(min_value=0, max_value=25)
vals = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "update_all"]),
        keys, vals,
        st.booleans(),  # commit (True) or abort (False)
    ),
    min_size=1, max_size=40,
)


def _snapshot_oracle(engine):
    table = engine.database("db").table("t")
    rebuilt = TableStats.rebuild(len(table.schema.columns),
                                 (row for _, row in table.scan()))
    return rebuilt.snapshot()


@settings(max_examples=60, deadline=None)
@given(operations)
def test_incremental_stats_match_recount(ops):
    engine = Engine(config=EngineConfig())
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(
        txn, "db",
        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, "
        "s VARCHAR(10))")
    # v stays unindexed: it takes NULLs, which the secondary-index
    # B+Tree does not key. The index goes on the never-null s column.
    engine.execute_sync(txn, "db", "CREATE INDEX t_s ON t (s)")
    engine.commit(txn)

    for kind, key, value, commit in ops:
        txn = engine.begin()
        try:
            if kind == "insert":
                engine.execute_sync(txn, "db",
                                    "INSERT INTO t VALUES (?, ?, ?)",
                                    (key, value, f"s{key % 3}"))
            elif kind == "update":
                engine.execute_sync(txn, "db",
                                    "UPDATE t SET v = ? WHERE k = ?",
                                    (value, key))
            elif kind == "update_all":
                engine.execute_sync(txn, "db",
                                    "UPDATE t SET s = ? WHERE k >= ?",
                                    (f"u{key % 4}", key))
            else:
                engine.execute_sync(txn, "db", "DELETE FROM t WHERE k = ?",
                                    (key,))
        except EngineError:
            engine.abort(txn)
            continue
        if commit:
            engine.commit(txn)
        else:
            engine.abort(txn)

    live = engine.table_stats("db", "t").snapshot()
    assert live == _snapshot_oracle(engine)


@settings(max_examples=25, deadline=None)
@given(operations)
def test_stats_match_recount_inside_multistatement_txns(ops):
    """Several statements per transaction; the whole batch of deltas
    lands at commit or none of it does."""
    engine = Engine(config=EngineConfig())
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(
        txn, "db",
        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, "
        "s VARCHAR(10))")
    engine.commit(txn)

    for batch_start in range(0, len(ops), 3):
        batch = ops[batch_start:batch_start + 3]
        txn = engine.begin()
        failed = False
        for kind, key, value, _ in batch:
            try:
                if kind == "insert":
                    engine.execute_sync(txn, "db",
                                        "INSERT INTO t VALUES (?, ?, ?)",
                                        (key, value, "x"))
                elif kind in ("update", "update_all"):
                    engine.execute_sync(txn, "db",
                                        "UPDATE t SET v = ? WHERE k = ?",
                                        (value, key))
                else:
                    engine.execute_sync(txn, "db",
                                        "DELETE FROM t WHERE k = ?", (key,))
            except EngineError:
                failed = True
                break
        if failed or not batch[-1][3]:
            engine.abort(txn)
        else:
            engine.commit(txn)

    live = engine.table_stats("db", "t").snapshot()
    assert live == _snapshot_oracle(engine)
