"""Figure 8 — rejected transactions per database during recovery.

X-axis: number of recovery threads (concurrent database copy processes);
two curves: database-granularity vs table-granularity copying.

Expected shape (paper Section 5): database-level copying rejects
significantly more transactions per database than table-level copying
(the whole database is write-blocked for the copy's duration instead of
one table at a time), and more concurrent recovery threads stretch each
copy (shared disk/network), increasing rejections.
"""

import pytest

from repro.cluster import CopyGranularity
from repro.harness import format_table, run_recovery_experiment

from common import report

THREAD_SWEEP = (1, 2, 4)


def run_fig8():
    results = {}
    for granularity in (CopyGranularity.TABLE, CopyGranularity.DATABASE):
        for threads in THREAD_SWEEP:
            outcome = run_recovery_experiment(
                granularity=granularity,
                recovery_threads=threads,
                machines=4,
                n_databases=4,
                clients_per_db=2,
                duration_s=120.0,
                failure_time_s=20.0,
                copy_bytes_factor=2000.0,
                think_time_s=0.3,
            )
            results[(granularity, threads)] = outcome
    headers = ["recovery threads", "table-level rej/db", "db-level rej/db"]
    rows = [
        [threads,
         results[(CopyGranularity.TABLE, threads)].mean_rejections_per_db,
         results[(CopyGranularity.DATABASE, threads)].mean_rejections_per_db]
        for threads in THREAD_SWEEP
    ]
    text = format_table(headers, rows)
    return text, results


@pytest.mark.benchmark(group="fig8")
def test_fig8_recovery_rejections(benchmark, capsys):
    text, results = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    report("fig8_recovery_rejections", text, capsys)
    for threads in THREAD_SWEEP:
        table_rej = results[(CopyGranularity.TABLE, threads)
                            ].mean_rejections_per_db
        db_rej = results[(CopyGranularity.DATABASE, threads)
                         ].mean_rejections_per_db
        # Database-level copying rejects (significantly) more.
        assert db_rej > table_rej, (
            f"threads={threads}: db-level {db_rej} <= table-level {table_rej}")
    # Recovery actually completed in every run.
    for outcome in results.values():
        assert outcome.recovery_complete_time is not None
        assert all(r.succeeded for r in outcome.recovery_records)
