"""Unit tests for the multi-Paxos consensus core (repro.cluster.consensus).

These exercise :class:`PaxosGroup` directly over a standalone network
fabric — no cluster controller attached — plus the deterministic
:class:`ControllerState` replay machine the replicated log drives.
"""

import pytest

from repro.cluster.consensus import (ConsensusConfig, ControllerState,
                                     PaxosGroup, ballot_term, command_digest)
from repro.cluster.network import NetworkConfig, NetworkFabric
from repro.errors import NotLeaderError
from repro.sim import Simulator


def make_group(sim, n=3, seed=0, **config_kwargs):
    fabric = NetworkFabric(sim, NetworkConfig(enabled=True, latency_s=0.002,
                                              jitter_s=0.001, seed=seed))
    names = [f"ctl{i}" for i in range(n)]
    group = PaxosGroup(sim, names,
                       config=ConsensusConfig(seed=seed, **config_kwargs),
                       fabric=fabric)
    group.start()
    return group, fabric


def propose_via(sim, group, node, cmd, out):
    """Run one proposal as a sim process, capturing index or error."""
    def driver():
        try:
            out["index"] = yield from group.propose(node, cmd)
        except NotLeaderError as exc:
            out["error"] = exc
    proc = sim.process(driver())
    proc.defused = True
    return proc


class TestBallots:
    def test_terms_are_unique_and_order_preserving(self):
        ballots = [(rnd, node) for rnd in range(1, 6) for node in range(3)]
        terms = [ballot_term(b, 3) for b in ballots]
        assert len(set(terms)) == len(terms)
        for a in ballots:
            for b in ballots:
                assert (a < b) == (ballot_term(a, 3) < ballot_term(b, 3))

    def test_command_digest_is_stable_and_key_order_insensitive(self):
        a = command_digest("decision", {"txn": 1, "decision": "commit",
                                        "machines": ["m0", "m1"]})
        b = command_digest("decision", {"machines": ["m0", "m1"],
                                        "decision": "commit", "txn": 1})
        assert a == b
        assert a != command_digest("decision", {"txn": 2,
                                                "decision": "commit",
                                                "machines": ["m0", "m1"]})


class TestElection:
    def test_bootstrap_elects_first_node(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        leader = group.leader()
        assert leader is not None and leader.name == "ctl0"
        assert group.last_leader == "ctl0"
        # The takeover command travelled through the log to every node.
        sim.run(until=2.0)
        for node in group.nodes.values():
            assert node.state.leader == "ctl0"
            assert node.state.term == leader.leader_term

    def test_group_needs_three_replicas(self, sim):
        fabric = NetworkFabric(sim, NetworkConfig(enabled=True))
        with pytest.raises(ValueError):
            PaxosGroup(sim, ["a", "b"], fabric=fabric)

    def test_leader_crash_triggers_reelection_with_higher_term(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        old = group.leader()
        old_term = old.leader_term
        group.crash(old.name)
        sim.run(until=15.0)
        new = group.leader()
        assert new is not None
        assert new.name != old.name
        assert new.leader_term > old_term

    def test_standing_lease_blocks_competing_candidate(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        assert group.leader().name == "ctl0"
        challenger = group.nodes["ctl1"]
        group._start_campaign(challenger)
        sim.run(until=1.5)
        # The lease grants held by a majority nack the challenger.
        assert not challenger.is_leader
        assert group.leader().name == "ctl0"

    def test_propose_from_follower_raises_not_leader(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        follower = group.nodes["ctl1"]
        out = {}
        propose_via(sim, group, follower, ("noop", {}), out)
        sim.run(until=1.2)
        assert isinstance(out.get("error"), NotLeaderError)
        assert out["error"].leader == "ctl0"


class TestReplication:
    def test_commands_apply_on_all_replicas_with_identical_digests(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        leader = group.leader()
        outs = []
        for i in range(5):
            out = {}
            outs.append(out)
            propose_via(sim, group, leader,
                        ("db_create", {"db": f"db{i}",
                                       "machines": [f"m{i}"]}), out)
        sim.run(until=5.0)
        assert sorted(o["index"] for o in outs) == list(
            range(outs[0]["index"], outs[0]["index"] + 5))
        applied = {node.name: node.applied_to for node in group.nodes.values()}
        assert len(set(applied.values())) == 1, applied
        logs = [node.chosen for node in group.nodes.values()]
        assert logs[0] == logs[1] == logs[2]
        for node in group.nodes.values():
            assert node.state.replicas == {f"db{i}": [f"m{i}"]
                                           for i in range(5)}

    def test_crashed_replica_catches_up_after_repair(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        group.crash("ctl2")
        leader = group.leader()
        for i in range(4):
            propose_via(sim, group, leader,
                        ("placement", {"db": f"db{i}", "target": "m9"}), {})
        sim.run(until=4.0)
        assert group.nodes["ctl2"].applied_to < leader.applied_to
        group.repair("ctl2")
        sim.run(until=10.0)
        lagger = group.nodes["ctl2"]
        assert lagger.applied_to == leader.applied_to
        assert lagger.chosen == leader.chosen
        assert lagger.state.placements == leader.state.placements

    def test_deposed_leader_pending_proposals_fail(self, sim):
        group, _ = make_group(sim)
        sim.run(until=1.0)
        leader = group.leader()
        group._step_down(leader, "test deposition")
        out = {}
        propose_via(sim, group, leader, ("noop", {}), out)
        sim.run(until=1.5)
        assert isinstance(out.get("error"), NotLeaderError)


class TestControllerState:
    def test_apply_is_deterministic_across_replicas(self):
        script = [
            ("leader_takeover", {"node": "ctl0", "term": 1}),
            ("db_create", {"db": "app", "machines": ["m0", "m1"]}),
            ("replica_add", {"db": "app", "machine": "m2"}),
            ("machine_declared", {"machine": "m1"}),
            ("placement", {"db": "app", "target": "m3"}),
            ("decision", {"txn": 7, "decision": "commit",
                          "machines": ["m0", "m2"]}),
            ("machine_repaired", {"machine": "m1"}),
            ("decision_clear", {"txn": 7}),
        ]
        states = [ControllerState(), ControllerState()]
        for state in states:
            for kind, payload in script:
                state.apply(kind, payload)
        for state in states:
            assert state.term == 1 and state.leader == "ctl0"
            assert state.replicas == {"app": ["m0", "m2"]}
            assert state.declared_dead == set() and state.fenced == set()
            assert state.placements == {"app": "m3"}
            assert state.decisions == {}

    def test_machine_declared_fences_and_drops_replicas(self):
        state = ControllerState()
        state.apply("db_create", {"db": "a", "machines": ["m0", "m1"]})
        state.apply("machine_declared", {"machine": "m1"})
        assert state.replicas == {"a": ["m0"]}
        assert state.declared_dead == {"m1"} and state.fenced == {"m1"}
        state.apply("machine_readmitted", {"machine": "m1"})
        assert state.declared_dead == set() and state.fenced == set()

    def test_reconcile_replaces_metadata_wholesale(self):
        state = ControllerState()
        state.apply("db_create", {"db": "stale", "machines": ["m9"]})
        state.apply("machine_declared", {"machine": "m9"})
        state.apply("reconcile", {"replicas": {"fresh": ["m0"]},
                                  "declared_dead": ["m7"],
                                  "fenced": ["m7", "m8"]})
        assert state.replicas == {"fresh": ["m0"]}
        assert state.declared_dead == {"m7"}
        assert state.fenced == {"m7", "m8"}

    def test_apply_does_not_alias_payload_lists(self):
        payload = {"db": "a", "machines": ["m0"]}
        state = ControllerState()
        state.apply("db_create", payload)
        state.apply("replica_add", {"db": "a", "machine": "m1"})
        assert payload["machines"] == ["m0"]

    def test_unknown_command_raises(self):
        with pytest.raises(ValueError):
            ControllerState().apply("frobnicate", {})
