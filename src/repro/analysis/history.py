"""Operation histories, recorded per site (machine).

An engine instance calls into a :class:`SiteHistory` as it executes:
each read/write is logged *in execution order*, which under strict 2PL is
also conflict order. A :class:`GlobalHistory` aggregates the sites of one
cluster so the serialization-graph checker can look for cross-site cycles
— exactly the construction in the paper's Theorems 1 and 2.

Objects are logical identifiers ``(database, table, primary-key)`` so the
same row is recognized across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

Obj = Tuple[Any, ...]


@dataclass(frozen=True)
class Op:
    """One logged operation."""

    seq: int
    txn_id: int
    kind: str  # "r" | "w"
    obj: Obj


class SiteHistory:
    """Execution history of one machine."""

    def __init__(self, site: str):
        self.site = site
        self.ops: List[Op] = []
        self.committed: Set[int] = set()
        self.aborted: Set[int] = set()
        self.prepared: List[int] = []
        self._seq = 0

    def record_read(self, txn_id: int, obj: Obj) -> None:
        self._seq += 1
        self.ops.append(Op(self._seq, txn_id, "r", obj))

    def record_write(self, txn_id: int, obj: Obj) -> None:
        self._seq += 1
        self.ops.append(Op(self._seq, txn_id, "w", obj))

    def record_prepare(self, txn_id: int) -> None:
        self.prepared.append(txn_id)

    def record_commit(self, txn_id: int) -> None:
        self.committed.add(txn_id)

    def record_abort(self, txn_id: int) -> None:
        self.aborted.add(txn_id)

    def conflict_edges(self,
                       restrict_to: Optional[Set[int]] = None
                       ) -> Set[Tuple[int, int]]:
        """Edges (Ti, Tj): conflicting ops with Ti's op scheduled first.

        Only transactions in ``restrict_to`` (default: this site's
        committed set) contribute — aborted transactions' operations are
        not part of the committed history.
        """
        allowed = self.committed if restrict_to is None else restrict_to
        edges: Set[Tuple[int, int]] = set()
        by_obj: Dict[Obj, List[Op]] = {}
        for op in self.ops:
            if op.txn_id in allowed:
                by_obj.setdefault(op.obj, []).append(op)
        for ops in by_obj.values():
            for i, earlier in enumerate(ops):
                for later in ops[i + 1:]:
                    if earlier.txn_id == later.txn_id:
                        continue
                    if earlier.kind == "w" or later.kind == "w":
                        edges.add((earlier.txn_id, later.txn_id))
        return edges


class GlobalHistory:
    """The union of all site histories in one cluster."""

    def __init__(self):
        self.sites: Dict[str, SiteHistory] = {}

    def site(self, name: str) -> SiteHistory:
        if name not in self.sites:
            self.sites[name] = SiteHistory(name)
        return self.sites[name]

    def committed_everywhere(self) -> Set[int]:
        """Transactions the coordinator committed (committed on >= 1 site).

        With read-one-write-all a transaction's commit is recorded on each
        replica it wrote; a read-only transaction commits on the site that
        served it. Union over sites is the coordinator's committed set.
        """
        out: Set[int] = set()
        for site in self.sites.values():
            out |= site.committed
        return out

    def global_edges(self) -> Set[Tuple[int, int]]:
        committed = self.committed_everywhere()
        edges: Set[Tuple[int, int]] = set()
        for site in self.sites.values():
            edges |= site.conflict_edges(restrict_to=committed)
        return edges


def format_history(history: GlobalHistory,
                   max_ops_per_site: int = 200) -> str:
    """Render a global history the way the paper writes them.

    One line per site, operations in execution order:
    ``m1: r1(x), w1(y), w2(x), c2, c1`` — invaluable when staring at a
    serialization-graph cycle.
    """
    lines = []
    for name in sorted(history.sites):
        site = history.sites[name]
        parts = []
        for op in site.ops[:max_ops_per_site]:
            obj = op.obj[-1]
            if isinstance(obj, tuple) and len(obj) == 1:
                obj = obj[0]
            parts.append(f"{op.kind}{op.txn_id}({obj})")
        for txn_id in sorted(site.committed):
            parts.append(f"c{txn_id}")
        for txn_id in sorted(site.aborted):
            parts.append(f"a{txn_id}")
        suffix = " ..." if len(site.ops) > max_ops_per_site else ""
        lines.append(f"{name}: {', '.join(parts)}{suffix}")
    return "\n".join(lines)
