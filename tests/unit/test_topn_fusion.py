"""Top-N fusion: ORDER BY + LIMIT must equal full-sort-then-slice.

Both execution paths (compiled and interpreted) fuse ``Limit(Sort)``
into a bounded heap selection. These tests pin the fused result to the
unfused oracle — the same query without LIMIT, sliced in Python — over
the awkward cases: NULL ordering, DESC keys, multi-key sorts, OFFSET,
and duplicate sort keys (stability).
"""

import pytest

from repro.engine import Engine, EngineConfig

ROWS = [
    (0, None, "b"), (1, 5, "a"), (2, 5, "c"), (3, None, "a"),
    (4, 1, "b"), (5, 9, "a"), (6, 1, "a"), (7, 9, "c"),
    (8, 0, "b"), (9, 7, "a"),
]

QUERIES = [
    "SELECT k, v FROM t ORDER BY v{limit}",
    "SELECT k, v FROM t ORDER BY v DESC{limit}",
    "SELECT k, v, s FROM t ORDER BY v DESC, s, k{limit}",
    "SELECT k FROM t ORDER BY s DESC, v{limit}",
    "SELECT v, s FROM t WHERE k >= 2 ORDER BY s, v DESC{limit}",
    "SELECT k + v FROM t WHERE v IS NOT NULL ORDER BY v, k{limit}",
]

LIMITS = [" LIMIT 3", " LIMIT 3 OFFSET 2", " LIMIT 0", " LIMIT 20",
          " LIMIT 20 OFFSET 4"]


def build(compile_plans):
    engine = Engine(config=EngineConfig(compile_plans=compile_plans))
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, "
                        "v INTEGER, s VARCHAR(5))")
    for row in ROWS:
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?, ?)",
                            row)
    engine.commit(txn)
    return engine


def rows_for(engine, sql):
    txn = engine.begin()
    result = engine.execute_sync(txn, "db", sql)
    engine.commit(txn)
    return result.rows


@pytest.mark.parametrize("compile_plans", [True, False],
                         ids=["compiled", "interpreted"])
@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("limit", LIMITS)
def test_fused_topn_equals_sort_then_slice(compile_plans, query, limit):
    engine = build(compile_plans)
    full = rows_for(engine, query.format(limit=""))
    fused = rows_for(engine, query.format(limit=limit))
    n = int(limit.split("LIMIT ")[1].split()[0])
    offset = int(limit.split("OFFSET ")[1]) if "OFFSET" in limit else 0
    assert fused == full[offset:offset + n]


@pytest.mark.parametrize("compile_plans", [True, False],
                         ids=["compiled", "interpreted"])
def test_fusion_is_stable_on_duplicate_keys(compile_plans):
    """Rows tied on every sort key keep their underlying order, exactly
    as the full stable sort would emit them."""
    engine = build(compile_plans)
    full = rows_for(engine, "SELECT k FROM t ORDER BY s")
    for n in range(len(ROWS) + 1):
        assert rows_for(engine,
                        f"SELECT k FROM t ORDER BY s LIMIT {n}") == full[:n]
