"""Figure 2 — throughput with synchronous replication, shopping mix."""

import pytest

from common import report
from throughput_common import peak, run_throughput_figure


@pytest.mark.benchmark(group="fig2")
def test_fig2_throughput_shopping(benchmark, capsys):
    text, series = benchmark.pedantic(
        lambda: run_throughput_figure("shopping"), rounds=1, iterations=1)
    report("fig2_throughput_shopping", text, capsys)
    no_repl = peak(series, "no-replication")
    opt1 = peak(series, "option-1")
    opt2 = peak(series, "option-2")
    opt3 = peak(series, "option-3")
    # Paper: Option 1 best of the replicated options...
    assert opt1 > opt2
    assert opt1 > opt3
    # ...within 5-25 % of no-replication (allow a wider band: we are a
    # simulator, the paper is a rack).
    assert 0.70 * no_repl <= opt1 <= no_repl
    # Options 2/3 pay the cache-locality penalty.
    assert opt3 <= opt2 * 1.10
