"""Unit tests for the tenant-scale fast path's building blocks.

Covers the O(1) structures behind routing and placement (incremental
replica-map counts, the machine-bin hosted-count dict) and the lazy
per-tenant state that pages out when cold (retained-tail compaction,
latency-histogram summarise-on-evict, admission-bucket eviction)."""

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.cluster.admission import AdmissionConfig, AdmissionController
from repro.cluster.replica_map import ReplicaMap
from repro.engine.wal import RetainedTail
from repro.errors import NoReplicaError
from repro.sla import DatabaseLoad, MachineBin, ResourceVector, Sla


# -- ReplicaMap incremental counts -------------------------------------------


def test_replica_map_counts_track_membership():
    rm = ReplicaMap()
    rm.add_database("a", ["m1", "m2"])
    rm.add_database("b", ["m2", "m3"])
    assert rm.hosted_count("m1") == 1
    assert rm.hosted_count("m2") == 2
    assert rm.primary_count("m1") == 1
    assert rm.primary_count("m2") == 1
    assert rm.primary_count("m3") == 0
    assert rm.has("a") and "b" in rm and not rm.has("c")

    rm.drop_database("a")
    assert rm.hosted_count("m1") == 0
    assert rm.hosted_count("m2") == 1
    assert rm.primary_count("m1") == 0

    rm.add_replica("b", "m4")
    assert rm.hosted_count("m4") == 1
    assert rm.primary_count("m4") == 0  # joined a non-empty list


def test_replica_map_counts_match_linear_scan():
    """The O(1) counters always equal the O(N) definitions."""
    rm = ReplicaMap()
    rm.add_database("a", ["m1", "m2"])
    rm.add_database("b", ["m2", "m1"])
    rm.add_database("c", ["m3"])
    rm.add_replica("c", "m1")
    rm.remove_machine("m2")
    rm.drop_database("a")
    for machine in ("m1", "m2", "m3"):
        assert rm.hosted_count(machine) == len(rm.hosted_on(machine))
        assert rm.primary_count(machine) == sum(
            1 for db in rm.databases() if rm.replicas(db)[0] == machine)


def test_replica_map_remove_machine_hands_off_primary():
    rm = ReplicaMap()
    rm.add_database("a", ["m1", "m2", "m3"])
    assert rm.remove_machine("m1") == ["a"]
    # m2 is the new designated primary and the counts moved with it.
    assert rm.replicas("a") == ["m2", "m3"]
    assert rm.primary_count("m1") == 0
    assert rm.primary_count("m2") == 1
    # A machine hosting nothing short-circuits without scanning.
    assert rm.remove_machine("m1") == []


def test_replica_map_rejects_duplicates_and_unknowns():
    rm = ReplicaMap()
    rm.add_database("a", ["m1"])
    with pytest.raises(ValueError):
        rm.add_database("a", ["m2"])
    with pytest.raises(ValueError):
        rm.add_database("b", ["m1", "m1"])
    with pytest.raises(NoReplicaError):
        rm.replicas_view("ghost")
    with pytest.raises(NoReplicaError):
        rm.add_replica("ghost", "m1")


# -- MachineBin hosted counts (S1) -------------------------------------------


CAP = ResourceVector(cpu=4.0, memory_mb=1000.0, disk_io_mbps=100.0,
                     disk_mb=10000.0)
REQ = ResourceVector(cpu=0.5, memory_mb=100.0, disk_io_mbps=5.0,
                     disk_mb=500.0)


def test_machine_bin_hosted_preserves_first_placement_order():
    machine_bin = MachineBin("m", CAP)
    for name in ("a", "b", "c"):
        machine_bin.place(DatabaseLoad(name, REQ, replicas=1))
    assert machine_bin.hosted == ["a", "b", "c"]
    assert machine_bin.hosts("b")

    machine_bin.release("b", REQ)
    assert machine_bin.hosted == ["a", "c"]
    assert not machine_bin.hosts("b")
    # Re-placing a released database appends at the end, like a list.
    machine_bin.place(DatabaseLoad("b", REQ, replicas=1))
    assert machine_bin.hosted == ["a", "c", "b"]


def test_machine_bin_release_is_counted():
    """Placing the same name twice needs two releases, like the old
    list's duplicate entries did."""
    machine_bin = MachineBin("m", CAP)
    machine_bin.place(DatabaseLoad("a", REQ, replicas=1))
    machine_bin.place(DatabaseLoad("a", REQ, replicas=1))
    assert machine_bin.hosted == ["a"]
    assert machine_bin.hosted_counts["a"] == 2
    machine_bin.release("a", REQ)
    assert machine_bin.hosts("a")
    machine_bin.release("a", REQ)
    assert not machine_bin.hosts("a")
    assert machine_bin.used.cpu == pytest.approx(0.0)


# -- RetainedTail.compact ----------------------------------------------------


def test_compact_drops_entries_but_keeps_lsn_position():
    tail = RetainedTail()
    for i in range(5):
        tail.append(f"e{i}")
    assert tail.last_lsn == 5
    dropped = tail.compact()
    assert dropped == 5
    assert len(tail) == 0
    assert tail.last_lsn == 5  # position survives the drop
    assert tail.start_lsn == 6
    assert tail.covers(5)      # nothing after 5 was lost
    assert not tail.covers(4)  # entry 5 itself is gone
    # Appends continue from the same LSN sequence.
    assert tail.append("e5") == 6


def test_compact_respects_pins():
    tail = RetainedTail()
    for i in range(6):
        tail.append(f"e{i}")
    pin = tail.pin(3)
    assert tail.compact() == 3  # entries 1-3 dropped, 4-6 pinned
    assert tail.start_lsn == 4
    assert tail.covers(3)
    tail.release(pin)
    assert tail.compact() == 3
    assert len(tail) == 0


def test_compact_empty_is_noop():
    tail = RetainedTail()
    assert tail.compact() == 0
    tail.append("x")
    tail.compact()
    assert tail.compact() == 0


# -- MetricsCollector histogram paging ---------------------------------------


def test_histogram_eviction_summarises_cold_tenants():
    metrics = MetricsCollector(resident_tenants=2)
    for i, db in enumerate(("a", "b", "c")):
        metrics.record_commit(db, when=float(i), response_time=0.01 * (i + 1))
    # "a" was least recently committing: summarised and dropped.
    assert set(metrics.db_latencies) == {"b", "c"}
    assert metrics.db_latency_evictions == 1
    assert metrics.db_latency_summaries["a"]["count"] == 1
    # Counters stay exact for evicted tenants.
    assert metrics.per_db["a"].committed == 1

    summary = metrics.per_db_summary()
    assert summary["a"]["latency_summarised"] is True
    assert summary["a"]["latency"]["count"] == 1
    assert summary["b"]["latency_summarised"] is False


def test_histogram_lru_refreshes_on_commit():
    metrics = MetricsCollector(resident_tenants=2)
    metrics.record_commit("a", when=0.0, response_time=0.01)
    metrics.record_commit("b", when=1.0, response_time=0.01)
    metrics.record_commit("a", when=2.0, response_time=0.01)  # refresh a
    metrics.record_commit("c", when=3.0, response_time=0.01)
    assert set(metrics.db_latencies) == {"a", "c"}  # b was coldest


def test_histogram_unbounded_by_default():
    metrics = MetricsCollector()
    for i in range(100):
        metrics.record_commit(f"db{i}", when=float(i), response_time=0.01)
    assert len(metrics.db_latencies) == 100
    assert metrics.db_latency_evictions == 0


# -- AdmissionController lazy buckets ----------------------------------------


def _clock_at(holder):
    return lambda: holder[0]


def test_admission_provisions_lazily_from_sla_lookup():
    now = [0.0]
    slas = {"gold": Sla(min_throughput_tps=10.0,
                        max_rejected_fraction=0.05)}
    controller = AdmissionController(AdmissionConfig(), _clock_at(now),
                                     sla_lookup=slas.get)
    assert not controller.buckets  # nothing until first touch
    assert controller.admit("gold")
    assert controller.rates["gold"] == pytest.approx(
        10.0 * controller.config.headroom)
    # No SLA: the default rate, also provisioned at first sight.
    assert controller.admit("free")
    assert controller.rates["free"] == controller.config.default_rate_tps
    # provisioned_rate answers for never-touched tenants without
    # allocating a bucket.
    assert "never" not in controller.buckets
    assert controller.provisioned_rate("never") == \
        controller.config.default_rate_tps
    assert "never" not in controller.buckets


def test_admission_eviction_never_flips_a_decision():
    now = [0.0]
    config = AdmissionConfig(max_resident_buckets=2)
    slas = {}
    controller = AdmissionController(config, _clock_at(now),
                                     sla_lookup=slas.get)
    for db in ("a", "b", "c", "d"):
        assert controller.admit(db)
        now[0] += 1000.0  # everyone refills to capacity between touches
    assert len(controller.buckets) <= 2
    assert controller.evicted_buckets >= 2
    # Rates are remembered for evicted tenants; a rebuilt bucket starts
    # full, exactly as it would have been after the long idle.
    assert set(controller.rates) == {"a", "b", "c", "d"}
    assert controller.admit("a")


def test_admission_eviction_skips_hot_buckets():
    """A bucket below capacity is in-use state and must stay resident."""
    now = [0.0]
    config = AdmissionConfig(max_resident_buckets=1)
    controller = AdmissionController(config, _clock_at(now))
    # Drain "a" well below capacity, then touch others: "a" is over the
    # cap but never evictable until it refills.
    for _ in range(3):
        controller.admit("a")
    controller.admit("b")
    assert "a" in controller.buckets or \
        controller.buckets["b"].tokens_at(now[0]) < \
        controller.buckets["b"].capacity
