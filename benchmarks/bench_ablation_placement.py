"""Ablation — placement heuristics: First-Fit vs Best/Worst-Fit vs the
offline repacker (the paper's future-work idea of reallocating existing
databases, Section 4.2 / Section 7).
"""

import pytest

from repro.harness import format_table
from repro.sim.rng import SeededRNG, ZipfGenerator
from repro.sla import (DatabaseLoad, MachineBin, ResourceVector, best_fit,
                       first_fit, optimal_machine_count, repack, worst_fit)
from repro.sla.profiler import estimate_requirements

from common import report

CAPACITY = ResourceVector(cpu=2.0, memory_mb=1200.0, disk_io_mbps=60.0,
                          disk_mb=20000.0)


def make_loads(skew: float, n: int, seed: int):
    rng = SeededRNG(seed).fork(f"ablation-{skew}")
    size_zipf = ZipfGenerator(64, skew, rng.fork("size"))
    tps_zipf = ZipfGenerator(64, skew, rng.fork("tps"))
    loads = []
    for i in range(n):
        size = size_zipf.sample_in_range(200.0, 1000.0)
        tps = tps_zipf.sample_in_range(0.1, 10.0)
        requirement = estimate_requirements(size, tps,
                                            working_set_fraction=0.55)
        loads.append(DatabaseLoad(f"db{i}", requirement))
    return loads


def bin_factory():
    counter = [0]

    def new_bin():
        counter[0] += 1
        return MachineBin(f"m{counter[0]}", CAPACITY)

    return new_bin


def run_ablation():
    strategies = {
        "first-fit (paper)": lambda loads: first_fit(
            loads, bins=[], new_bin=bin_factory()).machines_used,
        "best-fit": lambda loads: best_fit(
            loads, bins=[], new_bin=bin_factory()).machines_used,
        "worst-fit": lambda loads: worst_fit(
            loads, bins=[], new_bin=bin_factory()).machines_used,
        "repack (FFD, future work)": lambda loads: repack(
            loads, new_bin=bin_factory()).machines_used,
        "optimal": lambda loads: optimal_machine_count(loads, CAPACITY),
    }
    rows = []
    data = {}
    for skew in (0.4, 1.2, 2.0):
        loads = make_loads(skew, 20, seed=3)
        row = [skew]
        for name, strategy in strategies.items():
            count = strategy(loads)
            row.append(count)
            data[(skew, name)] = count
        rows.append(row)
    text = format_table(["skew"] + list(strategies), rows)
    return text, data


@pytest.mark.benchmark(group="ablation-placement")
def test_ablation_placement_heuristics(benchmark, capsys):
    text, data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_placement", text, capsys)
    for skew in (0.4, 1.2, 2.0):
        optimal = data[(skew, "optimal")]
        for name in ("first-fit (paper)", "best-fit", "worst-fit",
                     "repack (FFD, future work)"):
            assert data[(skew, name)] >= optimal
        # The offline repacker is at least as good as online first-fit.
        assert data[(skew, "repack (FFD, future work)")] <= \
            data[(skew, "first-fit (paper)")]
