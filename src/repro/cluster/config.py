"""Cluster and machine configuration.

Machine defaults mirror the paper's testbed per machine: two CPUs, one
disk, 4 GB of memory with a 2 GB buffer pool, all machines on one rack
(sub-millisecond network). Capacities are expressed in the same resource
dimensions the SLA placement of Section 4 packs against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import EngineConfig
from repro.cluster.admission import AdmissionConfig
from repro.cluster.consensus import ConsensusConfig
from repro.cluster.network import NetworkConfig
from repro.cluster.routing import ReadOption, WritePolicy


@dataclass
class MachineConfig:
    """Physical characteristics of one cluster machine."""

    cores: int = 2
    disks: int = 1
    memory_mb: float = 4096.0
    disk_mb: float = 200_000.0
    disk_bandwidth_mbps: float = 60.0     # copy read/write throughput
    network_mbps: float = 100.0           # rack network per machine
    # Same-rack round trip for bulk copy streams. Per-message latency
    # lives on the network fabric (ClusterConfig.network.latency_s);
    # this survives for the copy-transfer charge of recovery/migration.
    network_latency_s: float = 0.0002
    # Scale factor applied to copied bytes when charging copy I/O and
    # network transfer. The simulated data generator produces rows ~3
    # orders of magnitude smaller than the paper's 200 MB-1 GB databases;
    # this factor restores paper-scale copy (recovery) durations without
    # paying for paper-scale row counts in Python.
    copy_bytes_factor: float = 1.0
    engine: EngineConfig = field(default_factory=EngineConfig)


@dataclass
class ClusterConfig:
    """Policy knobs of one cluster controller."""

    read_option: ReadOption = ReadOption.OPTION_1
    write_policy: WritePolicy = WritePolicy.CONSERVATIVE
    replication_factor: int = 2
    # Issue every coordinator broadcast (2PC PREPARE / COMMIT, read-only
    # lock release, aborts) to all participants at once and gather the
    # per-branch outcomes, so a phase costs one round trip instead of
    # ``replication_factor`` serial ones. The sequential reference path
    # is kept for benchmarking (``parallel_commit=False``) and decides
    # identically — presumed-abort still sees every branch outcome.
    parallel_commit: bool = True
    # Bound on the statement-classification cache (parsed kind/table per
    # distinct SQL string). Least-recently-used entries are evicted past
    # this size; 0 means unbounded. Evictions are counted in
    # ``MetricsCollector.stmt_cache_evictions``.
    stmt_cache_size: int = 1024
    # Lock waits longer than this abort the transaction; resolves
    # distributed deadlocks that no single machine can see locally.
    lock_wait_timeout_s: float = 5.0
    # Recovery: number of concurrent database copy processes.
    recovery_threads: int = 1
    # Log-structured delta re-replication: dump the snapshot at a pinned
    # LSN *without* rejecting writes, stream it, replay the retained
    # per-database commit log on the target, and shrink Algorithm 1's
    # write-rejection window to the final log-drain handoff. When False
    # the original full-copy path (rejection for the copy's whole
    # duration) is the reference implementation.
    delta_recovery: bool = True
    # Entries of the per-database commit log retained for delta catch-up
    # (snapshot pins hold truncation back further while a copy is in
    # flight). A rejoining machine whose last durable LSN fell behind
    # the retained tail is wiped to a blank spare instead.
    replication_log_retain: int = 512
    # Bounded live-replay rounds before the delta handoff: if sustained
    # write load keeps the target behind after this many catch-up
    # passes, the drain (reject) window starts anyway and convergence is
    # forced by rejection.
    delta_max_replay_rounds: int = 10
    machine: MachineConfig = field(default_factory=MachineConfig)
    # Record operation histories for serializability checking (adds
    # overhead; enable in correctness experiments).
    record_history: bool = False
    # Ring-buffer size of the cluster event trace (repro.analysis.trace);
    # the most recent events are kept, older ones dropped and counted.
    trace_capacity: int = 65536
    # Simulated unreliable network fabric (repro.cluster.network). When
    # ``network.enabled`` is False (default) messages are delivered
    # directly with no latency, loss, or timeouts — the pre-fabric
    # behaviour — and the heartbeat failure detector is unavailable.
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # Heartbeat failure detection (requires the fabric): the controller
    # pings every machine each interval; a machine is *suspected* after
    # ``suspect_after_misses`` consecutive misses and *declared* dead
    # (fenced, removed from the replica map, recovery scheduled) after
    # ``declare_after_misses``.
    heartbeat_interval_s: float = 0.5
    suspect_after_misses: int = 2
    declare_after_misses: int = 5
    # Consensus-replicated control plane (repro.cluster.consensus): run
    # the controller as a multi-Paxos group with leader leases instead
    # of the process pair. Metadata mutations and 2PC commit decisions
    # replicate through the group's log; leadership (and the data
    # plane) fails over to whichever replica wins the next election.
    # Off by default — the process pair stays the reference path and
    # the default configuration replays identically.
    consensus_enabled: bool = False
    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)
    # Overload protection (repro.cluster.admission): per-tenant
    # token-bucket admission at statement entry, provisioned from each
    # database's SLA, plus in-flight-watermark read shedding. Off by
    # default — the default configuration replays identically to the
    # pre-admission behaviour (same precedent as ``network.enabled``
    # and ``consensus_enabled``).
    admission_control: bool = False
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    # Tenant-scale fast path (Issue 10). ``lazy_tenant_state`` defers
    # per-tenant controller state — the retained delta log, the
    # replica-LSN map, and the admission bucket — to first touch, so a
    # mostly-cold tenant population costs a replica list and nothing
    # else. On by default: first-touch materialisation is constructed
    # to produce bit-identical traces to the eager path (the eager
    # fallback is kept as the differential reference for the
    # replay-identity guard).
    lazy_tenant_state: bool = True
    # Defer per-replica engine CREATE TABLE work to the first statement
    # (or bulk load) touching the database. This changes engine txn-id
    # interleaving relative to the seed, so it is opt-in for
    # tenant-scale experiments; default off preserves replay identity.
    lazy_engine_ddl: bool = False
    # Cap on tenants whose delta logs keep their retained entries
    # resident. Past the cap, the least-recently-committed tenant's log
    # is compacted in place (entries dropped, LSN position kept, so
    # ``covers()`` stays truthful and delta catch-up falls back to a
    # full copy exactly as if the tail had truncated). 0 = unbounded.
    max_resident_tenant_logs: int = 0
    # Cap on tenants with fully-resident latency histograms in the
    # metrics collector; colder tenants are summarised on eviction
    # (counts and percentile snapshot kept, raw samples dropped).
    # 0 = unbounded.
    metrics_resident_tenants: int = 0
