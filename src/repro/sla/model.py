"""The SLA model of Section 4.1.

Each database's SLA has two requirements over a time period T:

1. a minimum throughput (transactions per second), which maps to a
   multi-dimensional resource requirement r[j] — CPU, memory, disk I/O
   bandwidth, and disk space — that must fit, summed with its
   co-tenants, within the hosting machine's capacity R[i];
2. a maximum fraction of *proactively rejected* transactions, bounded by
   the paper's availability constraint::

       (machine_failure_rate + reallocation_rate)
           * (recovery_time / T) * write_mix  <  max_rejected_fraction

   (deadlocks and other application-inherent aborts do not count).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """A point in the paper's resource space.

    Dimensions: CPU cores' worth of compute, resident memory in MB,
    disk I/O bandwidth in MB/s, and disk space in MB.
    """

    cpu: float = 0.0
    memory_mb: float = 0.0
    disk_io_mbps: float = 0.0
    disk_mb: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory_mb + other.memory_mb,
            self.disk_io_mbps + other.disk_io_mbps,
            self.disk_mb + other.disk_mb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu - other.cpu,
            self.memory_mb - other.memory_mb,
            self.disk_io_mbps - other.disk_io_mbps,
            self.disk_mb - other.disk_mb,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(self.cpu * factor, self.memory_mb * factor,
                              self.disk_io_mbps * factor,
                              self.disk_mb * factor)

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Component-wise <= (the bin-packing feasibility test)."""
        return (self.cpu <= capacity.cpu + 1e-9
                and self.memory_mb <= capacity.memory_mb + 1e-9
                and self.disk_io_mbps <= capacity.disk_io_mbps + 1e-9
                and self.disk_mb <= capacity.disk_mb + 1e-9)

    def dominant_fraction(self, capacity: "ResourceVector") -> float:
        """Largest utilization fraction across dimensions."""
        fractions = []
        for mine, theirs in ((self.cpu, capacity.cpu),
                             (self.memory_mb, capacity.memory_mb),
                             (self.disk_io_mbps, capacity.disk_io_mbps),
                             (self.disk_mb, capacity.disk_mb)):
            if theirs > 0:
                fractions.append(mine / theirs)
            elif mine > 0:
                return float("inf")
        return max(fractions) if fractions else 0.0

    def nonnegative(self) -> bool:
        return (self.cpu >= -1e-9 and self.memory_mb >= -1e-9
                and self.disk_io_mbps >= -1e-9 and self.disk_mb >= -1e-9)


@dataclass(frozen=True)
class Sla:
    """A database's service level agreement over period T."""

    min_throughput_tps: float
    max_rejected_fraction: float
    period_s: float = 30 * 24 * 3600.0  # one month by default

    def __post_init__(self):
        if self.min_throughput_tps < 0:
            raise ValueError("throughput must be non-negative")
        if not 0 <= self.max_rejected_fraction <= 1:
            raise ValueError("rejected fraction must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period must be positive")


@dataclass(frozen=True)
class AvailabilityInputs:
    """Operational parameters of the availability constraint."""

    machine_failure_rate: float   # failures of a hosting machine per period T
    reallocation_rate: float      # migrations per period T
    recovery_time_s: float        # time to copy the database once
    write_mix: float              # fraction of update transactions


def rejected_fraction_bound(inputs: AvailabilityInputs,
                            period_s: float) -> float:
    """The paper's bound on the proactively-rejected fraction.

    Writes are rejected only while their database is being copied, so the
    expected rejected fraction is (events per period) x (fraction of the
    period spent copying) x (fraction of transactions that write).
    """
    events = inputs.machine_failure_rate + inputs.reallocation_rate
    return events * (inputs.recovery_time_s / period_s) * inputs.write_mix


def availability_ok(sla: Sla, inputs: AvailabilityInputs) -> bool:
    """Check the availability requirement of Section 4.1."""
    return rejected_fraction_bound(inputs, sla.period_s) < \
        sla.max_rejected_fraction


def max_recovery_time_s(sla: Sla, inputs: AvailabilityInputs) -> float:
    """Largest copy time that still meets the SLA (planning helper)."""
    events = inputs.machine_failure_rate + inputs.reallocation_rate
    if events <= 0 or inputs.write_mix <= 0:
        return float("inf")
    return sla.max_rejected_fraction * sla.period_s / (events * inputs.write_mix)
