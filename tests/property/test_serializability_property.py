"""Property test: the paper's Theorems 1 and 2 over random workloads.

Any execution the cluster produces under a *serializable* configuration
(Option 1 under either policy; any option under the conservative policy)
must yield an acyclic global serialization graph. Randomized clients,
keys, and timings probe the space of interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_one_copy_serializable
from repro.cluster import (ClusterConfig, ClusterController, ReadOption,
                           WritePolicy)
from repro.cluster.controller import TransactionAborted
from repro.sim import Simulator
from repro.sim.rng import SeededRNG


def run_random_workload(option, policy, seed, clients, keys):
    sim = Simulator()
    config = ClusterConfig(read_option=option, write_policy=policy,
                           record_history=True, lock_wait_timeout_s=0.5)
    controller = ClusterController(sim, config)
    controller.add_machines(3)
    controller.create_database(
        "db", ["CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"],
        replicas=2)
    controller.bulk_load("db", "kv", [(k, 0) for k in range(keys)])

    def client(cid):
        rng = SeededRNG(seed).fork(f"c{cid}")
        conn = controller.connect("db")
        for _ in range(5):
            try:
                if rng.random() < 0.5:
                    yield conn.execute("SELECT v FROM kv WHERE k = ?",
                                       (rng.randint(0, keys - 1),))
                yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                                   (rng.randint(0, keys - 1),))
                if rng.random() < 0.3:
                    yield conn.execute("SELECT v FROM kv WHERE k = ?",
                                       (rng.randint(0, keys - 1),))
                yield conn.commit()
            except TransactionAborted:
                pass
            yield sim.timeout(rng.uniform(0, 0.001))

    for cid in range(clients):
        sim.process(client(cid))
    sim.run()
    return controller


SAFE_CONFIGS = [
    (ReadOption.OPTION_1, WritePolicy.AGGRESSIVE),
    (ReadOption.OPTION_1, WritePolicy.CONSERVATIVE),
    (ReadOption.OPTION_2, WritePolicy.CONSERVATIVE),
    (ReadOption.OPTION_3, WritePolicy.CONSERVATIVE),
]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       config=st.sampled_from(SAFE_CONFIGS),
       clients=st.integers(min_value=2, max_value=5),
       keys=st.integers(min_value=2, max_value=6))
def test_theorems_1_and_2_hold(seed, config, clients, keys):
    option, policy = config
    controller = run_random_workload(option, policy, seed, clients, keys)
    ok, cycle = check_one_copy_serializable(controller.history)
    assert ok, (f"serializable config {option}/{policy} produced cycle "
                f"{cycle} at seed {seed}")


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       config=st.sampled_from(SAFE_CONFIGS),
       clients=st.integers(min_value=2, max_value=4))
def test_replicas_converge(seed, config, clients):
    option, policy = config
    controller = run_random_workload(option, policy, seed, clients, keys=4)
    replicas = controller.replica_map.replicas("db")
    states = []
    for name in replicas:
        engine = controller.machines[name].engine
        txn = engine.begin()
        states.append(engine.execute_sync(
            txn, "db", "SELECT k, v FROM kv ORDER BY k").rows)
        engine.commit(txn)
    assert states[0] == states[1], f"replica divergence at seed {seed}"
