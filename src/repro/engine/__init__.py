"""MiniSQL: a from-scratch single-node relational DBMS.

This package is the repository's stand-in for MySQL 5 in the paper's
architecture. One :class:`~repro.engine.engine.Engine` instance corresponds
to one ``mysqld`` on one machine; it hosts many client *databases* and
provides:

* a SQL subset sufficient for TPC-W (joins, aggregates, ORDER BY/LIMIT,
  parameterized DML) — :mod:`repro.engine.sqlparse`, planner, executor;
* heap storage with B+Tree primary and secondary indexes;
* an LRU buffer-pool model shared by all hosted databases (the cache whose
  locality drives the paper's Figures 2-4);
* strict two-phase locking with multi-granularity (table/row) locks and
  waits-for deadlock detection;
* a write-ahead log and crash recovery;
* an XA-style PREPARE / COMMIT / ABORT participant API, including the
  release-read-locks-at-PREPARE optimization that makes the paper's
  Table 1 anomaly possible;
* a ``mysqldump``-style copy tool that reads one table under a table lock
  (:mod:`repro.engine.dump`).
"""

from repro.engine.config import EngineConfig
from repro.engine.engine import Engine, ExecResult
from repro.engine.transactions import Transaction, TxnState

__all__ = [
    "Engine",
    "EngineConfig",
    "ExecResult",
    "Transaction",
    "TxnState",
]
