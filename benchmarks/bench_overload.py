"""Overload protection: per-tenant admission control under a stampede.

One of six equally-provisioned tenants ramps its offered load ~100x
mid-run. With per-tenant token-bucket admission control on, the hot
tenant must be throttled to its provisioned rate (SLA throughput floor
times the burst headroom) while every neighbour stays inside its
``max_rejected_fraction`` bound and its committed-transaction tail
latency holds; with admission off the identical schedule records the
noisy-neighbour damage (hot tenant unthrottled, neighbour p99 blowup)
as the contrast.

Two modes:

* ``pytest benchmarks/bench_overload.py --benchmark-only`` — a
  pytest-benchmark wrapper timing one soak per admission mode
  (deterministic simulation; tracks harness wall-clock);
* ``python benchmarks/bench_overload.py`` — plain mode: runs the
  stampede with admission on and off, audits both traces with the
  invariant checker (including the *neighbour-sla-holds-under-stampede*
  and *rejections-within-sla-bound* rules), asserts the isolation
  shape, and writes ``BENCH_overload.json`` at the repository root.
  ``--smoke`` shrinks the runs for CI.
"""

import sys

import pytest

sys.path.insert(0, "src")

from repro.analysis.invariants import check_controller
from repro.harness.runner import run_stampede_soak

#: The per-tenant SLA every database in the soak declares.
SLA_TPS = 4.0
MAX_REJECTED_FRACTION = 0.05

FULL = {"duration_s": 40.0, "ramp_at_s": 15.0}
SMOKE = {"duration_s": 24.0, "ramp_at_s": 9.0}


def run_point(admission, duration_s, ramp_at_s, seed=3):
    result = run_stampede_soak(admission=admission, duration_s=duration_s,
                               ramp_at_s=ramp_at_s, sla_tps=SLA_TPS,
                               max_rejected_fraction=MAX_REJECTED_FRACTION,
                               seed=seed)
    violations = check_controller(result.controller)
    assert not violations, \
        "invariant violation in bench run:\n" + \
        "\n".join(str(v) for v in violations)
    per_db = {}
    for db, deltas in result.post_ramp.items():
        per_db[db] = {
            "committed": int(deltas["committed"]),
            "overload_rejected": int(deltas["overload_rejected"]),
            "overload_rejected_fraction":
                round(deltas["overload_rejected_fraction"], 6),
            "baseline_p99_s": round(result.baseline_p99.get(db, 0.0), 6),
            "stampede_p99_s": round(result.stampede_p99.get(db, 0.0), 6),
        }
    return {
        "admission": bool(admission),
        "hot_db": result.hot_db,
        "hot_provisioned_tps": result.hot_provisioned_tps,
        "hot_goodput_tps": round(result.hot_goodput_tps, 4),
        "hot_admitted_fraction": round(result.hot_admitted_fraction, 6),
        "neighbour_max_rejected_fraction":
            round(result.neighbour_max_rejected_fraction, 6),
        "neighbour_p99_ratio": round(result.neighbour_p99_ratio, 4),
        "shed_reads": result.shed_reads,
        "breaches": len(result.breaches),
        "in_rate_breaches": sum(1 for b in result.breaches
                                if b.within_rate),
        "per_db": per_db,
    }


def check_shape(on, off):
    """The acceptance assertions: throttling, SLA bounds, isolation."""
    # Admission on: the hot tenant is throttled to its provisioned rate
    # (a small overshoot is the token bucket's burst capacity draining).
    rate = on["hot_provisioned_tps"]
    assert rate is not None and rate > 0
    assert on["hot_goodput_tps"] <= rate * 1.25 + 0.5, \
        f"hot tenant not throttled: {on['hot_goodput_tps']} tps vs " \
        f"provisioned {rate}"
    assert on["hot_goodput_tps"] >= rate * 0.5, \
        f"hot tenant starved below its provisioned rate: " \
        f"{on['hot_goodput_tps']} tps vs {rate}"
    # Every neighbour's admission-rejected fraction stays inside its
    # SLA bound.
    assert on["neighbour_max_rejected_fraction"] <= MAX_REJECTED_FRACTION, \
        f"neighbour rejected fraction " \
        f"{on['neighbour_max_rejected_fraction']} over the " \
        f"{MAX_REJECTED_FRACTION} bound"
    # Tail-latency isolation: no neighbour's post-ramp p99 degrades 2x.
    assert on["neighbour_p99_ratio"] < 2.0, \
        f"neighbour p99 degraded {on['neighbour_p99_ratio']}x under " \
        f"the stampede with admission on"
    # Every SLA breach window belongs to a tenant over its provisioned
    # rate (the hot one); none to a tenant inside its rate.
    assert on["in_rate_breaches"] == 0, \
        f"{on['in_rate_breaches']} breach windows on tenants inside " \
        f"their provisioned rate"
    # The contrast: with admission off the stampede goes through
    # unthrottled and neighbours feel it.
    assert off["hot_goodput_tps"] > on["hot_goodput_tps"] * 3, \
        "admission-off run did not record an unthrottled stampede"
    assert off["neighbour_p99_ratio"] > on["neighbour_p99_ratio"], \
        "admission off should hurt neighbour tail latency more than on"


def format_rows(on, off):
    lines = [f"{'mode':<14}  {'hot goodput':>11}  {'provisioned':>11}  "
             f"{'nbr rej frac':>12}  {'nbr p99 ratio':>13}  {'shed':>5}"]
    for label, row in (("admission-on", on), ("admission-off", off)):
        rate = row["hot_provisioned_tps"]
        lines.append(
            f"{label:<14}  {row['hot_goodput_tps']:>11.2f}  "
            f"{rate if rate is not None else '-':>11}  "
            f"{row['neighbour_max_rejected_fraction']:>12.4f}  "
            f"{row['neighbour_p99_ratio']:>13.2f}  {row['shed_reads']:>5}")
    return "\n".join(lines)


# -- pytest-benchmark wrappers ------------------------------------------------


@pytest.mark.benchmark(group="overload")
@pytest.mark.parametrize("admission", [True, False], ids=["on", "off"])
def test_bench_stampede(benchmark, admission):
    result = benchmark(run_stampede_soak, admission=admission,
                       duration_s=20.0, ramp_at_s=8.0)
    assert result.metrics.total_committed() > 0


# -- plain mode ---------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="Overload-protection stampede benchmark (plain mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="shorter runs (CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    points = SMOKE if args.smoke else FULL
    on = run_point(True, **points)
    off = run_point(False, **points)
    check_shape(on, off)

    payload = {
        "benchmark": "overload",
        "smoke": bool(args.smoke),
        "sla": {"min_throughput_tps": SLA_TPS,
                "max_rejected_fraction": MAX_REJECTED_FRACTION},
        "admission_on": on,
        "admission_off": off,
    }
    out = args.out or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_overload.json"))
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_rows(on, off))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
