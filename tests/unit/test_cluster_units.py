"""Unit tests for cluster components: routing, replica map, machine."""

import pytest

from repro.cluster import MachineConfig, Machine, ReadOption, ReplicaMap
from repro.cluster.routing import ReadRouter
from repro.errors import MachineFailedError, NoReplicaError
from repro.sim import Simulator


class TestReadRouter:
    REPLICAS = ["m1", "m2", "m3"]

    def test_option1_always_primary(self):
        router = ReadRouter(ReadOption.OPTION_1)
        picks = {router.choose(txn, self.REPLICAS) for txn in range(5)}
        assert picks == {"m1"}

    def test_option1_fails_over_with_replica_order(self):
        router = ReadRouter(ReadOption.OPTION_1)
        assert router.choose(1, ["m2", "m3"]) == "m2"

    def test_option2_sticky_per_txn(self):
        router = ReadRouter(ReadOption.OPTION_2)
        first = router.choose(1, self.REPLICAS)
        assert router.choose(1, self.REPLICAS) == first
        assert router.choose(2, self.REPLICAS) != first

    def test_option2_rechooses_if_machine_gone(self):
        router = ReadRouter(ReadOption.OPTION_2)
        chosen = router.choose(1, self.REPLICAS)
        remaining = [m for m in self.REPLICAS if m != chosen]
        assert router.choose(1, remaining) in remaining

    def test_option3_round_robins(self):
        router = ReadRouter(ReadOption.OPTION_3)
        picks = [router.choose(1, self.REPLICAS) for _ in range(3)]
        assert sorted(picks) == self.REPLICAS

    def test_forget_clears_stickiness(self):
        router = ReadRouter(ReadOption.OPTION_2)
        first = router.choose(1, self.REPLICAS)
        router.forget(1)
        assert router.choose(1, self.REPLICAS) != first

    def test_empty_replicas_rejected(self):
        router = ReadRouter(ReadOption.OPTION_1)
        with pytest.raises(ValueError):
            router.choose(1, [])


class TestReplicaMap:
    def test_add_and_query(self):
        rmap = ReplicaMap()
        rmap.add_database("db", ["m1", "m2"])
        assert rmap.replicas("db") == ["m1", "m2"]
        assert rmap.replica_count("db") == 2
        assert rmap.hosted_on("m1") == ["db"]

    def test_duplicate_database_rejected(self):
        rmap = ReplicaMap()
        rmap.add_database("db", ["m1"])
        with pytest.raises(ValueError):
            rmap.add_database("db", ["m2"])

    def test_duplicate_machines_rejected(self):
        with pytest.raises(ValueError):
            ReplicaMap().add_database("db", ["m1", "m1"])

    def test_unknown_database(self):
        with pytest.raises(NoReplicaError):
            ReplicaMap().replicas("nope")

    def test_remove_machine_returns_affected(self):
        rmap = ReplicaMap()
        rmap.add_database("a", ["m1", "m2"])
        rmap.add_database("b", ["m2", "m3"])
        rmap.add_database("c", ["m3", "m1"])
        affected = rmap.remove_machine("m2")
        assert sorted(affected) == ["a", "b"]
        assert rmap.replicas("a") == ["m1"]

    def test_add_replica_idempotent(self):
        rmap = ReplicaMap()
        rmap.add_database("db", ["m1"])
        rmap.add_replica("db", "m2")
        rmap.add_replica("db", "m2")
        assert rmap.replicas("db") == ["m1", "m2"]


class TestMachine:
    def test_statement_runs_and_charges_time(self):
        sim = Simulator()
        machine = Machine(sim, "m1", MachineConfig())
        machine.engine.create_database("db")
        setup = machine.engine.begin()
        machine.engine.execute_sync(setup, "db",
                                    "CREATE TABLE t (k INT PRIMARY KEY)")
        machine.engine.commit(setup)
        proc = machine.submit(
            100, machine.statement_body(100, "db",
                                        "INSERT INTO t VALUES (?)", (1,),
                                        lock_timeout=1.0))
        sim.run()
        assert proc.ok
        assert proc.value.rowcount == 1
        assert sim.now > 0  # CPU/disk time charged

    def test_fifo_per_transaction(self):
        sim = Simulator()
        machine = Machine(sim, "m1", MachineConfig())
        machine.engine.create_database("db")
        setup = machine.engine.begin()
        machine.engine.execute_sync(setup, "db",
                                    "CREATE TABLE t (k INT PRIMARY KEY)")
        machine.engine.commit(setup)
        order = []

        def tracked(k):
            result = yield from machine.statement_body(
                7, "db", "INSERT INTO t VALUES (?)", (k,), lock_timeout=1.0)
            order.append(k)
            return result

        for k in range(3):
            machine.submit(7, tracked(k))
        sim.run()
        assert order == [0, 1, 2]

    def test_failure_interrupts_and_rejects(self):
        sim = Simulator()
        machine = Machine(sim, "m1", MachineConfig())
        machine.engine.create_database("db")
        setup = machine.engine.begin()
        machine.engine.execute_sync(setup, "db",
                                    "CREATE TABLE t (k INT PRIMARY KEY)")
        machine.engine.commit(setup)
        machine.fail()
        proc = machine.submit(
            1, machine.statement_body(1, "db", "INSERT INTO t VALUES (1)",
                                      (), lock_timeout=1.0))
        proc.defused = True
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, MachineFailedError)

    def test_fail_is_idempotent(self):
        sim = Simulator()
        machine = Machine(sim, "m1", MachineConfig())
        machine.fail()
        first = machine.failed_at
        machine.fail()
        assert machine.failed_at == first

    def test_capacity_vector_from_config(self):
        sim = Simulator()
        config = MachineConfig(cores=4, memory_mb=8192)
        machine = Machine(sim, "m1", config)
        vec = machine.capacity_vector()
        assert vec.cpu == 4.0
        assert vec.memory_mb == 8192


class TestStmtCacheLru:
    """The statement-classification cache is LRU-bounded."""

    def make(self, size):
        from tests.conftest import make_cluster
        sim = Simulator()
        return make_cluster(sim, machines=1, stmt_cache_size=size)

    def test_eviction_past_bound(self):
        controller = self.make(2)
        for k in range(3):
            controller._classify(f"SELECT v FROM t WHERE k = {k}")
        assert len(controller._stmt_cache) == 2
        assert controller.metrics.stmt_cache_evictions == 1
        # The oldest entry went; the two newest stayed.
        assert "SELECT v FROM t WHERE k = 0" not in controller._stmt_cache
        assert "SELECT v FROM t WHERE k = 2" in controller._stmt_cache

    def test_hit_refreshes_recency(self):
        controller = self.make(2)
        controller._classify("SELECT v FROM t WHERE k = 0")
        controller._classify("SELECT v FROM t WHERE k = 1")
        controller._classify("SELECT v FROM t WHERE k = 0")  # refresh
        controller._classify("SELECT v FROM t WHERE k = 2")
        assert "SELECT v FROM t WHERE k = 0" in controller._stmt_cache
        assert "SELECT v FROM t WHERE k = 1" not in controller._stmt_cache

    def test_zero_means_unbounded(self):
        controller = self.make(0)
        for k in range(50):
            controller._classify(f"SELECT v FROM t WHERE k = {k}")
        assert len(controller._stmt_cache) == 50
        assert controller.metrics.stmt_cache_evictions == 0

    def test_classification_stable_across_eviction(self):
        controller = self.make(1)
        sql = "UPDATE t SET v = 1 WHERE k = 0"
        first = controller._classify(sql)
        controller._classify("SELECT v FROM t")       # evicts the update
        assert controller._classify(sql) == first == ("write", "t")


class TestProbeCoalescing:
    """A slow probe suppresses new ones instead of stacking misses."""

    def make_slow_fabric_cluster(self):
        from repro.cluster.network import NetworkConfig
        from tests.conftest import make_kv_cluster
        sim = Simulator()
        # One ping round trip (1.0s) spans ten heartbeat intervals
        # (0.1s); every response arrives past its deadline, so each
        # *completed* probe is one miss. Stacked probes would instead
        # count one miss per interval for the same silence.
        controller = make_kv_cluster(
            sim, machines=2,
            network=NetworkConfig(enabled=True, latency_s=0.5, seed=1),
            heartbeat_interval_s=0.1)
        controller.start_failure_detector()
        return sim, controller

    def test_outstanding_probe_suppresses_new_ones(self):
        sim, controller = self.make_slow_fabric_cluster()
        sim.run(until=2.0)
        for name in controller.machines:
            # ~2 completed probes by t=2.0, not ~20 stacked ones.
            assert controller._hb_misses.get(name, 0) <= 3
            assert name not in controller.declared_dead

    def test_probe_resumes_after_outstanding_settles(self):
        sim, controller = self.make_slow_fabric_cluster()
        sim.run(until=4.0)
        for name in controller.machines:
            # Probes keep being issued once the previous one settles:
            # misses grow with completed probes (roughly one per
            # round trip), proving the detector did not stall.
            assert controller._hb_misses.get(name, 0) >= 2
