"""Unit tests for the runtime SLA monitor."""

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.cluster.recovery import RecoveryRecord
from repro.sla.model import Sla
from repro.sla.monitor import (SlaMonitor, observed_availability_inputs,
                               predicted_rejected_fraction)


def metrics_with(db: str, committed: int, rejected: int) -> MetricsCollector:
    metrics = MetricsCollector()
    for _ in range(committed):
        metrics.record_commit(db, 0.0)
    for _ in range(rejected):
        metrics.record_rejection(db, 0.0)
    return metrics


class TestSlaMonitor:
    def test_compliant_database(self):
        monitor = SlaMonitor({"db": Sla(1.0, 0.01)})
        metrics = metrics_with("db", committed=100, rejected=0)
        (report,) = monitor.check(metrics, window_s=10.0)
        assert report.compliant
        assert report.measured_tps == 10.0
        assert "OK" in report.summary()

    def test_throughput_violation(self):
        monitor = SlaMonitor({"db": Sla(50.0, 0.01)})
        metrics = metrics_with("db", committed=100, rejected=0)
        (report,) = monitor.check(metrics, window_s=10.0)
        assert not report.throughput_ok
        assert not report.compliant
        assert "VIOLATION" in report.summary()

    def test_availability_violation(self):
        monitor = SlaMonitor({"db": Sla(1.0, 0.001)})
        metrics = metrics_with("db", committed=90, rejected=10)
        (report,) = monitor.check(metrics, window_s=10.0)
        assert report.throughput_ok
        assert not report.availability_ok

    def test_violations_filter(self):
        monitor = SlaMonitor({
            "good": Sla(1.0, 0.5),
            "bad": Sla(1000.0, 0.5),
        })
        metrics = metrics_with("good", 100, 0)
        for _ in range(10):
            metrics.record_commit("bad", 0.0)
        bad_only = monitor.violations(metrics, window_s=10.0)
        assert [r.db for r in bad_only] == ["bad"]

    def test_missing_metrics_means_zero(self):
        monitor = SlaMonitor({"silent": Sla(1.0, 0.01)})
        (report,) = monitor.check(MetricsCollector(), window_s=10.0)
        assert report.measured_tps == 0.0
        assert not report.throughput_ok

    def test_bad_window_rejected(self):
        monitor = SlaMonitor({})
        with pytest.raises(ValueError):
            monitor.check(MetricsCollector(), window_s=0)


class TestObservedAvailability:
    def test_inputs_from_recovery_records(self):
        records = [
            RecoveryRecord("db", "m1", "m2", 10.0, 130.0, 1000, True),
            RecoveryRecord("db", "m2", "m3", 200.0, 280.0, 1000, True),
            RecoveryRecord("other", "m1", "m2", 0.0, 5.0, 10, True),
            RecoveryRecord("db", "m1", "m2", 0.0, 99.0, 10, False),
        ]
        inputs = observed_availability_inputs(
            "db", records, failures_observed=2, window_s=3600.0,
            write_mix=0.2, period_s=30 * 24 * 3600.0)
        assert inputs.recovery_time_s == pytest.approx((120.0 + 80.0) / 2)
        assert inputs.machine_failure_rate == pytest.approx(2 * 720.0)
        bound = predicted_rejected_fraction(inputs, 30 * 24 * 3600.0)
        assert bound > 0

    def test_no_records_zero_recovery_time(self):
        inputs = observed_availability_inputs(
            "db", [], failures_observed=0, window_s=100.0,
            write_mix=0.5, period_s=1000.0)
        assert inputs.recovery_time_s == 0.0
        assert inputs.machine_failure_rate == 0.0
