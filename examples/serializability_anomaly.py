"""Reproduce the paper's Table 1 anomaly, end to end.

Section 3.1's surprise: an *aggressive* cluster controller (acknowledge a
write after the first replica) combined with read Option 2 or 3 breaks
one-copy serializability — because real engines release read locks at
2PC PREPARE. This script runs the paper's exact T1/T2 example under all
six configurations and prints each execution's global serialization
graph verdict, then shows the anomaly disappearing when the PREPARE
optimization is turned off.

Run:  python examples/serializability_anomaly.py
"""

from repro.analysis import check_one_copy_serializable
from repro.analysis.history import format_history
from repro.cluster import (ClusterConfig, ClusterController, ReadOption,
                           WritePolicy)
from repro.cluster.controller import TransactionAborted
from repro.harness import format_table
from repro.sim import Simulator


def run_pair(option, policy, release_at_prepare=True):
    """T1: r(x) w(y); T2: r(y) w(x), started simultaneously."""
    sim = Simulator()
    config = ClusterConfig(read_option=option, write_policy=policy,
                           record_history=True, lock_wait_timeout_s=1.0)
    config.machine.engine.release_read_locks_at_prepare = release_at_prepare
    controller = ClusterController(sim, config)
    controller.add_machines(2)
    controller.create_database(
        "app", ["CREATE TABLE kv (k VARCHAR(4) PRIMARY KEY, v INTEGER)"],
        replicas=2)
    controller.bulk_load("app", "kv", [("x", 0), ("y", 0)])
    outcomes = []

    def txn(name, read_key, write_key):
        conn = controller.connect("app")
        try:
            yield conn.execute("SELECT v FROM kv WHERE k = ?", (read_key,))
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = ?",
                               (write_key,))
            yield conn.commit()
            outcomes.append(f"{name} committed")
        except TransactionAborted:
            outcomes.append(f"{name} aborted")

    sim.process(txn("T1", "x", "y"))
    sim.process(txn("T2", "y", "x"))
    sim.run()
    ok, cycle = check_one_copy_serializable(controller.history)
    return ok, cycle, outcomes, controller.history


def main():
    print("The paper's example: T1 = r(x) w(y); T2 = r(y) w(x)")
    print("on a database with 2 synchronous replicas.\n")

    rows = []
    for option in (ReadOption.OPTION_1, ReadOption.OPTION_2,
                   ReadOption.OPTION_3):
        row = [option.name.replace("_", " ").title()]
        for policy in (WritePolicy.CONSERVATIVE, WritePolicy.AGGRESSIVE):
            ok, cycle, outcomes, _history = run_pair(option, policy)
            verdict = "Serializable" if ok else "NOT SERIALIZABLE"
            row.append(f"{verdict} ({', '.join(outcomes)})")
        rows.append(row)
    print(format_table(["", "Conservative", "Aggressive"], rows))

    print("\nWhy? With the common 2PC optimization, engines release READ")
    print("locks at PREPARE. Under Option 2/3, T1 and T2 read on")
    print("different replicas; the aggressive controller lets each")
    print("transaction race ahead after one replica acks its write, so")
    print("each machine serializes the pair in the opposite order:")
    ok, cycle, _, history = run_pair(ReadOption.OPTION_2,
                                     WritePolicy.AGGRESSIVE)
    print(f"  global serialization graph cycle: {cycle}")
    print("  the recorded per-machine histories (the paper's notation):")
    for line in format_history(history).splitlines():
        print(f"    {line}")

    print("\nDisable the release-read-locks-at-PREPARE optimization and")
    print("the same configuration becomes serializable again:")
    ok, cycle, outcomes, _history = run_pair(ReadOption.OPTION_2,
                                             WritePolicy.AGGRESSIVE,
                                             release_at_prepare=False)
    print(f"  serializable={ok}, outcomes={outcomes}")


if __name__ == "__main__":
    main()
