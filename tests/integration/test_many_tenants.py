"""Integration tests for the tenant-scale fast path.

Three guarantees ride on this file:

* the ``manytenants`` soak really does keep per-tenant resident state
  proportional to the touched set, with churn and a flash crowd live;
* **replay identity** — ``lazy_tenant_state=True`` (the default) and
  the eager reference configuration produce the *same* trace and the
  same metrics for the same schedule, failures and DDL included (the
  laziness is purely a representation change);
* router hygiene — ``ReadRouter._txn_choice`` and the open-writer sets
  drain to empty after a soak with lock-timeout aborts and
  dead-primary connection closes (the OPTION_2 leak paths).
"""

import pytest

from repro.analysis.invariants import check_controller
from repro.cluster import (ClusterConfig, ClusterController, ReadOption,
                           RecoveryManager)
from repro.harness.runner import run_many_tenants
from repro.sim import Simulator
from repro.sla import Sla
from repro.workloads.microbench import KV_DDL, KeyValueWorkload, KvStats
from tests.conftest import make_kv_cluster


class TestManyTenantsSoak:
    def test_resident_state_tracks_touched_set(self):
        result = run_many_tenants(n_databases=300, duration_s=6.0,
                                  flash_at_s=3.0, seed=5)
        assert result.committed > 0
        # ~1% hot + the flash target: resident per-tenant state must be
        # a sliver of the 300-tenant population.
        touched = result.hot_tenants + 1
        assert result.resident_db_logs <= touched + 5
        assert result.resident_replica_lsn_maps <= touched + 5
        assert result.resident_latency_histograms <= touched + 5
        assert result.cold_engine_tenants >= 250
        # Churn and the flash crowd both actually ran.
        assert result.churn_creates > 0 and result.churn_drops > 0
        assert result.flash_committed > 0
        assert result.flash_first_commit_s is not None
        assert result.flash_first_commit_s < 1.0
        violations = check_controller(result.controller)
        assert not violations, "\n".join(str(v) for v in violations)

    def test_lazy_engine_ddl_materialises_on_first_touch(self, sim):
        config = ClusterConfig(replication_factor=2, lazy_engine_ddl=True)
        controller = ClusterController(sim, config)
        controller.add_machines(3)
        controller.create_database("cold", KV_DDL, replicas=2)
        # Staging cost: no engine has run the DDL yet.
        assert all(not m.engine.hosts("cold")
                   for m in controller.machines.values())
        assert "cold" in controller._cold_dbs

        workload = KeyValueWorkload(controller, db_name="cold", keys=4,
                                    seed=1)
        stats = KvStats()
        proc = sim.process(workload.client(0, transactions=3, stats=stats))
        proc.defused = True
        sim.run()
        assert stats.committed == 3
        assert "cold" not in controller._cold_dbs
        replicas = controller.replica_map.replicas("cold")
        assert all(controller.machines[name].engine.hosts("cold")
                   for name in replicas)
        assert controller.trace.events(kind="db_materialised")


def _fingerprint(controller):
    """Everything externally observable about one finished run."""
    metrics = controller.metrics
    return {
        "trace": [e.to_dict() for e in controller.trace.events()],
        "committed": {db: c.committed
                      for db, c in metrics.per_db.items()},
        "rejected": {db: c.rejected for db, c in metrics.per_db.items()},
        "latency": {db: h.summary()
                    for db, h in metrics.db_latencies.items()},
    }


def _replay_scenario(lazy: bool):
    """One deterministic schedule: traffic, an SLA change, a drop, a
    machine failure with recovery, and a late tenant create."""
    sim = Simulator()
    config = ClusterConfig(replication_factor=2, lock_wait_timeout_s=1.0,
                           trace_capacity=65536, admission_control=True,
                           lazy_tenant_state=lazy)
    controller = ClusterController(sim, config)
    controller.add_machines(4)
    recovery = RecoveryManager(controller)
    recovery.start()
    sla = Sla(min_throughput_tps=5.0, max_rejected_fraction=0.1)
    for i in range(4):
        db = f"db{i}"
        controller.create_database(db, KV_DDL, replicas=2,
                                   sla=sla if i % 2 == 0 else None)
        controller.bulk_load(db, "kv", [(k, 0) for k in range(6)])

    stats = [KvStats() for _ in range(3)]
    for i in range(3):
        workload = KeyValueWorkload(controller, db_name=f"db{i}", keys=6,
                                    seed=40 + i)
        proc = sim.process(workload.client(
            i, transactions=40, think_time_s=0.05, stats=stats[i]))
        proc.defused = True
    # db3 gets a short burst, then is dropped mid-run.
    short_stats = KvStats()
    workload3 = KeyValueWorkload(controller, db_name="db3", keys=6, seed=47)
    proc = sim.process(workload3.client(0, transactions=5,
                                        think_time_s=0.05,
                                        stats=short_stats))
    proc.defused = True

    victim = controller.replica_map.replicas("db1")[1]

    def chaos():
        yield sim.timeout(1.0)
        controller.set_sla("db0", None)          # SLA change mid-run
        yield sim.timeout(0.5)
        controller.drop_database("db3")          # drop a warm tenant
        yield sim.timeout(0.5)
        controller.fail_machine(victim)          # lose a replica
        yield sim.timeout(1.0)
        controller.create_database("late", KV_DDL, replicas=2)

    chaos_proc = sim.process(chaos(), name="chaos")
    chaos_proc.defused = True
    sim.run(until=12.0)
    return _fingerprint(controller)


class TestReplayIdentity:
    def test_lazy_state_is_trace_identical_to_eager(self):
        """The S6 guard: laziness must never change behaviour, only
        when per-tenant structures get allocated."""
        lazy = _replay_scenario(lazy=True)
        eager = _replay_scenario(lazy=False)
        assert lazy["committed"] == eager["committed"]
        assert lazy["rejected"] == eager["rejected"]
        assert lazy["latency"] == eager["latency"]
        assert len(lazy["trace"]) == len(eager["trace"])
        for a, b in zip(lazy["trace"], eager["trace"]):
            assert a == b


class TestRouterHygiene:
    def test_txn_choice_drains_after_abort_soak(self, sim):
        """OPTION_2 per-txn replica choices must not outlive their
        transactions, even when most of them abort on lock timeouts."""
        controller = make_kv_cluster(
            sim, machines=3, read_option=ReadOption.OPTION_2,
            lock_wait_timeout_s=0.1)
        stats = [KvStats() for _ in range(6)]
        for i in range(6):
            # Everyone hammers the same single key: plenty of lock-wait
            # timeouts and write-write aborts.
            workload = KeyValueWorkload(controller, db_name="kv", keys=1,
                                        seed=70 + i)
            proc = sim.process(workload.client(
                i, transactions=25, think_time_s=0.0, stats=stats[i]))
            proc.defused = True
        sim.run()
        assert sum(s.aborted for s in stats) > 0  # the soak did abort
        assert controller.router._txn_choice == {}
        assert controller._open_writers == {}

    def test_close_with_dead_primary_releases_router_state(self, sim):
        """The dead-primary close path must still run ``_finish``."""
        controller = make_kv_cluster(sim, machines=3,
                                     read_option=ReadOption.OPTION_2)
        primary = controller.replica_map.replicas("kv")[0]

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 9 WHERE k = 0")
            controller.fail_machine(primary)
            conn.close()

        proc = sim.process(client())
        sim.run()
        assert proc.ok
        assert controller.router._txn_choice == {}
        assert controller._open_writers == {}
