"""Property-based tests for SLA placement and the optimal solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sla import (DatabaseLoad, MachineBin, ResourceVector, first_fit,
                       optimal_machine_count)
from repro.sla.optimal import lower_bound

CAP = ResourceVector(cpu=4.0, memory_mb=1000.0, disk_io_mbps=100.0,
                     disk_mb=10000.0)

requirement = st.builds(
    ResourceVector,
    cpu=st.floats(min_value=0.1, max_value=4.0),
    memory_mb=st.floats(min_value=1.0, max_value=1000.0),
    disk_io_mbps=st.floats(min_value=0.0, max_value=100.0),
    disk_mb=st.floats(min_value=0.0, max_value=10000.0),
)

loads_strategy = st.lists(
    st.builds(lambda i, r, n: DatabaseLoad(f"db{i}", r, replicas=n),
              st.integers(0, 10 ** 6), requirement,
              st.integers(min_value=1, max_value=2)),
    min_size=0, max_size=8,
).map(lambda ls: [DatabaseLoad(f"db{i}", l.requirement, l.replicas)
                  for i, l in enumerate(ls)])


def new_bin_factory():
    counter = [0]

    def new_bin():
        counter[0] += 1
        return MachineBin(f"m{counter[0]}", CAP)

    return new_bin


@settings(max_examples=80, deadline=None)
@given(loads_strategy)
def test_first_fit_placements_are_feasible(loads):
    placement = first_fit(loads, bins=[], new_bin=new_bin_factory())
    for machine_bin in placement.bins:
        assert machine_bin.used.fits_within(machine_bin.capacity)
        assert machine_bin.used.nonnegative()
    # Anti-affinity: each database's replicas on distinct machines.
    for db in loads:
        assigned = placement.assignments[db.name]
        assert len(assigned) == db.replicas
        assert len(set(assigned)) == db.replicas


@settings(max_examples=40, deadline=None)
@given(loads_strategy)
def test_bounds_sandwich_optimum(loads):
    ff = first_fit(loads, bins=[], new_bin=new_bin_factory())
    opt = optimal_machine_count(loads, CAP, node_budget=200_000)
    lb = lower_bound(loads, CAP)
    assert lb <= opt <= ff.machines_used


@settings(max_examples=40, deadline=None)
@given(loads_strategy)
def test_optimal_is_achievable(loads):
    """A first-fit pass restricted to exactly `opt` bins must succeed for
    at least the decreasing order when opt was proven feasible."""
    opt = optimal_machine_count(loads, CAP, node_budget=200_000)
    total_replicas = sum(l.replicas for l in loads)
    assert opt <= total_replicas
    if loads:
        assert opt >= 1
