"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Store


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2

    def test_release_grants_next_fifo(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered
        assert not r3.triggered

    def test_release_queued_request_cancels_it(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        res.release(r1)
        assert res.count == 0

    def test_use_serializes_work(self, sim):
        res = Resource(sim, capacity=1)
        finished = []

        def worker(tag):
            yield from res.use(10)
            finished.append((tag, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finished == [("a", 10.0), ("b", 20.0)]

    def test_parallel_capacity(self, sim):
        res = Resource(sim, capacity=3)
        finished = []

        def worker(tag):
            yield from res.use(10)
            finished.append(sim.now)

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        assert finished == [10.0, 10.0, 10.0]

    def test_busy_time_accounting(self, sim):
        res = Resource(sim, capacity=2)

        def worker(duration):
            yield from res.use(duration)

        sim.process(worker(5))
        sim.process(worker(7))
        sim.run()
        assert res.busy_time == pytest.approx(12.0)
        assert res.utilization(elapsed=7.0) == pytest.approx(12.0 / 14.0)

    def test_utilization_zero_elapsed(self, sim):
        res = Resource(sim)
        assert res.utilization(0) == 0.0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        assert len(store) == 1

        def getter():
            item = yield store.get()
            return item

        assert sim.run_process(getter()) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            item = yield store.get()
            return item, sim.now

        def putter():
            yield sim.timeout(4)
            store.put("late")

        proc = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert proc.value == ("late", 4.0)

    def test_fifo_order_for_items_and_getters(self, sim):
        store = Store(sim)
        results = []

        def getter(tag):
            item = yield store.get()
            results.append((tag, item))

        sim.process(getter("g1"))
        sim.process(getter("g2"))

        def putter():
            yield sim.timeout(1)
            store.put("first")
            store.put("second")

        sim.process(putter())
        sim.run()
        assert results == [("g1", "first"), ("g2", "second")]
