"""Integration: recovery pulls a fresh machine from the colo free pool.

"The colo controller manages a pool of free machines and adds them to
clusters as needed" — exercised here through the recovery manager's
free-machine hook when no existing machine can host a new replica.
"""

import pytest

from repro.cluster import CopyGranularity, RecoveryManager
from repro.platform import ColoController
from repro.sim import Simulator
from repro.sla.model import ResourceVector

DDL = ["CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)"]


class TestFreePoolRecovery:
    def test_recovery_provisions_from_pool(self):
        sim = Simulator()
        colo = ColoController(sim, "colo", free_machines=3)
        cluster = colo.add_cluster(machines=2)
        requirement = ResourceVector(cpu=0.1, memory_mb=10,
                                     disk_io_mbps=1, disk_mb=10)
        colo.place_database("db", list(DDL), requirement, replicas=2)
        cluster.bulk_load("db", "t", [(k, 0) for k in range(10)])
        recovery = RecoveryManager(cluster,
                                   granularity=CopyGranularity.TABLE)
        recovery.start()

        # With only 2 machines, losing one leaves no spare: the recovery
        # target must come from the colo pool.
        victim = cluster.replica_map.replicas("db")[1]
        assert len(cluster.machines) == 2
        cluster.fail_machine(victim)
        sim.run()

        assert cluster.replica_map.replica_count("db") == 2
        assert len(cluster.machines) == 3  # one provisioned from the pool
        assert colo.free_pool == 0
        assert recovery.records and recovery.records[-1].succeeded

    def test_recovery_stalls_gracefully_when_pool_empty(self):
        sim = Simulator()
        colo = ColoController(sim, "colo", free_machines=2)
        cluster = colo.add_cluster(machines=2)
        requirement = ResourceVector(cpu=0.1, memory_mb=10,
                                     disk_io_mbps=1, disk_mb=10)
        colo.place_database("db", list(DDL), requirement, replicas=2)
        cluster.bulk_load("db", "t", [(k, 0) for k in range(5)])
        recovery = RecoveryManager(cluster)
        recovery.start()
        victim = cluster.replica_map.replicas("db")[1]
        cluster.fail_machine(victim)
        sim.run(until=30.0)
        # No machine available: still under-replicated, but the cluster
        # keeps serving from the survivor.
        assert cluster.replica_map.replica_count("db") == 1

        def client():
            conn = cluster.connect("db")
            result = yield conn.execute("SELECT COUNT(*) FROM t")
            yield conn.commit()
            return result.scalar()

        proc = sim.process(client())
        # Bounded run: the recovery manager keeps retrying (and failing)
        # every few seconds, so the schedule never drains on its own.
        sim.run(until=40.0)
        assert proc.ok and proc.value == 5
