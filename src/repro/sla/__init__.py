"""Database SLAs: model, profiling, and placement (Section 4).

An SLA is a (minimum throughput, maximum proactively-rejected fraction)
pair over a period T. Throughput maps to a multi-dimensional
:class:`~repro.sla.model.ResourceVector` observed during a dedicated
profiling period; placement packs those vectors onto machines with
First-Fit (Algorithm 2), and :mod:`repro.sla.optimal` computes the exact
minimum for comparison (Table 2).
"""

from repro.sla.model import (AvailabilityInputs, ResourceVector, Sla,
                             availability_ok, rejected_fraction_bound)
from repro.sla.placement import (DatabaseLoad, MachineBin, Placement,
                                 PlacementIndex, best_fit, first_fit,
                                 repack, worst_fit)
from repro.sla.optimal import optimal_machine_count
from repro.sla.profiler import estimate_requirements

__all__ = [
    "AvailabilityInputs",
    "DatabaseLoad",
    "MachineBin",
    "Placement",
    "PlacementIndex",
    "ResourceVector",
    "Sla",
    "availability_ok",
    "best_fit",
    "estimate_requirements",
    "first_fit",
    "optimal_machine_count",
    "rejected_fraction_bound",
    "repack",
    "worst_fit",
]
