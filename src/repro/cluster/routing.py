"""Read-routing options and write-acknowledgement policies (Section 3.1).

The three read options trade cache locality against load-balancing
freedom; the two write policies trade client latency against
serializability (Table 1). The :class:`ReadRouter` implements the choice
deterministically (round-robin from a seeded counter) so experiments are
reproducible.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple


class ReadOption(enum.Enum):
    """Where read operations of a database may be routed.

    * OPTION_1 — all reads of a database go to one designated replica
      (best cache locality; serializable even with an aggressive
      controller — Theorem 1);
    * OPTION_2 — all reads of one transaction go to one replica, chosen
      per transaction;
    * OPTION_3 — each read is routed independently (best load balancing,
      worst cache locality; requires a conservative controller for
      serializability — Theorem 2).
    """

    OPTION_1 = 1
    OPTION_2 = 2
    OPTION_3 = 3


class WritePolicy(enum.Enum):
    """When the controller acknowledges a write to the client.

    * CONSERVATIVE — after *all* replicas finished the write; guarantees
      serializability under every read option (Theorem 2).
    * AGGRESSIVE — after the *first* replica finishes; lower latency, but
      combined with OPTION_2/OPTION_3 can produce non-serializable
      executions when the engines release read locks at PREPARE
      (the paper's Table 1).
    """

    CONSERVATIVE = "conservative"
    AGGRESSIVE = "aggressive"


class ReadRouter:
    """Chooses a replica machine for each read under a given option."""

    def __init__(self, option: ReadOption):
        self.option = option
        self._rr = 0
        # Option 2: transaction id -> machine chosen for its reads.
        self._txn_choice: Dict[int, str] = {}

    def forget(self, txn_id: int) -> None:
        self._txn_choice.pop(txn_id, None)

    def choose(self, txn_id: int, replicas: Sequence[str]) -> str:
        """Pick the machine to serve one read.

        ``replicas`` is the ordered list of *live* replicas of the
        database; the first entry is the designated primary.
        """
        if not replicas:
            raise ValueError("no live replicas to route to")
        if self.option is ReadOption.OPTION_1:
            return replicas[0]
        if self.option is ReadOption.OPTION_2:
            chosen = self._txn_choice.get(txn_id)
            if chosen is None or chosen not in replicas:
                chosen = replicas[self._rr % len(replicas)]
                self._rr += 1
                self._txn_choice[txn_id] = chosen
            return chosen
        # OPTION_3: every read spreads round-robin.
        choice = replicas[self._rr % len(replicas)]
        self._rr += 1
        return choice

    def choose_under_load(self, txn_id: int, replicas: Sequence[str],
                          loads: Dict[str, int],
                          watermark: int) -> Tuple[str, bool]:
        """Like :meth:`choose`, but spill a hot replica's reads.

        The option's pick stands while its replica is under the
        in-flight ``watermark``; past it, the read goes to the
        least-loaded live replica instead (option-1 cache locality is
        worth less than queueing behind a stampede). When *every*
        replica is over the watermark the least-loaded one still
        serves — shedding degrades placement, never availability.
        Returns ``(choice, shed)``.
        """
        from repro.cluster.admission import shed_choice
        preferred = self.choose(txn_id, replicas)
        return shed_choice(preferred, replicas, loads, watermark)
