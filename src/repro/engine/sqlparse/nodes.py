"""AST node definitions for the MiniSQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


# -- expressions -------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int | float | str | None


@dataclass(frozen=True)
class Param(Expr):
    """A ``?`` placeholder; ``index`` is its 0-based position."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BinaryOp(Expr):
    """op in = <> < <= > >= + - * / AND OR LIKE."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """op in NOT, NEG."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class InList(Expr):
    expr: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """Aggregate call: COUNT/SUM/AVG/MIN/MAX. ``star`` means COUNT(*)."""

    name: str
    arg: Optional[Expr]
    star: bool = False
    distinct: bool = False


# -- statements -------------------------------------------------------------

class Statement:
    """Base class for statement nodes."""


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass
class Join:
    """An explicit ``JOIN table ON cond`` clause."""

    table: TableRef
    condition: Expr


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select(Statement):
    items: List[SelectItem]           # empty means SELECT *
    star: bool
    tables: List[TableRef]
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    # SELECT ... FOR UPDATE: rows are X-locked instead of S-locked.
    for_update: bool = False


@dataclass
class Insert(Statement):
    table: str
    columns: List[str]                # empty means full-row insert
    rows: List[List[Expr]]


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTable(Statement):
    table: str
    columns: List[ColumnDef]
    primary_key: List[str] = field(default_factory=list)


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: List[str]
    unique: bool = False
