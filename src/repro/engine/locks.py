"""Multi-granularity strict two-phase locking.

Lock modes are the textbook five (IS, IX, S, SIX, X). Resources are
hashable tuples at two granularities:

* ``("tbl", db, table)`` — intention (IS/IX) locks for row access, full
  S for table scans and the dump tool, X for bulk statements;
* ``("row", db, table, pk)`` — S/X locks on individual rows.

Requests queue FIFO per resource; lock *upgrades* (a transaction
strengthening a mode it already holds) jump the queue, as in real engines,
to avoid guaranteed upgrade deadlocks against queued waiters.

Deadlock policy: on every block the manager searches the waits-for graph
for a cycle through the requester and, if found, raises
:class:`~repro.errors.DeadlockError` *at the requester* (the InnoDB-style
"the transaction that had to wait rolls back" rule, deterministic for
reproducible experiments). Cross-machine deadlocks have no local cycle and
are resolved by the cluster layer's lock-wait timeout.

The 2PC read-lock optimization: :meth:`LockManager.release_shared` drops a
transaction's S/IS locks (and weakens SIX to IX) — called at PREPARE when
:attr:`EngineConfig.release_read_locks_at_prepare` is on. This is the
ingredient that makes the paper's Table 1 anomaly reachable.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import DeadlockError

Resource = Tuple[Hashable, ...]


class LockMode(enum.IntEnum):
    """Standard multi-granularity modes, ordered by strength for display."""

    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5


# compat[a][b] is True when a holder in mode a coexists with mode b.
_COMPAT: Dict[LockMode, Set[LockMode]] = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.SIX: {LockMode.IS},
    LockMode.X: set(),
}

# Supremum (least upper bound) of two held modes.
_SUP: Dict[Tuple[LockMode, LockMode], LockMode] = {}
for _a in LockMode:
    for _b in LockMode:
        if _a == _b:
            _SUP[(_a, _b)] = _a
        elif {_a, _b} == {LockMode.IS, LockMode.IX}:
            _SUP[(_a, _b)] = LockMode.IX
        elif {_a, _b} == {LockMode.IS, LockMode.S}:
            _SUP[(_a, _b)] = LockMode.S
        elif {_a, _b} == {LockMode.IS, LockMode.SIX}:
            _SUP[(_a, _b)] = LockMode.SIX
        elif {_a, _b} == {LockMode.IX, LockMode.S}:
            _SUP[(_a, _b)] = LockMode.SIX
        elif {_a, _b} == {LockMode.IX, LockMode.SIX}:
            _SUP[(_a, _b)] = LockMode.SIX
        elif {_a, _b} == {LockMode.S, LockMode.SIX}:
            _SUP[(_a, _b)] = LockMode.SIX
        elif LockMode.X in (_a, _b):
            _SUP[(_a, _b)] = LockMode.X
        else:
            raise AssertionError((_a, _b))


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True if a holder in ``held`` can coexist with ``requested``."""
    return requested in _COMPAT[held]


def supremum(a: LockMode, b: LockMode) -> LockMode:
    """Least mode at least as strong as both ``a`` and ``b``."""
    return _SUP[(a, b)]


class LockRequest:
    """One transaction's pending or granted claim on a resource."""

    __slots__ = ("txn_id", "resource", "mode", "granted", "error",
                 "on_grant", "on_fail")

    def __init__(self, txn_id: int, resource: Resource, mode: LockMode):
        self.txn_id = txn_id
        self.resource = resource
        self.mode = mode
        self.granted = False
        self.error: Optional[BaseException] = None
        self.on_grant: List[Callable[["LockRequest"], None]] = []
        self.on_fail: List[Callable[["LockRequest"], None]] = []

    @property
    def pending(self) -> bool:
        return not self.granted and self.error is None

    def _grant(self) -> None:
        self.granted = True
        callbacks, self.on_grant = self.on_grant, []
        for cb in callbacks:
            cb(self)

    def _fail(self, exc: BaseException) -> None:
        self.error = exc
        callbacks, self.on_fail = self.on_fail, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:
        state = "granted" if self.granted else ("failed" if self.error else "waiting")
        return (f"LockRequest(txn={self.txn_id}, res={self.resource}, "
                f"mode={self.mode.name}, {state})")


class _LockTable:
    """Per-resource lock state: holders and a FIFO wait queue."""

    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: Dict[int, LockMode] = {}
        self.queue: List[LockRequest] = []

    def empty(self) -> bool:
        return not self.holders and not self.queue


class LockStats:
    """Cumulative lock-manager counters (per engine instance)."""

    def __init__(self):
        self.acquired = 0
        self.waits = 0
        self.deadlocks = 0

    def snapshot(self) -> Dict[str, int]:
        return {"acquired": self.acquired, "waits": self.waits,
                "deadlocks": self.deadlocks}


class LockManager:
    """Strict-2PL lock manager for one engine instance."""

    def __init__(self):
        self._tables: Dict[Resource, _LockTable] = defaultdict(_LockTable)
        self._held: Dict[int, Dict[Resource, LockMode]] = defaultdict(dict)
        self._waiting: Dict[int, LockRequest] = {}
        self.stats = LockStats()

    # -- queries ------------------------------------------------------------

    def held(self, txn_id: int) -> Dict[Resource, LockMode]:
        """Resources and modes currently held by ``txn_id`` (copy)."""
        return dict(self._held.get(txn_id, {}))

    def holds(self, txn_id: int, resource: Resource,
              at_least: LockMode) -> bool:
        mode = self._held.get(txn_id, {}).get(resource)
        return mode is not None and supremum(mode, at_least) == mode

    def waiting_request(self, txn_id: int) -> Optional[LockRequest]:
        return self._waiting.get(txn_id)

    def try_reentrant(self, txn_id: int, resource: Resource,
                      mode: LockMode) -> bool:
        """Allocation-free re-acquire of an already-held lock.

        True when ``txn_id`` already holds ``resource`` at least as
        strongly as ``mode`` (the grant is counted exactly like the
        re-entrant path of :meth:`acquire`); False means the caller must
        go through :meth:`acquire`.
        """
        held_mode = self._held[txn_id].get(resource)
        if (held_mode is not None
                and _SUP[(held_mode, mode)] == held_mode
                and txn_id not in self._waiting):
            self.stats.acquired += 1
            return True
        return False

    # -- acquisition ----------------------------------------------------------

    def acquire(self, txn_id: int, resource: Resource,
                mode: LockMode) -> LockRequest:
        """Request ``mode`` on ``resource``.

        Returns a :class:`LockRequest`; check ``granted``. When the request
        must wait it is queued and the caller should subscribe to
        ``on_grant`` / ``on_fail``. Raises :class:`DeadlockError` if
        granting would create a waits-for cycle through this transaction.
        """
        if txn_id in self._waiting:
            raise RuntimeError(
                f"txn {txn_id} already has a pending lock request"
            )
        held_mode = self._held[txn_id].get(resource)
        if held_mode is not None and _SUP[(held_mode, mode)] == held_mode:
            # Re-entrant fast path: already strong enough. Taken before
            # the per-resource table is touched so repeated acquisitions
            # (every statement of a transaction re-locking its rows) do
            # no queue or compatibility work.
            request = LockRequest(txn_id, resource, held_mode)
            request._grant()
            self.stats.acquired += 1
            return request
        table = self._tables[resource]
        effective = mode if held_mode is None else supremum(held_mode, mode)
        request = LockRequest(txn_id, resource, effective)

        others_compatible = all(
            compatible(h, effective)
            for holder, h in table.holders.items()
            if holder != txn_id
        )
        is_upgrade = held_mode is not None

        if others_compatible and (is_upgrade or not table.queue):
            table.holders[txn_id] = effective
            self._held[txn_id][resource] = effective
            request._grant()
            self.stats.acquired += 1
            return request

        # Must wait. Upgrades go to the front of the queue.
        self.stats.waits += 1
        if is_upgrade:
            table.queue.insert(0, request)
        else:
            table.queue.append(request)
        self._waiting[txn_id] = request

        victim_cycle = self._find_cycle(txn_id)
        if victim_cycle is not None:
            self.stats.deadlocks += 1
            self._remove_from_queue(request)
            del self._waiting[txn_id]
            raise DeadlockError(
                f"txn {txn_id} deadlocked on {resource} "
                f"(cycle {victim_cycle})"
            )
        return request

    def _remove_from_queue(self, request: LockRequest) -> None:
        table = self._tables.get(request.resource)
        if table is not None:
            try:
                table.queue.remove(request)
            except ValueError:
                pass

    # -- release --------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Drop every lock held by ``txn_id`` and fail its pending wait."""
        pending = self._waiting.pop(txn_id, None)
        if pending is not None:
            self._remove_from_queue(pending)
            if pending.pending:
                pending._fail(DeadlockError(f"txn {txn_id} aborted"))
            # FIFO queueing means an incompatible head blocks compatible
            # followers; removing a queued request can therefore unblock
            # the requests behind it even when this txn held nothing on
            # the resource.
            self._regrant(pending.resource)
            table = self._tables.get(pending.resource)
            if table is not None and table.empty():
                del self._tables[pending.resource]
        resources = list(self._held.pop(txn_id, {}))
        for resource in resources:
            table = self._tables[resource]
            table.holders.pop(txn_id, None)
            self._regrant(resource)
            if table.empty():
                del self._tables[resource]

    def release_shared(self, txn_id: int) -> None:
        """Drop read locks only: S and IS released, SIX weakened to IX.

        This is the 2PC PREPARE optimization; exclusive locks are retained
        until commit as 2PC requires.
        """
        held = self._held.get(txn_id, {})
        for resource, mode in list(held.items()):
            if mode in (LockMode.S, LockMode.IS):
                del held[resource]
                table = self._tables[resource]
                table.holders.pop(txn_id, None)
                self._regrant(resource)
                if table.empty():
                    del self._tables[resource]
            elif mode is LockMode.SIX:
                held[resource] = LockMode.IX
                self._tables[resource].holders[txn_id] = LockMode.IX
                self._regrant(resource)

    def _regrant(self, resource: Resource) -> None:
        """Grant queued requests that are now compatible, FIFO order."""
        table = self._tables.get(resource)
        if table is None:
            return
        while table.queue:
            request = table.queue[0]
            ok = all(
                compatible(h, request.mode)
                for holder, h in table.holders.items()
                if holder != request.txn_id
            )
            if not ok:
                return
            table.queue.pop(0)
            table.holders[request.txn_id] = request.mode
            self._held[request.txn_id][resource] = request.mode
            self._waiting.pop(request.txn_id, None)
            request._grant()
            self.stats.acquired += 1

    # -- deadlock detection ------------------------------------------------------

    def waits_for_edges(self) -> Dict[int, Set[int]]:
        """The waits-for graph: waiter -> set of transactions it waits on.

        A waiter waits on (a) holders whose mode conflicts with its request
        and (b) earlier queued waiters whose requested mode conflicts.
        """
        edges: Dict[int, Set[int]] = defaultdict(set)
        for resource, table in self._tables.items():
            for pos, request in enumerate(table.queue):
                for holder, mode in table.holders.items():
                    if holder != request.txn_id and not compatible(mode, request.mode):
                        edges[request.txn_id].add(holder)
                for earlier in table.queue[:pos]:
                    if earlier.txn_id != request.txn_id and not compatible(
                        earlier.mode, request.mode
                    ):
                        edges[request.txn_id].add(earlier.txn_id)
        return dict(edges)

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """DFS for a waits-for cycle through ``start``."""
        edges = self.waits_for_edges()
        path: List[int] = []
        seen: Set[int] = set()

        def dfs(node: int) -> Optional[List[int]]:
            if node in seen:
                return None
            seen.add(node)
            path.append(node)
            for nxt in edges.get(node, ()):
                if nxt == start:
                    return list(path)
                found = dfs(nxt)
                if found is not None:
                    return found
            path.pop()
            return None

        return dfs(start)
