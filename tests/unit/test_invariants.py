"""Unit tests for the 2PC invariant checker, plus controller regression
tests for the bugfix sweep (rollback accounting, aggressive-wait
callback registration)."""

import pytest

from repro.analysis.invariants import (InvariantChecker, check_trace,
                                       check_controller)
from repro.analysis.trace import TraceEvent
from repro.cluster import WritePolicy
from repro.cluster.controller import _TxnState
from repro.errors import MachineFailedError
from tests.conftest import make_kv_cluster


def trace(*specs):
    """Build a synthetic event list from (kind, fields...) tuples."""
    events = []
    for seq, spec in enumerate(specs):
        kind, fields = spec[0], (spec[1] if len(spec) > 1 else {})
        known = {k: fields.pop(k, None) for k in ("db", "txn", "machine")}
        events.append(TraceEvent(seq=seq, t=float(seq), kind=kind,
                                 extra=fields, **known))
    return events


def committed_txn(txn=1, machines=("m0", "m1")):
    """A well-formed conservative commit for one transaction."""
    steps = [("txn_begin", {"db": "kv", "txn": txn})]
    for m in machines:
        steps.append(("write_issued", {"db": "kv", "txn": txn,
                                       "machine": m}))
    for m in machines:
        steps.append(("write_acked", {"db": "kv", "txn": txn,
                                      "machine": m}))
    for m in machines:
        steps.append(("prepare", {"db": "kv", "txn": txn, "machine": m}))
    steps.append(("decision_logged", {"db": "kv", "txn": txn,
                                      "decision": "commit"}))
    for m in machines:
        steps.append(("commit_sent", {"db": "kv", "txn": txn,
                                      "machine": m}))
    steps.append(("committed", {"db": "kv", "txn": txn}))
    return steps


def rules(violations):
    return sorted({v.rule for v in violations})


class TestCheckerRules:
    def test_clean_commit_passes(self):
        violations = check_trace(trace(*committed_txn()),
                                 write_policy="conservative")
        assert violations == []

    def test_decision_before_commit(self):
        violations = check_trace(trace(
            ("txn_begin", {"db": "kv", "txn": 1}),
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("commit_sent", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ))
        assert rules(violations) == ["decision-before-commit"]

    def test_double_decision_is_flagged(self):
        violations = check_trace(trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ))
        assert rules(violations) == ["decision-unique"]

    def test_abort_after_decision_is_flagged(self):
        violations = check_trace(trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("abort", {"db": "kv", "txn": 1}),
        ))
        assert rules(violations) == ["decision-unique"]

    def test_conservative_requires_all_acks(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ), write_policy="conservative")
        assert rules(violations) == ["conservative-all-acked"]
        assert "m1" in violations[0].message

    def test_failed_machine_excused_from_acks(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("machine_failed", {"machine": "m1", "affected": ["kv"]}),
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ), write_policy="conservative")
        assert violations == []

    def test_aggressive_policy_skips_ack_rule(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ), write_policy="aggressive")
        assert violations == []

    def test_poisoned_never_commits(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("poisoned", {"db": "kv", "txn": 1, "machine": "m1",
                          "error": "MachineFailedError"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ), write_policy="aggressive")
        assert rules(violations) == ["poisoned-never-commits"]

    def test_deadlocked_write_must_not_commit(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_failed", {"db": "kv", "txn": 1, "machine": "m1",
                              "error": "DeadlockError"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ), write_policy="conservative")
        assert "deadlock-aborts-everywhere" in rules(violations)

    def test_deadlocked_write_that_aborts_is_fine(self):
        violations = check_trace(trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_failed", {"db": "kv", "txn": 1, "machine": "m1",
                              "error": "DeadlockError"}),
            ("abort", {"db": "kv", "txn": 1,
                       "reason": "DeadlockError"}),
        ), write_policy="conservative")
        assert violations == []

    def test_strict_flags_in_flight_prepared_txns(self):
        events = trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
        )
        relaxed = InvariantChecker(strict=False)
        assert relaxed.check(events) == []
        assert relaxed.in_flight == {1}
        strict = InvariantChecker(strict=True)
        assert rules(strict.check(events)) == ["decision-unique"]

    def test_trace_meta_supplies_policy(self):
        violations = check_trace(trace(
            ("trace_meta", {"write_policy": "conservative",
                            "replication_factor": 2}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("write_acked", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
        ))
        assert rules(violations) == ["conservative-all-acked"]


class TestRecoveryRule:
    def test_unrecovered_database_flagged(self):
        violations = check_trace(trace(
            ("machine_failed", {"machine": "m1", "affected": ["kv"]}),
            ("rereplication_queued", {"db": "kv"}),
        ), expect_recovery_complete=True)
        assert rules(violations) == ["rereplication-restores-factor"]

    def test_completed_recovery_passes(self):
        violations = check_trace(trace(
            ("machine_failed", {"machine": "m1", "affected": ["kv"]}),
            ("rereplication_queued", {"db": "kv"}),
            ("rereplication_done", {"db": "kv", "machine": "m2",
                                    "replicas": 2}),
        ), expect_recovery_complete=True, replication_factor=2)
        assert violations == []

    def test_under_factor_recovery_flagged(self):
        violations = check_trace(trace(
            ("rereplication_queued", {"db": "kv"}),
            ("rereplication_done", {"db": "kv", "machine": "m2",
                                    "replicas": 1}),
        ), expect_recovery_complete=True, replication_factor=2)
        assert rules(violations) == ["rereplication-restores-factor"]

    def test_already_replicated_skip_satisfies(self):
        violations = check_trace(trace(
            ("rereplication_queued", {"db": "kv"}),
            ("rereplication_skipped", {"db": "kv",
                                       "reason": "already-replicated"}),
        ), expect_recovery_complete=True)
        assert violations == []

    def test_no_source_skip_does_not_satisfy(self):
        violations = check_trace(trace(
            ("rereplication_queued", {"db": "kv"}),
            ("rereplication_skipped", {"db": "kv", "reason": "no-source"}),
        ), expect_recovery_complete=True)
        assert rules(violations) == ["rereplication-restores-factor"]

    def test_truncated_trace_weakens_cross_event_rules(self):
        events = trace(
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m1"}),
            ("decision_logged", {"db": "kv", "txn": 1}),
            ("committed", {"db": "kv", "txn": 1}),
            ("rereplication_queued", {"db": "kv"}),
        )
        complete = check_trace(events, write_policy="conservative",
                               expect_recovery_complete=True)
        assert len(complete) == 2
        truncated = check_trace(events, write_policy="conservative",
                                expect_recovery_complete=True, dropped=5)
        assert truncated == []


def run_client(sim, gen):
    proc = sim.process(gen)
    sim.run()
    if not proc.ok:
        proc.defused = True
        raise proc.value
    return proc.value


class TestRollbackAccounting:
    """Satellite 1: client ROLLBACK must not count as a failure abort."""

    def test_rollback_counted_separately(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 9 WHERE k = 0")
            yield conn.rollback()

        run_client(sim, client())
        counters = controller.metrics.db("kv")
        assert counters.rollbacks == 1
        assert counters.other_aborts == 0
        assert counters.total_finished == 1
        assert len(controller.trace.events(kind="rollback")) == 1
        assert controller.trace.events(kind="abort") == []
        assert check_controller(controller, strict=True) == []


class TestAggressiveWaitRegistration:
    """Satellite 2: one settlement callback per write, not one per round."""

    def test_no_callback_pileup_on_slow_write(self, sim):
        controller = make_kv_cluster(
            sim, write_policy=WritePolicy.AGGRESSIVE)
        txn = _TxnState(1, "kv", 0.0)

        never = sim.event()

        def slow():
            yield never

        def fail_after(delay):
            yield sim.timeout(delay)
            raise MachineFailedError("replica died")

        p_slow = sim.process(slow(), name="slow-write")
        p_fail1 = sim.process(fail_after(0.1), name="fail1")
        p_fail2 = sim.process(fail_after(0.2), name="fail2")
        for proc in (p_slow, p_fail1, p_fail2):
            proc.defused = True

        waiter = sim.process(controller._await_first_write(
            txn, [("m0", p_slow), ("m1", p_fail1), ("m2", p_fail2)]))
        waiter.defused = True
        sim.run(until=0.3)

        # Two wait rounds have fired (the two failures); the still-pending
        # slow write must carry exactly the one settlement callback that
        # was registered up front. The pre-fix code added a fresh callback
        # every round, so this list grew with every settlement.
        assert p_slow.callbacks is not None
        assert len(p_slow.callbacks) == 1


class TestPartitionRules:
    """The three fabric-era rules: fencing, split-brain, suspicion."""

    def test_fenced_machine_serving_is_flagged(self):
        violations = check_trace(trace(
            ("machine_fenced", {"machine": "m0"}),
            ("txn_begin", {"db": "kv", "txn": 1}),
            ("write_issued", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("abort", {"db": "kv", "txn": 1}),
        ))
        assert "fenced-replica-never-serves" in rules(violations)

    def test_fenced_prepare_is_flagged(self):
        violations = check_trace(trace(
            ("machine_fenced", {"machine": "m1"}),
            ("prepare", {"db": "kv", "txn": 2, "machine": "m1"}),
            ("abort", {"db": "kv", "txn": 2}),
        ))
        assert "fenced-replica-never-serves" in rules(violations)

    def test_readmission_clears_the_fence(self):
        steps = [("machine_fenced", {"machine": "m0"}),
                 ("machine_readmitted", {"machine": "m0"})]
        steps.extend(committed_txn(txn=1, machines=("m0", "m1")))
        violations = check_trace(trace(*steps),
                                 write_policy="conservative")
        assert violations == []

    def test_fenced_rereplication_source_is_flagged(self):
        violations = check_trace(trace(
            ("machine_fenced", {"machine": "m0"}),
            ("rereplication_start", {"db": "kv", "machine": "m2",
                                     "source": "m0"}),
        ))
        assert rules(violations) == ["fenced-replica-never-serves"]

    def test_fenced_rereplication_target_is_flagged(self):
        violations = check_trace(trace(
            ("machine_fenced", {"machine": "m2"}),
            ("rereplication_start", {"db": "kv", "machine": "m2",
                                     "source": "m1"}),
        ))
        assert rules(violations) == ["fenced-replica-never-serves"]

    def test_primary_decision_after_takeover_is_split_brain(self):
        violations = check_trace(trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("takeover", {"reason": "test"}),
            ("decision_logged", {"db": "kv", "txn": 1,
                                 "decision": "commit",
                                 "actor": "primary"}),
            ("committed", {"db": "kv", "txn": 1}),
        ))
        assert "no-split-brain" in rules(violations)

    def test_primary_commit_after_takeover_is_split_brain(self):
        violations = check_trace(trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1,
                                 "decision": "commit",
                                 "actor": "primary"}),
            ("takeover", {"reason": "test"}),
            ("commit_sent", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("committed", {"db": "kv", "txn": 1}),
        ))
        assert "no-split-brain" in rules(violations)

    def test_backup_takeover_commit_is_clean(self):
        violations = check_trace(trace(
            ("prepare", {"db": "kv", "txn": 1, "machine": "m0"}),
            ("decision_logged", {"db": "kv", "txn": 1,
                                 "decision": "commit",
                                 "actor": "primary"}),
            ("takeover", {"reason": "test"}),
            ("takeover_commit", {"txn": 1, "actor": "backup"}),
        ))
        assert "no-split-brain" not in rules(violations)

    def test_second_takeover_is_flagged(self):
        violations = check_trace(trace(
            ("takeover", {"reason": "one"}),
            ("takeover", {"reason": "two"}),
        ))
        assert rules(violations) == ["no-split-brain"]

    def test_dangling_suspicion_is_flagged(self):
        violations = check_trace(trace(
            ("machine_suspected", {"machine": "m0"}),
        ))
        assert rules(violations) == ["suspicion-eventually-resolves"]

    def test_suspicion_resolved_by_answer(self):
        violations = check_trace(trace(
            ("machine_suspected", {"machine": "m0"}),
            ("machine_unsuspected", {"machine": "m0"}),
        ))
        assert violations == []

    def test_suspicion_resolved_by_declaration(self):
        violations = check_trace(trace(
            ("machine_suspected", {"machine": "m0"}),
            ("machine_declared", {"machine": "m0"}),
            ("machine_fenced", {"machine": "m0"}),
        ))
        assert violations == []


def ctrace(*specs):
    """Like :func:`trace` but honours an explicit ``t`` field, which the
    consensus lease rules compare against traced lease deadlines."""
    events = []
    for seq, spec in enumerate(specs):
        kind, fields = spec[0], dict(spec[1] if len(spec) > 1 else {})
        t = fields.pop("t", float(seq))
        known = {k: fields.pop(k, None) for k in ("db", "txn", "machine")}
        events.append(TraceEvent(seq=seq, t=t, kind=kind,
                                 extra=fields, **known))
    return events


def consensus_commit(txn=1, actor="ctl0", term=1, t=2.0, machines=("m0",)):
    """A consensus-mode commit: the decision carries actor and term."""
    steps = [("txn_begin", {"db": "kv", "txn": txn, "t": t})]
    for m in machines:
        steps += [("write_issued", {"db": "kv", "txn": txn, "machine": m,
                                    "t": t}),
                  ("write_acked", {"db": "kv", "txn": txn, "machine": m,
                                   "t": t}),
                  ("prepare", {"db": "kv", "txn": txn, "machine": m,
                               "t": t})]
    steps.append(("decision_logged", {"db": "kv", "txn": txn,
                                      "decision": "commit", "t": t,
                                      "mirrored": True, "actor": actor,
                                      "term": term}))
    for m in machines:
        steps.append(("commit_sent", {"db": "kv", "txn": txn,
                                      "machine": m, "t": t}))
    steps.append(("committed", {"db": "kv", "txn": txn, "t": t}))
    return steps


class TestConsensusRules:
    """The three control-plane rules the consensus tentpole added."""

    def test_clean_consensus_trace_passes(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 3.0, "t": 1.0}),
            *consensus_commit(txn=1, actor="ctl0", term=1, t=2.0),
            ("ctl_lease_renewed", {"machine": "ctl0", "term": 1,
                                   "lease_until": 6.0, "t": 4.0}),
            *consensus_commit(txn=2, actor="ctl0", term=1, t=5.0),
            ("ctl_applied", {"machine": "ctl0", "index": 1,
                             "command": "leader_takeover", "digest": "aa",
                             "t": 5.5}),
            ("ctl_applied", {"machine": "ctl1", "index": 1,
                             "command": "leader_takeover", "digest": "aa",
                             "t": 5.6}),
            ("ctl_applied", {"machine": "ctl0", "index": 2,
                             "command": "decision", "digest": "bb",
                             "t": 5.7}),
            ("ctl_applied", {"machine": "ctl1", "index": 2,
                             "command": "decision", "digest": "bb",
                             "t": 5.8}),
        ), write_policy="conservative")
        assert violations == []

    def test_duplicate_term_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 2.0, "t": 1.0}),
            ("ctl_leader_elected", {"machine": "ctl1", "term": 1,
                                    "lease_until": 6.0, "t": 5.0}),
        ))
        assert rules(violations) == ["single-leader-per-term"]

    def test_non_advancing_term_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 3,
                                    "lease_until": 2.0, "t": 1.0}),
            ("ctl_leader_elected", {"machine": "ctl1", "term": 2,
                                    "lease_until": 6.0, "t": 5.0}),
        ))
        assert rules(violations) == ["single-leader-per-term"]

    def test_election_under_standing_lease_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 10.0, "t": 1.0}),
            ("ctl_leader_elected", {"machine": "ctl1", "term": 2,
                                    "lease_until": 12.0, "t": 5.0}),
        ))
        assert rules(violations) == ["single-leader-per-term"]

    def test_stepdown_releases_the_lease(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 10.0, "t": 1.0}),
            ("ctl_stepdown", {"machine": "ctl0", "term": 1,
                              "reason": "test", "t": 2.0}),
            ("ctl_leader_elected", {"machine": "ctl1", "term": 2,
                                    "lease_until": 12.0, "t": 5.0}),
        ))
        assert violations == []

    def test_decision_without_any_lease_is_flagged(self):
        violations = check_trace(ctrace(
            *consensus_commit(txn=1, actor="ctl0", term=1, t=2.0),
        ), write_policy="conservative")
        assert rules(violations) == ["decision-only-under-valid-lease"]

    def test_decision_after_lease_expiry_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 3.0, "t": 1.0}),
            *consensus_commit(txn=1, actor="ctl0", term=1, t=4.0),
        ), write_policy="conservative")
        assert rules(violations) == ["decision-only-under-valid-lease"]

    def test_renewal_extends_the_decision_window(self):
        violations = check_trace(ctrace(
            ("ctl_leader_elected", {"machine": "ctl0", "term": 1,
                                    "lease_until": 3.0, "t": 1.0}),
            ("ctl_lease_renewed", {"machine": "ctl0", "term": 1,
                                   "lease_until": 5.0, "t": 2.5}),
            *consensus_commit(txn=1, actor="ctl0", term=1, t=4.0),
        ), write_policy="conservative")
        assert violations == []

    def test_non_contiguous_apply_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_applied", {"machine": "ctl0", "index": 1,
                             "command": "noop", "digest": "aa"}),
            ("ctl_applied", {"machine": "ctl0", "index": 3,
                             "command": "noop", "digest": "cc"}),
        ))
        assert rules(violations) == ["log-prefix-agreement"]

    def test_first_apply_must_be_entry_one(self):
        violations = check_trace(ctrace(
            ("ctl_applied", {"machine": "ctl0", "index": 4,
                             "command": "noop", "digest": "dd"}),
        ))
        assert rules(violations) == ["log-prefix-agreement"]

    def test_digest_divergence_is_flagged(self):
        violations = check_trace(ctrace(
            ("ctl_applied", {"machine": "ctl0", "index": 1,
                             "command": "decision", "digest": "aa"}),
            ("ctl_applied", {"machine": "ctl1", "index": 1,
                             "command": "decision", "digest": "zz"}),
        ))
        assert rules(violations) == ["log-prefix-agreement"]

    def test_truncated_trace_weakens_consensus_rules(self):
        # A ring-buffer overflow may have swallowed elections and early
        # applies: joins mid-stream must not be flagged.
        violations = check_trace(ctrace(
            *consensus_commit(txn=1, actor="ctl0", term=5, t=2.0),
            ("ctl_applied", {"machine": "ctl0", "index": 40,
                             "command": "decision", "digest": "aa"}),
            ("ctl_applied", {"machine": "ctl0", "index": 41,
                             "command": "noop", "digest": "bb"}),
        ), write_policy="conservative", dropped=100)
        assert "decision-only-under-valid-lease" not in rules(violations)
        assert "log-prefix-agreement" not in rules(violations)
