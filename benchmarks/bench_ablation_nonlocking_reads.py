"""Ablation — strict-2PL locking reads vs MySQL-style consistent reads.

The paper's formal model (Section 3.1) assumes reads take shared locks;
its actual engines (MySQL/InnoDB) serve plain SELECTs as non-locking
consistent reads. This ablation runs the same contended TPC-W ordering
workload both ways and shows what the read-locking choice costs:
locking reads add read/write conflicts (more deadlocks, more lock
waits), consistent reads trade that for read-committed semantics.
"""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.harness import format_table, run_tpcw_cluster
from repro.workloads.tpcw import TpcwScale

from common import report


def run_ablation():
    results = {}
    for label, nonlocking in (("locking reads (strict 2PL)", False),
                              ("consistent reads (read committed)", True)):
        results[label] = run_tpcw_cluster(
            mix_name="ordering",
            read_option=ReadOption.OPTION_1,
            write_policy=WritePolicy.CONSERVATIVE,
            machines=4,
            n_databases=2,
            replicas=2,
            clients_per_db=12,
            duration_s=12.0,
            scale=TpcwScale(items=150, emulated_browsers=12),
            think_time_s=0.005,
            buffer_pool_pages=1024,
            lock_wait_timeout_s=1.0,
            nonlocking_reads=nonlocking,
        )
    rows = [[label, result.throughput_tps, result.deadlocks]
            for label, result in results.items()]
    text = format_table(
        ["read mode", "throughput (tps)", "deadlocks"], rows)
    return text, results


@pytest.mark.benchmark(group="ablation-nonlocking-reads")
def test_ablation_nonlocking_reads(benchmark, capsys):
    text, results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_nonlocking_reads", text, capsys)
    locking = results["locking reads (strict 2PL)"]
    consistent = results["consistent reads (read committed)"]
    # Non-locking reads eliminate read/write deadlocks on this workload.
    assert consistent.deadlocks <= locking.deadlocks
    # And never cost throughput.
    assert consistent.throughput_tps >= locking.throughput_tps * 0.95
