"""Command-line interface: regenerate the paper's evaluation tables.

Usage::

    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness fig2 | fig3 | fig4        # throughput figures
    python -m repro.harness fig8 | fig9               # recovery figures
    python -m repro.harness all                       # everything quick

The figure benchmarks under ``benchmarks/`` are the authoritative
regenerators (with shape assertions); this CLI is the quick interactive
way to eyeball a table without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import CopyGranularity, ReadOption, WritePolicy
from repro.harness.reporting import format_table
from repro.harness.runner import (run_recovery_experiment, run_sla_placement,
                                  run_tpcw_cluster)
from repro.sla.model import ResourceVector
from repro.workloads.tpcw import TpcwScale


def cmd_table2(args) -> None:
    capacity = ResourceVector(cpu=2.0, memory_mb=1200.0, disk_io_mbps=60.0,
                              disk_mb=20000.0)
    rows = []
    for skew in (0.4, 0.8, 1.2, 1.6, 2.0):
        result = run_sla_placement(skew, n_databases=args.databases,
                                   seed=args.seed,
                                   machine_capacity=capacity,
                                   working_set_fraction=0.55)
        rows.append([result.skew, result.avg_size_mb,
                     result.avg_throughput_tps, result.machines_first_fit,
                     result.machines_optimal])
    print(format_table(
        ["Skew Factor", "Average Size (MB)", "Average Throughput (TPS)",
         "# of Machines Used", "Optimal Solution"], rows))


def cmd_throughput(mix: str, args) -> None:
    rows = []
    configs = [("no-replication", 1, ReadOption.OPTION_1),
               ("option-1", 2, ReadOption.OPTION_1),
               ("option-2", 2, ReadOption.OPTION_2),
               ("option-3", 2, ReadOption.OPTION_3)]
    for label, replicas, option in configs:
        result = run_tpcw_cluster(
            mix_name=mix, read_option=option,
            write_policy=WritePolicy.CONSERVATIVE,
            machines=4, n_databases=4, replicas=replicas,
            clients_per_db=args.clients, duration_s=args.duration,
            scale=TpcwScale(items=1200, emulated_browsers=args.clients),
            think_time_s=0.02, buffer_pool_pages=256)
        rows.append([label, result.throughput_tps, result.buffer_hit_rate,
                     result.deadlocks])
    print(format_table(["configuration", "throughput (tps)",
                        "buffer hit rate", "deadlocks"], rows))


def cmd_recovery(args) -> None:
    rows = []
    for granularity in (CopyGranularity.TABLE, CopyGranularity.DATABASE):
        for threads in (1, 2, 4):
            result = run_recovery_experiment(
                granularity=granularity, recovery_threads=threads,
                machines=4, n_databases=4, clients_per_db=2,
                duration_s=args.duration, failure_time_s=20.0,
                copy_bytes_factor=2000.0, think_time_s=0.3)
            rows.append([granularity.value, threads,
                         result.mean_rejections_per_db,
                         result.throughput_before_tps,
                         result.throughput_during_tps,
                         result.throughput_after_tps])
    print(format_table(
        ["copy granularity", "recovery threads", "rejections/db",
         "tps before", "tps during", "tps after"], rows))


def cmd_table1(args) -> None:
    # Import lazily: the benchmark module carries the implementation.
    sys.path.insert(0, "benchmarks")
    try:
        from bench_table1_serializability import regenerate_table1
    except ImportError:
        print("run from the repository root (needs benchmarks/ on path)")
        return
    table, _ = regenerate_table1()
    print(table)


EXPERIMENTS = [
    ("table1", "serializability matrix for the read/write policy options"),
    ("table2", "SLA-driven placement vs optimal bin packing"),
    ("fig2", "TPC-W shopping-mix throughput across replication options"),
    ("fig3", "TPC-W browsing-mix throughput across replication options"),
    ("fig4", "TPC-W ordering-mix throughput across replication options"),
    ("fig8-9", "recovery throughput/rejections by copy granularity"),
    ("all", "every experiment above, quick settings"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's evaluation tables")
    parser.add_argument("experiment", nargs="?",
                        choices=[name for name, _ in EXPERIMENTS])
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--duration", type=float, default=12.0,
                        help="simulated seconds per run")
    parser.add_argument("--clients", type=int, default=4,
                        help="emulated browsers per database")
    parser.add_argument("--databases", type=int, default=20,
                        help="tenant databases for placement experiments")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name, _ in EXPERIMENTS)
        for name, description in EXPERIMENTS:
            print(f"{name:<{width}}  {description}")
        return 0
    if args.experiment is None:
        parser.error("the following arguments are required: experiment")

    chosen = args.experiment
    if chosen in ("table1", "all"):
        print("== Table 1: serializability matrix ==")
        cmd_table1(args)
    if chosen in ("table2", "all"):
        print("\n== Table 2: SLA placement ==")
        cmd_table2(args)
    for fig, mix in (("fig2", "shopping"), ("fig3", "browsing"),
                     ("fig4", "ordering")):
        if chosen in (fig, "all"):
            print(f"\n== {fig.upper()}: throughput, {mix} mix ==")
            cmd_throughput(mix, args)
    if chosen in ("fig8-9", "all"):
        print("\n== Figures 8-9: recovery ==")
        cmd_recovery(args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
