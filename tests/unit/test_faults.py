"""Unit tests for the fault injectors: victim selection, the
start/stop lifecycle, the repair stream, and the partition injector."""

import pytest

from repro.cluster.network import NetworkConfig
from repro.harness.faults import FailureInjector, PartitionInjector
from repro.sim import Simulator
from tests.conftest import make_kv_cluster


class TestVictimSelection:
    def test_candidates_exclude_last_replicas(self, sim):
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=1)
        replicas = controller.replica_map.replicas("kv")
        controller.fail_machine(replicas[0])
        # The surviving replica must be spared.
        survivor = controller.live_replicas("kv")[0]
        assert survivor not in injector._candidates()

    def test_candidates_respect_min_live(self, sim):
        controller = make_kv_cluster(sim, machines=2)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=2)
        assert injector._candidates() == []

    def test_spare_disabled_allows_all(self, sim):
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=1,
                                   spare_last_replicas=False)
        assert len(injector._candidates()) == 3

    def test_stop_before_start_is_noop(self, sim):
        controller = make_kv_cluster(sim, machines=2)
        injector = FailureInjector(controller, mtbf_s=10.0)
        injector.stop()

    def test_deterministic_for_seed(self):
        events = []
        for _ in range(2):
            sim = Simulator()
            controller = make_kv_cluster(sim, machines=5)
            injector = FailureInjector(controller, mtbf_s=3.0, seed=11,
                                       min_live_machines=2)
            injector.start()
            sim.run(until=30.0)
            injector.stop()
            events.append([(e.when, e.machine) for e in injector.events])
        assert events[0] == events[1]
        assert events[0], "expected at least one failure in 30 s"


class TestLifecycle:
    def test_stop_then_start_resumes_failures(self):
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=5)
        injector = FailureInjector(controller, mtbf_s=2.0, seed=4,
                                   min_live_machines=2)
        injector.start()
        sim.run(until=20.0)
        injector.stop()
        stopped_at = len(injector.events)
        assert stopped_at > 0
        # Nothing fires while stopped.
        sim.run(until=40.0)
        assert len(injector.events) == stopped_at
        # Repair everything so the restarted loop has victims again.
        for name in list(controller.machines):
            if not controller.machines[name].alive:
                controller.repair_machine(name)
        injector.start()
        sim.run(until=80.0)
        assert len(injector.events) > stopped_at

    def test_start_twice_is_idempotent(self):
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=5.0)
        injector.start()
        procs = list(injector._procs)
        injector.start()
        assert injector._procs == procs
        injector.stop()
        injector.stop()   # idempotent

    def test_stop_does_not_crash_kernel(self):
        # The interrupt lands in a defused process: no unhandled-failure
        # crash even if the loop already finished.
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=1000.0)
        injector.start()
        sim.run(until=1.0)
        injector.stop()
        sim.run(until=2.0)


class TestRepairStream:
    def test_repairs_return_machines_as_spares(self):
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=5)
        injector = FailureInjector(controller, mtbf_s=3.0, seed=9,
                                   min_live_machines=2, repair_mtbf_s=2.0)
        injector.start()
        sim.run(until=60.0)
        injector.stop()
        assert injector.events, "expected failures"
        assert injector.repairs, "expected repairs"
        for repair in injector.repairs:
            # Repaired machines come back blank; they may fail again
            # later, but each repair event found them restartable.
            assert repair.machine in controller.machines
            assert repair.when > 0
        # The repair stream keeps the cluster from draining permanently.
        assert len(controller.live_machines()) > 2 or injector.repairs

    def test_crashed_machine_not_repairable_until_declared(self):
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   repair_mtbf_s=1.0, oracle=False)
        victim = controller.replica_map.replicas("kv")[0]
        controller.crash_machine(victim)
        # Still in the replica map: the detector has not declared it.
        assert injector._repair_candidates() == []


class TestPartitionInjector:
    def test_requires_fabric(self):
        sim = Simulator()
        controller = make_kv_cluster(sim, machines=3)
        with pytest.raises(ValueError):
            PartitionInjector(controller, mtbf_s=5.0)

    def test_episodes_cut_then_heal(self):
        sim = Simulator()
        controller = make_kv_cluster(
            sim, machines=4,
            network=NetworkConfig(enabled=True, latency_s=0.001, seed=1))
        injector = PartitionInjector(controller, mtbf_s=3.0, seed=2,
                                     mean_heal_s=1.0)
        injector.start()
        sim.run(until=30.0)
        injector.stop()
        assert injector.events, "expected at least one partition episode"
        for event in injector.events:
            assert event.kind in ("cut", "split")
            assert event.links
            assert event.healed_at is not None
            assert event.healed_at >= event.when
        assert controller.fabric.cut_links() == []

    def test_stop_heals_outstanding_cuts(self):
        sim = Simulator()
        controller = make_kv_cluster(
            sim, machines=4,
            network=NetworkConfig(enabled=True, latency_s=0.001, seed=1))
        injector = PartitionInjector(controller, mtbf_s=0.5, seed=3,
                                     mean_heal_s=1000.0)
        injector.start()
        sim.run(until=5.0)
        assert controller.fabric.cut_links(), "episode should be open"
        injector.stop()
        sim.run(until=6.0)
        assert controller.fabric.cut_links() == []

    def test_deterministic_for_seed(self):
        runs = []
        for _ in range(2):
            sim = Simulator()
            controller = make_kv_cluster(
                sim, machines=5,
                network=NetworkConfig(enabled=True, latency_s=0.001,
                                      seed=1))
            injector = PartitionInjector(controller, mtbf_s=2.0, seed=11,
                                         mean_heal_s=1.0)
            injector.start()
            sim.run(until=20.0)
            injector.stop()
            runs.append([(e.when, e.kind, e.links) for e in injector.events])
        assert runs[0] == runs[1]
        assert runs[0]
