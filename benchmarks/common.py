"""Shared plumbing for the figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's Section
5. The simulated cluster cannot match the authors' absolute numbers (it
is a simulator, not a 10-machine FreeBSD rack), so each benchmark asserts
the *shape* the paper reports — who wins, roughly by how much, and which
way each curve bends — and prints the regenerated rows/series.

Results are also appended to ``benchmarks/results/<name>.txt`` so the
numbers survive pytest's output capture.
"""

from __future__ import annotations

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str, capsys=None) -> None:
    """Print a benchmark's regenerated table and persist it to disk."""
    banner = f"\n===== {name} =====\n{text}\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner)
    else:
        print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")


def within(value: float, lo: float, hi: float) -> bool:
    return lo <= value <= hi
