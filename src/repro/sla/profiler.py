"""Resource profiling: mapping a database's SLA to a resource vector.

The paper allocates a new database to a *free* machine for an
observational period and measures what it needs (Section 4.2). This
module provides both halves:

* :func:`estimate_requirements` — the analytical cost model used to seed
  experiments: given database size, target throughput, and write mix,
  produce the resource vector one replica needs;
* :class:`ObservationProfiler` — the measured variant: run a workload
  against a database hosted alone on a dedicated machine and read the
  CPU/disk utilizations off the machine's simulated resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cluster.machine import Machine
from repro.engine.config import EngineConfig
from repro.sla.model import ResourceVector


def estimate_requirements(size_mb: float, throughput_tps: float,
                          write_mix: float = 0.2,
                          rows_per_txn: float = 40.0,
                          working_set_fraction: float = 0.25,
                          engine: Optional[EngineConfig] = None
                          ) -> ResourceVector:
    """Analytical resource requirement of one replica.

    The model mirrors how the simulated engine charges work: CPU scales
    with rows examined per transaction, disk I/O with the buffer-pool
    miss rate over the cold fraction of the working set, memory with the
    working set kept resident, and disk space with the database plus log.
    """
    if size_mb < 0 or throughput_tps < 0:
        raise ValueError("size and throughput must be non-negative")
    engine = engine or EngineConfig()
    cpu_us_per_txn = (engine.cpu_cost_per_statement_us * 5
                      + rows_per_txn * engine.cpu_cost_per_row_us)
    cpu_cores = throughput_tps * cpu_us_per_txn / 1e6

    # Pages touched per transaction, assuming point accesses: index
    # traversal plus heap page per row plus log write for updates.
    pages_per_txn = rows_per_txn / 4.0 + 3.0
    page_kb = engine.rows_per_page * 0.25  # ~256 B rows
    miss_rate = max(0.05, 1.0 - working_set_fraction)
    disk_io_mbps = (throughput_tps * pages_per_txn * miss_rate
                    * page_kb / 1024.0)
    disk_io_mbps += throughput_tps * write_mix * 0.01  # log flushes

    memory_mb = size_mb * working_set_fraction + 16.0  # + connection state
    disk_mb = size_mb * 1.2  # data + log + slack
    return ResourceVector(cpu=cpu_cores, memory_mb=memory_mb,
                          disk_io_mbps=disk_io_mbps, disk_mb=disk_mb)


@dataclass
class ObservationReport:
    """What the observational period measured."""

    duration_s: float
    committed: int
    cpu_utilization: float
    disk_utilization: float
    requirement: ResourceVector

    @property
    def observed_tps(self) -> float:
        return self.committed / self.duration_s if self.duration_s else 0.0

    def requirement_for(self, target_tps: float) -> ResourceVector:
        """Scale the measured vector to a target SLA throughput.

        This is what placement packs: the observation tells us resources
        *per transaction*, the SLA tells us how many transactions per
        second the tenant is entitled to. Size-driven dimensions (memory,
        disk space) do not scale with throughput.
        """
        if self.observed_tps <= 0:
            return self.requirement
        factor = target_tps / self.observed_tps
        return ResourceVector(
            cpu=self.requirement.cpu * factor,
            memory_mb=self.requirement.memory_mb,
            disk_io_mbps=self.requirement.disk_io_mbps * factor,
            disk_mb=self.requirement.disk_mb,
        )


class ObservationProfiler:
    """Measure a database's needs on a dedicated machine.

    Usage: place the database alone on ``machine``, run the workload for
    ``duration`` simulated seconds (the caller drives the client
    processes), then call :meth:`report` — utilizations are converted to
    the machine-relative resource vector the placement algorithms pack.
    """

    def __init__(self, machine: Machine, db_size_mb: float):
        self.machine = machine
        self.db_size_mb = db_size_mb
        self._start_time: Optional[float] = None
        self._start_cpu_busy = 0.0
        self._start_disk_busy = 0.0

    def begin(self) -> None:
        self._start_time = self.machine.sim.now
        self._start_cpu_busy = self.machine.cpu.busy_time
        self._start_disk_busy = self.machine.disk.busy_time

    def report(self, committed: int) -> ObservationReport:
        if self._start_time is None:
            raise RuntimeError("begin() was not called")
        elapsed = self.machine.sim.now - self._start_time
        if elapsed <= 0:
            raise RuntimeError("observation window has zero length")
        cpu_busy = self.machine.cpu.busy_time - self._start_cpu_busy
        disk_busy = self.machine.disk.busy_time - self._start_disk_busy
        cpu_util = cpu_busy / (self.machine.cpu.capacity * elapsed)
        disk_util = disk_busy / (self.machine.disk.capacity * elapsed)
        capacity = self.machine.capacity_vector()
        requirement = ResourceVector(
            cpu=cpu_util * capacity.cpu,
            memory_mb=min(capacity.memory_mb, self.db_size_mb * 0.25 + 16.0),
            disk_io_mbps=disk_util * capacity.disk_io_mbps,
            disk_mb=self.db_size_mb * 1.2,
        )
        return ObservationReport(elapsed, committed, cpu_util, disk_util,
                                 requirement)
