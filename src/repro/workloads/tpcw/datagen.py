"""Deterministic TPC-W data generation at configurable scale.

:class:`TpcwScale` controls cardinalities following the spec's ratios
(customers per emulated browser, 0.25 authors and 0.9 orders per item,
etc.), scaled down so a few hundred megabytes of paper-scale data maps to
a few thousand simulated rows. :class:`TpcwDatabase` generates every
table's rows with a seeded RNG and tracks the id counters that clients
use when inserting new customers, orders, and carts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRNG

SUBJECTS = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
    "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
    "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
    "ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
    "YOUTH", "TRAVEL",
]

COUNTRIES = [
    "United States", "United Kingdom", "Canada", "Germany", "France",
    "Japan", "Netherlands", "Switzerland", "Australia", "India",
]

SHIP_TYPES = ["AIR", "UPS", "FEDEX", "SHIP", "COURIER", "MAIL"]
STATUSES = ["PROCESSING", "SHIPPED", "PENDING", "DENIED"]
CARD_TYPES = ["VISA", "MASTERCARD", "DISCOVER", "AMEX", "DINERS"]
BACKINGS = ["HARDBACK", "PAPERBACK", "USED", "AUDIO", "LIMITED-ED"]


@dataclass(frozen=True)
class TpcwScale:
    """Cardinalities for one generated TPC-W database.

    The defaults follow the TPC-W ratios at roughly 1/100 of the paper's
    smallest configuration; multiply ``items`` to grow the database (all
    dependent tables scale along).
    """

    items: int = 1000
    emulated_browsers: int = 10

    @property
    def authors(self) -> int:
        return max(1, self.items // 4)

    @property
    def customers(self) -> int:
        return max(10, 29 * self.emulated_browsers)

    @property
    def addresses(self) -> int:
        return 2 * self.customers

    @property
    def orders(self) -> int:
        return max(1, int(0.9 * self.customers))

    @property
    def countries(self) -> int:
        return len(COUNTRIES)


def _date(rng: SeededRNG, year_lo: int = 1998, year_hi: int = 2008) -> str:
    return (f"{rng.randint(year_lo, year_hi):04d}-"
            f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")


@dataclass
class IdAllocator:
    """Shared id counters for client-side inserts (app-server sequences)."""

    next_customer: int
    next_address: int
    next_order: int
    next_cart: int

    def customer(self) -> int:
        cid = self.next_customer
        self.next_customer += 1
        return cid

    def address(self) -> int:
        aid = self.next_address
        self.next_address += 1
        return aid

    def order(self) -> int:
        oid = self.next_order
        self.next_order += 1
        return oid

    def cart(self) -> int:
        cid = self.next_cart
        self.next_cart += 1
        return cid


class TpcwDatabase:
    """Generates and remembers one TPC-W database's contents."""

    def __init__(self, scale: TpcwScale, seed: int = 0):
        self.scale = scale
        self.rng = SeededRNG(seed).fork("tpcw-datagen")
        self.rows: Dict[str, List[Tuple]] = {}
        self._generate()
        self.ids = IdAllocator(
            next_customer=scale.customers + 1,
            next_address=scale.addresses + 1,
            next_order=scale.orders + 1,
            next_cart=scale.emulated_browsers * 4 + 1,
        )

    # -- generation ----------------------------------------------------------

    def _generate(self) -> None:
        rng = self.rng
        scale = self.scale
        self.rows["country"] = [
            (i + 1, name, round(rng.uniform(0.5, 2.0), 4), "CUR")
            for i, name in enumerate(COUNTRIES)
        ]
        self.rows["author"] = [
            (a, f"afn{a}", f"aln{a % max(1, scale.authors // 2)}",
             None, _date(rng, 1900, 1980), rng.string(40))
            for a in range(1, scale.authors + 1)
        ]
        self.rows["item"] = [
            (i,
             f"title{i:06d}",
             rng.randint(1, scale.authors),
             _date(rng),
             f"publisher{rng.randint(1, 50)}",
             rng.choice(SUBJECTS),
             rng.string(60),
             round(rng.uniform(1.0, 100.0), 2),
             round(rng.uniform(1.0, 90.0), 2),
             _date(rng, 2008, 2009),
             rng.randint(10, 30),
             f"{rng.randint(10 ** 12, 10 ** 13 - 1)}",
             rng.randint(20, 9999),
             rng.choice(BACKINGS))
            for i in range(1, scale.items + 1)
        ]
        self.rows["address"] = [
            (a, rng.string(20), rng.string(20), rng.string(10),
             rng.string(8), f"{rng.randint(10000, 99999)}",
             rng.randint(1, len(COUNTRIES)))
            for a in range(1, scale.addresses + 1)
        ]
        self.rows["customer"] = [
            (c, f"user{c:07d}", rng.string(8), rng.string(8), rng.string(10),
             rng.randint(1, scale.addresses), f"555{rng.randint(1000000, 9999999)}",
             f"user{c}@example.com", _date(rng), _date(rng, 2007, 2008),
             _date(rng, 2008, 2008), _date(rng, 2009, 2010),
             round(rng.uniform(0.0, 0.5), 2), round(rng.uniform(-100, 500), 2),
             round(rng.uniform(0, 2000), 2))
            for c in range(1, scale.customers + 1)
        ]
        orders: List[Tuple] = []
        order_lines: List[Tuple] = []
        cc_xacts: List[Tuple] = []
        for o in range(1, scale.orders + 1):
            c_id = rng.randint(1, scale.customers)
            sub = round(rng.uniform(10, 500), 2)
            orders.append((o, c_id, _date(rng, 2007, 2008), sub,
                           round(sub * 0.0825, 2), round(sub * 1.0825, 2),
                           rng.choice(SHIP_TYPES), _date(rng, 2008, 2008),
                           rng.randint(1, scale.addresses),
                           rng.randint(1, scale.addresses),
                           rng.choice(STATUSES)))
            for line in range(1, rng.randint(1, 5) + 1):
                order_lines.append((o, line, rng.randint(1, scale.items),
                                    rng.randint(1, 9),
                                    round(rng.uniform(0, 0.4), 2),
                                    rng.string(20)))
            cc_xacts.append((o, rng.choice(CARD_TYPES),
                             f"{rng.randint(10 ** 15, 10 ** 16 - 1)}",
                             rng.string(14), _date(rng, 2009, 2012),
                             rng.string(15), round(sub * 1.0825, 2),
                             _date(rng, 2008, 2008),
                             rng.randint(1, len(COUNTRIES))))
        self.rows["orders"] = orders
        self.rows["order_line"] = order_lines
        self.rows["cc_xacts"] = cc_xacts
        # Pre-created carts: a handful per emulated browser.
        carts = []
        cart_lines = []
        for sc in range(1, scale.emulated_browsers * 4 + 1):
            carts.append((sc, _date(rng, 2008, 2008)))
            if rng.random() < 0.5:
                cart_lines.append((sc, rng.randint(1, scale.items),
                                   rng.randint(1, 4)))
        self.rows["shopping_cart"] = carts
        self.rows["shopping_cart_line"] = cart_lines

    # -- loading helpers -----------------------------------------------------

    def load_into(self, controller, db_name: str) -> None:
        """Bulk-load every table into all replicas (setup phase)."""
        for table, rows in self.rows.items():
            controller.bulk_load(db_name, table, rows)

    def estimated_mb(self) -> float:
        """Rough generated size (for SLA sizing and reporting)."""
        total = 0
        for rows in self.rows.values():
            for row in rows:
                total += sum(8 if isinstance(v, (int, float))
                             else len(str(v)) + 4
                             for v in row if v is not None) + 8
        return total / (1024.0 * 1024.0)
