"""The cluster: machines, the cluster controller, replication, recovery.

This package implements the paper's main technical contribution
(Sections 3 and 4): a cluster controller that coordinates tens of
commodity single-node DBMS instances with read-one-write-all replication
and two-phase commit, recovers from machine failures with Algorithm 1,
and places databases to satisfy SLAs.
"""

from repro.cluster.config import ClusterConfig, MachineConfig
from repro.cluster.consensus import (ConsensusConfig, ConsensusControlPlane,
                                     PaxosGroup)
from repro.cluster.controller import ClusterController, Connection
from repro.cluster.deadlock_detector import DistributedDeadlockDetector
from repro.cluster.machine import Machine
from repro.cluster.migration import MigrationManager
from repro.cluster.process_pair import ProcessPairBackup
from repro.cluster.recovery import CopyGranularity, RecoveryManager
from repro.cluster.replica_map import ReplicaMap
from repro.cluster.routing import ReadOption, WritePolicy

__all__ = [
    "ClusterConfig",
    "ClusterController",
    "Connection",
    "ConsensusConfig",
    "ConsensusControlPlane",
    "CopyGranularity",
    "DistributedDeadlockDetector",
    "Machine",
    "MachineConfig",
    "MigrationManager",
    "PaxosGroup",
    "ProcessPairBackup",
    "ReadOption",
    "RecoveryManager",
    "ReplicaMap",
    "WritePolicy",
]
