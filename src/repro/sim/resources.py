"""Shared simulated resources: FIFO servers and message stores.

:class:`Resource` models a server with ``capacity`` parallel slots (CPU
cores, disk spindles, connection pools). :class:`Store` is an unbounded
FIFO mailbox used for controller message queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Event, SimulationError, Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.granted_at: float = -1.0


class Resource:
    """A FIFO resource with a fixed number of slots.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: list = []
        self.queue: Deque[Request] = deque()
        # Total slot-seconds of granted service, for utilization profiling.
        self.busy_time: float = 0.0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def utilization(self, elapsed: float) -> float:
        """Mean fraction of capacity busy over ``elapsed`` sim-seconds.

        Counts only *completed* holds; call after quiescing or treat as a
        slight underestimate while work is in flight.
        """
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.capacity * elapsed))

    def request(self) -> Request:
        """Claim a slot; the returned event succeeds once granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.granted_at = self.sim.now
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot (or cancel a queued request)."""
        if req in self.users:
            self.users.remove(req)
            if req.granted_at >= 0:
                self.busy_time += self.sim.now - req.granted_at
            while self.queue and len(self.users) < self.capacity:
                nxt = self.queue.popleft()
                self.users.append(nxt)
                nxt.granted_at = self.sim.now
                nxt.succeed()
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                pass

    def use(self, duration: float):
        """Process helper: hold one slot for ``duration`` sim-time units."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    Getters are served in arrival order; items are delivered in put order.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
