"""A TPC-W storefront on the platform — the paper's benchmark workload.

Hosts two bookstore databases on a replicated cluster and drives emulated
browsers through the shopping mix, then reports throughput, the
interaction breakdown, and buffer-pool behaviour per machine.

Run:  python examples/tpcw_storefront.py
"""

from repro.cluster import (ClusterConfig, ClusterController, ReadOption,
                           WritePolicy)
from repro.harness import format_table
from repro.sim import Simulator
from repro.workloads.tpcw import MIXES, TpcwClient, TpcwDatabase, TpcwScale
from repro.workloads.tpcw.schema import TPCW_DDL

DURATION_S = 30.0
CLIENTS_PER_STORE = 6


def main():
    sim = Simulator()
    config = ClusterConfig(read_option=ReadOption.OPTION_1,
                           write_policy=WritePolicy.CONSERVATIVE)
    config.machine.engine.buffer_pool_pages = 512
    controller = ClusterController(sim, config)
    controller.add_machines(4)

    stores = {}
    for store in ("books-west", "books-east"):
        data = TpcwDatabase(TpcwScale(items=800,
                                      emulated_browsers=CLIENTS_PER_STORE),
                            seed=hash(store) % 1000)
        controller.create_database(store, TPCW_DDL, replicas=2)
        data.load_into(controller, store)
        stores[store] = data
        print(f"loaded {store}: ~{data.estimated_mb():.1f} MB generated "
              f"({data.scale.items} items, {data.scale.customers} customers)")

    clients = []
    for store, data in stores.items():
        for c in range(CLIENTS_PER_STORE):
            client = TpcwClient(controller, store, data, MIXES["shopping"],
                                client_id=c, seed=7 * c + 1,
                                think_time_s=0.1)
            clients.append(client)
            proc = sim.process(client.run(until=DURATION_S))
            proc.defused = True

    print(f"\nrunning the shopping mix for {DURATION_S:.0f} simulated "
          f"seconds with {len(clients)} emulated browsers...")
    sim.run(until=DURATION_S)

    metrics = controller.metrics
    print(f"\ncommitted transactions : {metrics.total_committed()}")
    print(f"throughput             : "
          f"{metrics.throughput(DURATION_S):.1f} tps")
    print(f"deadlocks              : {metrics.total_deadlocks()}")

    by_interaction = {}
    for client in clients:
        for name, count in client.stats.by_interaction.items():
            by_interaction[name] = by_interaction.get(name, 0) + count
    total = sum(by_interaction.values())
    rows = [[name, count, f"{100.0 * count / total:.1f}%"]
            for name, count in
            sorted(by_interaction.items(), key=lambda kv: -kv[1])]
    print("\ninteraction breakdown:")
    print(format_table(["interaction", "count", "share"], rows))

    rows = []
    for name, machine in sorted(controller.machines.items()):
        stats = machine.engine.buffer_pool.stats
        rows.append([name,
                     len(controller.replica_map.hosted_on(name)),
                     stats.accesses, f"{stats.hit_rate:.3f}",
                     machine.engine.locks.stats.deadlocks])
    print("\nper-machine view:")
    print(format_table(
        ["machine", "databases", "page accesses", "hit rate", "deadlocks"],
        rows))


if __name__ == "__main__":
    main()
