"""Integration tests for the unreliable fabric: heartbeat detection,
false-suspicion fencing and readmission, detection-driven recovery, and
a seeded partition soak audited by the invariant checker."""

import pytest

from repro.analysis.invariants import check_controller
from repro.cluster import RecoveryManager, WritePolicy
from repro.cluster.controller import TransactionAborted
from repro.cluster.network import CONTROLLER, NetworkConfig
from repro.errors import ControllerFailedError
from repro.harness.runner import run_partition_soak
from tests.conftest import (assert_no_violations, make_kv_cluster,
                            read_table)


def make_fabric_cluster(sim, machines=4, **kwargs):
    kwargs.setdefault("heartbeat_interval_s", 0.2)
    return make_kv_cluster(
        sim, machines=machines,
        network=NetworkConfig(enabled=True, latency_s=0.001, seed=1),
        **kwargs)


class TestFalseSuspicion:
    def test_partitioned_machine_is_fenced_then_readmitted(self, sim):
        controller = make_fabric_cluster(sim)
        RecoveryManager(controller, retry_delay_s=0.5).start()
        controller.start_failure_detector()
        victim = controller.replica_map.replicas("kv")[0]

        # Cut only the controller's link: the machine is perfectly
        # healthy on the far side of the partition.
        controller.fabric.cut(CONTROLLER, victim)
        sim.run(until=5.0)
        assert victim in controller.declared_dead
        assert victim in controller.fenced
        assert controller.machines[victim].alive
        assert victim not in controller.replica_map.replicas("kv")

        # Heal: the machine answers the next heartbeat and is readmitted
        # as a blank spare (its state is stale — recovery already handed
        # its replicas elsewhere).
        controller.fabric.heal(CONTROLLER, victim)
        sim.run(until=12.0)
        assert victim not in controller.declared_dead
        assert victim not in controller.fenced
        assert not controller.replica_map.hosted_on(victim)
        assert controller.metrics.network.false_suspicions >= 1

        # No data loss: the replication factor was restored from the
        # surviving replica and writes still reach every live replica.
        live = controller.live_replicas("kv")
        assert len(live) == 2

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 7 WHERE k = 1")
            yield conn.commit()

        proc = sim.process(client())
        sim.run(until=20.0)
        assert proc.ok
        for name in controller.live_replicas("kv"):
            assert read_table(controller, name, "kv",
                              "SELECT v FROM kv WHERE k = 1") == [(7,)]
        assert_no_violations(controller,
                             expect_recovery_complete=True)

    def test_suspicion_clears_when_machine_answers_in_time(self, sim):
        controller = make_fabric_cluster(sim)
        controller.start_failure_detector()
        victim = controller.replica_map.replicas("kv")[0]
        # Cut long enough to suspect (2 misses) but not declare (5).
        controller.fabric.cut(CONTROLLER, victim)
        sim.run(until=0.7)
        assert victim in controller.suspected
        controller.fabric.heal(CONTROLLER, victim)
        sim.run(until=3.0)
        assert victim not in controller.suspected
        assert victim not in controller.declared_dead
        assert victim in controller.replica_map.replicas("kv")
        assert_no_violations(controller)


class TestDetectionDrivenRecovery:
    def test_silent_crash_is_declared_and_rereplicated(self, sim):
        controller = make_fabric_cluster(sim)
        RecoveryManager(controller, retry_delay_s=0.5).start()
        controller.start_failure_detector()
        victim = controller.replica_map.replicas("kv")[0]

        controller.crash_machine(victim)
        # No oracle: the replica map is untouched until the heartbeat
        # detector declares the machine dead.
        assert victim in controller.replica_map.replicas("kv")
        sim.run(until=10.0)
        assert victim in controller.declared_dead
        assert victim not in controller.replica_map.replicas("kv")
        assert len(controller.live_replicas("kv")) == 2
        assert_no_violations(controller, expect_recovery_complete=True)

    def test_last_replica_holder_is_never_declared(self, sim):
        controller = make_fabric_cluster(sim, replicas=1)
        controller.start_failure_detector()
        only = controller.replica_map.replicas("kv")[0]
        controller.fabric.cut(CONTROLLER, only)
        sim.run(until=10.0)
        # Declaring would discard the only replica: the machine stays
        # suspected (the suspicion resolves once the partition heals).
        assert only not in controller.declared_dead
        assert only in controller.suspected
        controller.fabric.heal(CONTROLLER, only)
        sim.run(until=15.0)
        assert only not in controller.suspected
        assert_no_violations(controller)


class TestPartitionSoak:
    def test_seeded_soak_has_zero_violations(self):
        result = run_partition_soak(duration_s=20.0, drain_s=30.0, seed=3)
        violations = check_controller(result.controller,
                                      expect_recovery_complete=True)
        assert not violations, "\n".join(str(v) for v in violations)
        assert result.committed > 0
        assert result.partitions, "expected partition episodes"
        summary = result.metrics.network_summary()
        assert summary["messages_sent"] > 0
        assert summary["delivered"] <= summary["messages_sent"]
        # The drain healed everything; no suspicion dangles.
        assert not result.controller.suspected

    def test_seeded_soak_aggressive_policy(self):
        result = run_partition_soak(duration_s=20.0, drain_s=30.0, seed=5,
                                    write_policy=WritePolicy.AGGRESSIVE)
        violations = check_controller(result.controller,
                                      expect_recovery_complete=True)
        assert not violations, "\n".join(str(v) for v in violations)
        assert result.committed > 0
