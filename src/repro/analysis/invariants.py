"""Trace-driven 2PC / replication invariant checker.

Replays a cluster trace (:mod:`repro.analysis.trace`) and asserts the
correctness properties the paper's controller design promises:

* **decision-unique** — a prepared transaction reaches at most one
  decision: never two commit decisions, never commit *and* abort; in
  strict mode every prepared transaction must reach a terminal state.
* **decision-before-commit** — no COMMIT message leaves the coordinator
  before the commit decision is logged (mirrored to the process-pair
  backup when one is attached).
* **conservative-all-acked** — under the conservative write policy a
  commit decision is only taken once every issued replica write has been
  acknowledged (or its machine has failed).
* **poisoned-never-commits** — an aggressive-mode transaction whose
  background write failed (poisoned) never reaches a commit decision.
* **deadlock-aborts-everywhere** — a transaction that saw a deadlock or
  lock-wait timeout on any replica write never commits; it must abort on
  every replica (no surviving replica keeps the write).
* **rereplication-restores-factor** — (with ``expect_recovery_complete``)
  every database queued for re-replication after a machine failure ends
  with a successful copy restoring the replication factor.
* **no-split-brain** — after the process-pair backup's take-over, the
  old primary never logs another decision or sends another COMMIT; and
  at most one take-over happens per trace.
* **single-leader-per-term** — consensus controller elections produce
  strictly increasing terms, never the same term twice, and never a new
  leader while another node's traced lease is still unexpired (lease
  mutual exclusion).
* **log-prefix-agreement** — every consensus replica applies log
  entries in contiguous ascending index order, and any two replicas
  that apply the same index apply the identical command (by digest):
  all applied prefixes agree.
* **decision-only-under-valid-lease** — a consensus-replicated commit
  decision (``decision_logged`` carrying a ``term``) is only taken by a
  node whose traced leader lease covers the decision instant.
* **fenced-replica-never-serves** — between ``machine_fenced`` and
  readmission/repair, no write, PREPARE, or COMMIT is issued to the
  machine and it is never a re-replication source or target (its state
  is stale by construction).
* **suspicion-eventually-resolves** — every ``machine_suspected`` (and
  ``colo_suspected``) is eventually followed by an unsuspect (it
  answered again) or a declare (it was fenced); no suspicion dangles at
  the end of a complete trace.
* **no-dual-primary-colo** — a database's standby colo is only promoted
  after the old primary was fenced (or failed) under a monotonically
  increasing epoch, and never onto a fenced colo; fencing epochs
  strictly increase.
* **standby-applies-a-prefix-of-commit-order** — per database, the
  standby resolves replication-log entries in exact sequence order with
  no gaps and no duplicates: the applied entries are always a prefix of
  the primary's commit order (a counted drop consumes its slot).
* **lag-eventually-drains** — (with ``expect_lag_drained``) every
  replication link still attached at the end of the trace has applied
  (or consciously dropped) everything the primary shipped; a torn
  link's unapplied suffix is accounted as RPO instead.
* **neighbour-sla-holds-under-stampede** — a tenant that stayed within
  its provisioned admission rate over an SLA-monitor window is never
  rejected by admission control beyond its ``max_rejected_fraction``
  in that window: another tenant's overload must drain only its own
  bucket (one stray rejection is tolerated — a burst can land on a
  bucket the same tenant drained legitimately a window earlier).
* **rejections-within-sla-bound** — in steady state (a tenant that
  never exceeded its provisioned rate in any window of the trace), the
  tenant's *cumulative* admission-rejected fraction stays within its
  SLA bound.

Usable three ways: :func:`check_controller` on a live controller (what
the test suites call), :func:`check_trace` on a list of events, or as a
CLI over a JSONL dump::

    python -m repro.analysis.invariants trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.analysis.trace import TraceEvent, load_jsonl

#: Write-failure error types that mean "deadlock class" (the InnoDB rule:
#: these roll the whole local branch back, so commit must be impossible).
DEADLOCK_ERRORS = {"DeadlockError", "LockTimeoutError"}

#: Terminal per-transaction events.
_TERMINAL_KINDS = {"committed", "abort", "rollback",
                   "takeover_commit", "takeover_abort"}


@dataclass
class Violation:
    """One broken invariant, anchored to the event that exposed it."""

    rule: str
    message: str
    txn: Optional[int] = None
    db: Optional[str] = None
    seq: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.txn is not None:
            where.append(f"txn {self.txn}")
        if self.db is not None:
            where.append(f"db {self.db!r}")
        if self.seq is not None:
            where.append(f"seq {self.seq}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.rule}: {self.message}{suffix}"


@dataclass
class _TxnAudit:
    """Checker-side state of one traced transaction."""

    db: Optional[str] = None
    prepared: bool = False
    decision_seq: Optional[int] = None
    terminal_kinds: List[str] = field(default_factory=list)
    poisoned_seq: Optional[int] = None
    deadlock_seq: Optional[int] = None
    # Outstanding (issued - resolved) writes per machine at current seq.
    outstanding: Dict[str, int] = field(default_factory=dict)


class InvariantChecker:
    """Single-pass auditor over a cluster event trace."""

    def __init__(self, write_policy: Optional[str] = None,
                 replication_factor: Optional[int] = None,
                 expect_recovery_complete: bool = False,
                 expect_lag_drained: bool = False,
                 strict: bool = False, dropped: int = 0):
        self.write_policy = write_policy
        self.replication_factor = replication_factor
        self.expect_recovery_complete = expect_recovery_complete
        self.expect_lag_drained = expect_lag_drained
        self.strict = strict
        # Events lost to ring-buffer overflow: cross-event rules that need
        # a complete view (conservative acks, recovery completion, strict
        # termination) are skipped on truncated traces.
        self.dropped = dropped
        self.violations: List[Violation] = []
        self.in_flight: Set[int] = set()

    # -- entry point -----------------------------------------------------------

    def check(self, events: Sequence[TraceEvent]) -> List[Violation]:
        txns: Dict[int, _TxnAudit] = {}
        failed_machines: Set[str] = set()
        # db -> seq of the latest re-replication enqueue (rule 6).
        queued: Dict[str, int] = {}
        recovered: Dict[str, TraceEvent] = {}
        truncated = self.dropped > 0
        fenced: Set[str] = set()
        suspected_at: Dict[str, int] = {}   # machine -> suspicion seq
        takeover_seq: Optional[int] = None
        # Cross-colo DR state (system-tier traces).
        fenced_colos: Set[str] = set()
        colo_suspected_at: Dict[str, int] = {}
        last_epoch = 0
        # db -> next replication-log seq the standby must resolve.
        expected_rseq: Dict[str, int] = {}
        # db -> outstanding (shipped - applied - dropped) on the live link.
        link_lag: Dict[str, int] = {}
        link_lag_seq: Dict[str, int] = {}   # seq of the last ship, for anchors
        # Overload / SLA enforcement (sla_window events from the
        # runtime monitor): per-db cumulative admission accounting.
        # db -> [finished, rejected, bound, over_rate_windows, last_seq]
        sla_stats: Dict[str, List] = {}
        # Consensus control plane (ctl_* traces).
        ctl_terms_seen: Set[int] = set()
        last_ctl_term = 0
        node_lease: Dict[str, float] = {}      # node -> traced lease_until
        ctl_applied_next: Dict[str, int] = {}  # node -> next expected index
        ctl_digests: Dict[int, tuple] = {}     # index -> (digest, node, seq)

        def audit(txn_id: Optional[int]) -> Optional[_TxnAudit]:
            if txn_id is None:
                return None
            return txns.setdefault(txn_id, _TxnAudit())

        for e in events:
            if e.kind == "trace_meta":
                if self.write_policy is None:
                    self.write_policy = e.extra.get("write_policy")
                if self.replication_factor is None:
                    self.replication_factor = e.extra.get(
                        "replication_factor")
                continue
            state = audit(e.txn)
            if state is not None and state.db is None and e.db is not None:
                state.db = e.db

            if (e.kind in ("write_issued", "write_acked", "prepare",
                           "commit_sent")
                    and e.machine is not None and e.machine in fenced):
                self.violations.append(Violation(
                    "fenced-replica-never-serves",
                    f"{e.kind} on fenced machine {e.machine}",
                    txn=e.txn, db=e.db, seq=e.seq))

            if e.kind == "write_issued":
                state.outstanding[e.machine] = (
                    state.outstanding.get(e.machine, 0) + 1)
            elif e.kind in ("write_acked", "write_failed"):
                state.outstanding[e.machine] = (
                    state.outstanding.get(e.machine, 0) - 1)
                if e.kind == "write_failed" and \
                        e.extra.get("error") in DEADLOCK_ERRORS:
                    if state.deadlock_seq is None:
                        state.deadlock_seq = e.seq
            elif e.kind == "poisoned":
                if state.poisoned_seq is None:
                    state.poisoned_seq = e.seq
            elif e.kind in ("prepare", "prepare_failed"):
                state.prepared = state.prepared or e.kind == "prepare"
            elif e.kind == "decision_logged":
                self._on_decision(e, state, failed_machines, truncated)
                if (takeover_seq is not None
                        and e.extra.get("actor", "primary") == "primary"):
                    self.violations.append(Violation(
                        "no-split-brain",
                        "old primary logged a decision after take-over",
                        txn=e.txn, db=e.db, seq=e.seq))
                if "term" in e.extra and not truncated:
                    # Consensus path: the deciding node must hold a
                    # traced leader lease covering the decision instant.
                    actor = e.extra.get("actor")
                    lease = node_lease.get(actor)
                    if lease is None or lease < e.t:
                        self.violations.append(Violation(
                            "decision-only-under-valid-lease",
                            f"decision by {actor} at t={e.t:.4f} without "
                            "a valid leader lease"
                            + (f" (lease expired {e.t - lease:.4f}s "
                               "earlier)" if lease is not None else ""),
                            txn=e.txn, db=e.db, seq=e.seq))
            elif e.kind == "commit_sent":
                if state.decision_seq is None:
                    self.violations.append(Violation(
                        "decision-before-commit",
                        "COMMIT sent before the decision was logged",
                        txn=e.txn, db=e.db, seq=e.seq))
                if takeover_seq is not None:
                    self.violations.append(Violation(
                        "no-split-brain",
                        "old primary sent COMMIT after take-over",
                        txn=e.txn, db=e.db, seq=e.seq))
            elif e.kind in _TERMINAL_KINDS:
                if e.kind in ("abort", "rollback", "takeover_abort") and \
                        state.decision_seq is not None:
                    self.violations.append(Violation(
                        "decision-unique",
                        f"{e.kind} after a logged commit decision",
                        txn=e.txn, db=e.db, seq=e.seq))
                state.terminal_kinds.append(e.kind)
            elif e.kind == "machine_failed":
                failed_machines.add(e.machine)
            elif e.kind == "machine_crashed":
                failed_machines.add(e.machine)
            elif e.kind == "machine_declared":
                failed_machines.add(e.machine)
                suspected_at.pop(e.machine, None)
            elif e.kind == "machine_fenced":
                fenced.add(e.machine)
            elif e.kind in ("machine_readmitted", "machine_repaired"):
                fenced.discard(e.machine)
                suspected_at.pop(e.machine, None)
                failed_machines.discard(e.machine)
            elif e.kind == "machine_suspected":
                suspected_at.setdefault(e.machine, e.seq)
            elif e.kind == "machine_unsuspected":
                suspected_at.pop(e.machine, None)
            elif e.kind == "ctl_leader_elected":
                term = e.extra.get("term")
                lease_until = e.extra.get("lease_until")
                if term is not None and not truncated:
                    if term in ctl_terms_seen:
                        self.violations.append(Violation(
                            "single-leader-per-term",
                            f"term {term} elected twice", seq=e.seq))
                    elif term <= last_ctl_term:
                        self.violations.append(Violation(
                            "single-leader-per-term",
                            f"election term {term} does not advance past "
                            f"{last_ctl_term}", seq=e.seq))
                    ctl_terms_seen.add(term)
                    last_ctl_term = max(last_ctl_term, term)
                if not truncated:
                    for other, until in sorted(node_lease.items()):
                        if other != e.machine and until > e.t:
                            self.violations.append(Violation(
                                "single-leader-per-term",
                                f"{e.machine} elected at t={e.t:.4f} while "
                                f"{other}'s lease runs to {until:.4f}",
                                seq=e.seq))
                if lease_until is not None:
                    node_lease[e.machine] = lease_until
            elif e.kind == "ctl_lease_renewed":
                lease_until = e.extra.get("lease_until")
                if lease_until is not None:
                    node_lease[e.machine] = lease_until
            elif e.kind == "ctl_stepdown":
                node_lease.pop(e.machine, None)
            elif e.kind == "ctl_applied":
                index = e.extra.get("index")
                digest = e.extra.get("digest")
                if index is not None:
                    want = ctl_applied_next.get(e.machine)
                    if want is None:
                        # A complete trace sees every apply from entry 1;
                        # a truncated one may join each node mid-stream.
                        if index != 1 and not truncated:
                            self.violations.append(Violation(
                                "log-prefix-agreement",
                                f"{e.machine} first applied entry {index}, "
                                "not 1", seq=e.seq))
                    elif index != want:
                        self.violations.append(Violation(
                            "log-prefix-agreement",
                            f"{e.machine} applied entry {index}, expected "
                            f"{want} (non-contiguous apply)", seq=e.seq))
                    ctl_applied_next[e.machine] = max(
                        index + 1, ctl_applied_next.get(e.machine, 0))
                    if digest is not None:
                        seen = ctl_digests.get(index)
                        if seen is None:
                            ctl_digests[index] = (digest, e.machine, e.seq)
                        elif seen[0] != digest:
                            self.violations.append(Violation(
                                "log-prefix-agreement",
                                f"entry {index} diverges: {e.machine} "
                                f"applied {digest}, {seen[1]} applied "
                                f"{seen[0]}", seq=e.seq))
            elif e.kind == "sla_window":
                finished = e.extra.get("finished") or 0
                rejected = e.extra.get("rejected") or 0
                bound = e.extra.get("bound")
                within = bool(e.extra.get("within_rate"))
                if bound is not None and finished > 0:
                    stats = sla_stats.setdefault(e.db, [0, 0, bound, 0,
                                                        None, 0])
                    stats[0] += finished
                    stats[1] += rejected
                    stats[2] = bound
                    if not within:
                        stats[3] += 1
                    stats[4] = e.seq
                    if within and rejected > bound * finished + 1:
                        stats[5] += 1
                        self.violations.append(Violation(
                            "neighbour-sla-holds-under-stampede",
                            f"tenant within its provisioned rate had "
                            f"{rejected}/{finished} transactions rejected "
                            f"by admission (bound {bound})",
                            db=e.db, seq=e.seq))
            elif e.kind == "takeover":
                if takeover_seq is not None:
                    self.violations.append(Violation(
                        "no-split-brain",
                        "second take-over in one trace", seq=e.seq))
                else:
                    takeover_seq = e.seq
            elif e.kind == "rereplication_start":
                for role, name in (("target", e.machine),
                                   ("source", e.extra.get("source"))):
                    if name is not None and name in fenced:
                        self.violations.append(Violation(
                            "fenced-replica-never-serves",
                            f"re-replication {role} {name} is fenced",
                            db=e.db, seq=e.seq))
            elif e.kind == "rereplication_queued":
                queued[e.db] = e.seq
                recovered.pop(e.db, None)
            elif e.kind == "rereplication_done":
                recovered[e.db] = e
            elif e.kind == "rereplication_skipped":
                if e.extra.get("reason") == "already-replicated":
                    recovered[e.db] = e
            elif e.kind == "colo_suspected":
                colo_suspected_at.setdefault(e.machine, e.seq)
            elif e.kind == "colo_unsuspected":
                colo_suspected_at.pop(e.machine, None)
            elif e.kind == "colo_declared":
                colo_suspected_at.pop(e.machine, None)
            elif e.kind in ("colo_fenced", "colo_failed"):
                colo_suspected_at.pop(e.machine, None)
                fenced_colos.add(e.machine)
                epoch = e.extra.get("epoch")
                if epoch is not None:
                    if epoch <= last_epoch:
                        self.violations.append(Violation(
                            "no-dual-primary-colo",
                            f"fencing epoch {epoch} does not advance past "
                            f"{last_epoch}", seq=e.seq))
                    else:
                        last_epoch = epoch
            elif e.kind == "colo_repaired":
                fenced_colos.discard(e.machine)
                colo_suspected_at.pop(e.machine, None)
            elif e.kind == "dr_promote":
                old = e.extra.get("old")
                new = e.extra.get("new")
                epoch = e.extra.get("epoch")
                if old is not None and old not in fenced_colos:
                    self.violations.append(Violation(
                        "no-dual-primary-colo",
                        f"db promoted to {new} while old primary {old} "
                        "was not fenced", db=e.db, seq=e.seq))
                if new is not None and new in fenced_colos:
                    self.violations.append(Violation(
                        "no-dual-primary-colo",
                        f"db promoted onto fenced colo {new}",
                        db=e.db, seq=e.seq))
                if epoch is not None and epoch < last_epoch:
                    self.violations.append(Violation(
                        "no-dual-primary-colo",
                        f"promotion under stale epoch {epoch} < "
                        f"{last_epoch}", db=e.db, seq=e.seq))
                # The link died with the old primary; its unapplied
                # suffix is RPO, not lag.
                expected_rseq.pop(e.db, None)
                link_lag.pop(e.db, None)
            elif e.kind == "dr_protect":
                primary = e.extra.get("primary")
                if primary is not None and primary in fenced_colos:
                    self.violations.append(Violation(
                        "no-dual-primary-colo",
                        f"db protected with fenced primary {primary}",
                        db=e.db, seq=e.seq))
                # A fresh link restarts the sequence numbering.
                expected_rseq[e.db] = e.extra.get("base_seq", 0) + 1
                link_lag[e.db] = 0
            elif e.kind == "dr_link_torn":
                expected_rseq.pop(e.db, None)
                link_lag.pop(e.db, None)
            elif e.kind == "dr_ship":
                if e.db in link_lag:
                    link_lag[e.db] += 1
                    link_lag_seq[e.db] = e.seq
            elif e.kind in ("dr_apply", "dr_drop"):
                if e.db in link_lag:
                    link_lag[e.db] -= 1
                rseq = e.extra.get("rseq")
                want = expected_rseq.get(e.db)
                if rseq is not None and want is not None and not truncated:
                    if rseq != want:
                        self.violations.append(Violation(
                            "standby-applies-a-prefix-of-commit-order",
                            f"standby resolved log seq {rseq}, expected "
                            f"{want} ({'gap' if rseq > want else 'replay'})",
                            db=e.db, seq=e.seq))
                    expected_rseq[e.db] = max(want, rseq) + 1

        self._finish(txns, queued, recovered, truncated, suspected_at)
        for db, (finished, rejected, bound, over_windows, last_seq,
                 window_violations) in sorted(sla_stats.items()):
            # Steady state only: a tenant that ever overran its
            # provisioned rate *earned* its rejections. A tenant whose
            # windows were already flagged individually is not
            # re-reported cumulatively.
            if over_windows == 0 and window_violations == 0 \
                    and finished > 0 \
                    and rejected > bound * finished + 1:
                self.violations.append(Violation(
                    "rejections-within-sla-bound",
                    f"steady-state tenant had {rejected}/{finished} "
                    f"({rejected / finished:.4f}) transactions rejected "
                    f"by admission, above its bound {bound}",
                    db=db, seq=last_seq))
        if colo_suspected_at and not truncated:
            for colo, seq in sorted(colo_suspected_at.items()):
                self.violations.append(Violation(
                    "suspicion-eventually-resolves",
                    f"colo {colo} still suspected at end of trace",
                    seq=seq))
        if self.expect_lag_drained and not truncated:
            for db, lag in sorted(link_lag.items()):
                if lag > 0:
                    self.violations.append(Violation(
                        "lag-eventually-drains",
                        f"replication link still has {lag} shipped "
                        "entries unresolved at end of trace",
                        db=db, seq=link_lag_seq.get(db)))
        return self.violations

    # -- per-rule helpers -------------------------------------------------------

    def _on_decision(self, e: TraceEvent, state: _TxnAudit,
                     failed_machines: Set[str], truncated: bool) -> None:
        if state.decision_seq is not None:
            self.violations.append(Violation(
                "decision-unique", "second commit decision logged",
                txn=e.txn, db=e.db, seq=e.seq))
        if any(k in ("abort", "rollback", "takeover_abort")
               for k in state.terminal_kinds):
            self.violations.append(Violation(
                "decision-unique", "commit decision after an abort",
                txn=e.txn, db=e.db, seq=e.seq))
        state.decision_seq = e.seq
        if state.poisoned_seq is not None:
            self.violations.append(Violation(
                "poisoned-never-commits",
                "poisoned transaction reached a commit decision",
                txn=e.txn, db=e.db, seq=e.seq))
        if state.deadlock_seq is not None:
            self.violations.append(Violation(
                "deadlock-aborts-everywhere",
                "transaction with a deadlocked replica write committed",
                txn=e.txn, db=e.db, seq=e.seq))
        if self.write_policy == "conservative" and not truncated:
            stragglers = sorted(
                machine for machine, count in state.outstanding.items()
                if count > 0 and machine not in failed_machines)
            if stragglers:
                self.violations.append(Violation(
                    "conservative-all-acked",
                    "commit decision with unacknowledged writes on "
                    f"{', '.join(stragglers)}",
                    txn=e.txn, db=e.db, seq=e.seq))

    def _finish(self, txns: Dict[int, _TxnAudit], queued: Dict[str, int],
                recovered: Dict[str, TraceEvent], truncated: bool,
                suspected_at: Optional[Dict[str, int]] = None) -> None:
        if suspected_at and not truncated:
            for machine, seq in sorted(suspected_at.items()):
                self.violations.append(Violation(
                    "suspicion-eventually-resolves",
                    f"machine {machine} still suspected at end of trace",
                    seq=seq))
        for txn_id, state in txns.items():
            if not state.terminal_kinds:
                if state.prepared or state.decision_seq is not None:
                    self.in_flight.add(txn_id)
                    if self.strict and not truncated:
                        self.violations.append(Violation(
                            "decision-unique",
                            "prepared transaction never reached a "
                            "terminal state", txn=txn_id, db=state.db))
        if self.expect_recovery_complete and not truncated:
            for db, queue_seq in sorted(queued.items()):
                done = recovered.get(db)
                if done is None or done.seq < queue_seq:
                    self.violations.append(Violation(
                        "rereplication-restores-factor",
                        "database queued for re-replication was never "
                        "restored", db=db, seq=queue_seq))
                    continue
                replicas = done.extra.get("replicas")
                if (done.kind == "rereplication_done"
                        and self.replication_factor is not None
                        and replicas is not None
                        and replicas < self.replication_factor):
                    self.violations.append(Violation(
                        "rereplication-restores-factor",
                        f"re-replication finished with {replicas} < "
                        f"{self.replication_factor} replicas",
                        db=db, seq=done.seq))


def check_trace(events: Sequence[TraceEvent], **kwargs: Any
                ) -> List[Violation]:
    """Audit a list of trace events; returns the violations found."""
    return InvariantChecker(**kwargs).check(events)


def check_controller(controller, expect_recovery_complete: bool = False,
                     strict: bool = False) -> List[Violation]:
    """Audit a live :class:`~repro.cluster.controller.ClusterController`.

    Policy and replication factor are taken from the controller's
    configuration; the trace comes from its attached tracer.
    """
    checker = InvariantChecker(
        write_policy=controller.config.write_policy.value,
        replication_factor=controller.config.replication_factor,
        expect_recovery_complete=expect_recovery_complete,
        strict=strict, dropped=controller.trace.dropped)
    return checker.check(controller.trace.events())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.invariants",
        description="Audit a JSONL cluster trace for 2PC/replication "
                    "invariant violations")
    parser.add_argument("traces", nargs="+", help="JSONL trace file(s)")
    parser.add_argument("--write-policy",
                        choices=["conservative", "aggressive"],
                        help="override the policy recorded in the trace")
    parser.add_argument("--replication-factor", type=int)
    parser.add_argument("--expect-recovery-complete", action="store_true",
                        help="require every queued re-replication to have "
                             "finished")
    parser.add_argument("--expect-lag-drained", action="store_true",
                        help="require every live replication link to have "
                             "drained its shipped entries")
    parser.add_argument("--strict", action="store_true",
                        help="fail on prepared transactions left in flight")
    args = parser.parse_args(argv)

    exit_code = 0
    for path in args.traces:
        events, dropped = load_jsonl(path)
        checker = InvariantChecker(
            write_policy=args.write_policy,
            replication_factor=args.replication_factor,
            expect_recovery_complete=args.expect_recovery_complete,
            expect_lag_drained=args.expect_lag_drained,
            strict=args.strict, dropped=dropped)
        violations = checker.check(events)
        status = "OK" if not violations else f"{len(violations)} VIOLATED"
        note = f", {dropped} dropped" if dropped else ""
        print(f"{path}: {len(events)} events{note}, "
              f"{len(checker.in_flight)} in flight -> {status}")
        for violation in violations:
            print(f"  {violation}")
        if violations:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
