"""Cost-based optimization over catalogue statistics.

This stage sits between binding and physical plan construction. Given
the per-table :mod:`~repro.engine.stats` sketches it:

* estimates conjunct selectivities (equality against a literal reads the
  value's exact frequency from the sketch; parameters fall back to
  ``1/ndv``; ranges interpolate over the value counts);
* prices each access path (seq scan vs index-eq vs index-range) and each
  join edge (IndexLookupJoin vs HashJoin vs CrossJoin) with a simple
  page/row/probe cost model that mirrors what the executor actually
  charges to the buffer pool;
* replaces the syntactic join order with a greedy cost-ordered
  enumeration (smallest estimated frontier first);
* annotates every constructed operator with ``est_rows`` / ``est_cost``
  and records rejected alternatives for ``EXPLAIN ... verbose``.

Decisions degrade conservatively: any table with no statistics yet (row
count zero) makes the affected decision fall back to the heuristic
planner's choice, so schema-only workloads plan exactly as before.
The heuristic planner itself remains available wholesale behind
``EngineConfig.cost_based=False`` as the reference implementation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine import planner as pl
from repro.engine.sqlparse import nodes as n
from repro.engine.stats import UNKNOWN, TableStats

# Cost units: ~one row examined by the executor. PAGE covers a
# sequential heap-page touch, PROBE one B+Tree root-to-leaf traversal,
# FETCH one rid fetch through an index (row lock + heap page), ROW one
# row flowing through an operator.
PAGE_COST = 1.0
ROW_COST = 1.0
PROBE_COST = 2.0
FETCH_COST = 2.0

DEFAULT_SEL = 0.33
LIKE_SEL = 0.25


class CostModel:
    """Statistics access + cost arithmetic for one database."""

    def __init__(self, storage):
        self.storage = storage
        self.db_name = storage.name
        self.rows_per_page = storage.config.rows_per_page

    def stats(self, table_name: str) -> Optional[TableStats]:
        return self.storage.stats.get(table_name)

    def pages(self, row_count: int) -> int:
        return max(1, -(-row_count // self.rows_per_page))

    def seq_cost(self, row_count: int) -> float:
        return self.pages(row_count) * PAGE_COST + row_count * ROW_COST


class SlotMap:
    """Resolve a global row slot back to its binding and column stats."""

    def __init__(self, bindings: Sequence[pl.Binding], model: CostModel):
        self.model = model
        self._ranges: List[Tuple[int, int, pl.Binding]] = [
            (b.offset, b.offset + b.width, b) for b in bindings
        ]
        self.all_slots: Set[int] = set()
        for lo, hi, _ in self._ranges:
            self.all_slots.update(range(lo, hi))

    def binding_of(self, slot: int) -> Optional[pl.Binding]:
        for lo, hi, binding in self._ranges:
            if lo <= slot < hi:
                return binding
        return None

    def column(self, slot: int):
        """(ColumnStats, table row count) for a slot, or None."""
        binding = self.binding_of(slot)
        if binding is None:
            return None
        stats = self.model.stats(binding.table)
        if stats is None:
            return None
        return stats.columns[slot - binding.offset], stats.row_count


def _probe_value(expr: n.Expr) -> Any:
    """Plan-time value of a comparison's non-slot side (UNKNOWN if not
    a literal — parameters and outer-row expressions resolve at run
    time)."""
    if isinstance(expr, n.Literal):
        return expr.value
    return UNKNOWN


def _product(values) -> float:
    out = 1.0
    for v in values:
        out *= v
    return out


def conjunct_selectivity(conjunct: n.Expr, slot_map: SlotMap) -> float:
    """Estimated fraction of rows a filter conjunct keeps."""
    parsed = pl._match_comparison(conjunct, slot_map.all_slots,
                                  slot_map.all_slots)
    if parsed is not None:
        op, slot_expr, other = parsed
        resolved = slot_map.column(slot_expr.index)
        if resolved is None:
            return DEFAULT_SEL
        col, rows = resolved
        if op == "=":
            if isinstance(other, pl.Slot):
                other_resolved = slot_map.column(other.index)
                other_ndv = other_resolved[0].distinct if other_resolved else 1
                return 1.0 / max(1, col.distinct, other_ndv)
            return col.eq_fraction(_probe_value(other), rows)
        value = UNKNOWN if pl.expr_slots(other) else _probe_value(other)
        if op == "<":
            return col.range_fraction(None, value, True, False, rows)
        if op == "<=":
            return col.range_fraction(None, value, True, True, rows)
        if op == ">":
            return col.range_fraction(value, None, False, True, rows)
        return col.range_fraction(value, None, True, True, rows)
    if isinstance(conjunct, n.IsNull) and isinstance(conjunct.expr, pl.Slot):
        resolved = slot_map.column(conjunct.expr.index)
        if resolved is None:
            return DEFAULT_SEL
        col, rows = resolved
        frac = col.nulls / rows if rows else 0.0
        return 1.0 - frac if conjunct.negated else frac
    if isinstance(conjunct, n.Between) and isinstance(conjunct.expr, pl.Slot):
        resolved = slot_map.column(conjunct.expr.index)
        if resolved is None:
            return DEFAULT_SEL
        col, rows = resolved
        lo = UNKNOWN if pl.expr_slots(conjunct.low) else _probe_value(
            conjunct.low)
        hi = UNKNOWN if pl.expr_slots(conjunct.high) else _probe_value(
            conjunct.high)
        sel = col.range_fraction(lo, hi, True, True, rows)
        return 1.0 - sel if conjunct.negated else sel
    if isinstance(conjunct, n.InList) and isinstance(conjunct.expr, pl.Slot):
        resolved = slot_map.column(conjunct.expr.index)
        if resolved is None:
            return DEFAULT_SEL
        col, rows = resolved
        sel = min(1.0, sum(col.eq_fraction(_probe_value(item), rows)
                           for item in conjunct.items))
        return 1.0 - sel if conjunct.negated else sel
    if (isinstance(conjunct, n.BinaryOp) and conjunct.op == "<>"
            and isinstance(conjunct.left, pl.Slot)):
        resolved = slot_map.column(conjunct.left.index)
        if resolved is None:
            return DEFAULT_SEL
        col, rows = resolved
        return 1.0 - col.eq_fraction(_probe_value(conjunct.right), rows)
    if isinstance(conjunct, n.BinaryOp) and conjunct.op == "LIKE":
        return LIKE_SEL
    return DEFAULT_SEL


def annotate(plan: pl.Plan, est_rows: float, est_cost: float) -> None:
    plan.est_rows = est_rows
    plan.est_cost = est_cost


# -- candidate enumeration ----------------------------------------------------


class Candidate:
    """One priced physical alternative for a scan or join edge."""

    __slots__ = ("kind", "cost", "rows", "used", "build")

    def __init__(self, kind: str, cost: float, rows: float,
                 used: List[n.Expr], build):
        self.kind = kind       # display label for rejected-plan notes
        self.cost = cost       # total cost of producing `rows`
        self.rows = rows       # estimated output rows
        self.used = used       # conjuncts the alternative consumes
        self.build = build     # () -> Plan


def _parse_access_conjuncts(binding: pl.Binding, conjuncts: List[n.Expr],
                            available: Set[int]):
    """Split conjuncts into per-column eq and range maps (heuristic's
    shapes, shared so cost-based plans stay structurally identical)."""
    local = set(range(binding.offset, binding.offset + binding.width))
    eq: Dict[str, Tuple[n.Expr, n.Expr]] = {}
    ranges: Dict[str, List[Tuple[str, n.Expr, n.Expr]]] = {}
    for conjunct in conjuncts:
        parsed = pl._match_comparison(conjunct, local, available)
        if parsed is None:
            continue
        op, slot_expr, other = parsed
        col = binding.schema.columns[slot_expr.index - binding.offset].name
        if op == "=":
            eq.setdefault(col, (conjunct, other))
        else:
            ranges.setdefault(col, []).append((op, conjunct, other))
    return eq, ranges


def access_candidates(binding: pl.Binding, conjuncts: List[n.Expr],
                      available: Set[int], model: CostModel,
                      lock_exclusive: bool = False) -> List[Candidate]:
    """All priced access paths for one table (seq scan always included)."""
    stats = model.stats(binding.table)
    if stats is None:
        stats = TableStats(len(binding.schema.columns))
    rows = stats.row_count
    eq, ranges = _parse_access_conjuncts(binding, conjuncts, available)
    out: List[Candidate] = []
    db = model.db_name

    for index in binding.schema.indexes.values():
        prefix: List[str] = []
        for col in index.columns:
            if col in eq:
                prefix.append(col)
            else:
                break
        if prefix:
            sel = 1.0
            for col in prefix:
                pos = binding.schema.column_position(col)
                other = eq[col][1]
                value = (UNKNOWN if pl.expr_slots(other)
                         else _probe_value(other))
                sel *= stats.columns[pos].eq_fraction(value, rows)
            est = rows * sel
            cost = PROBE_COST + est * FETCH_COST
            used = [eq[c][0] for c in prefix]
            key_exprs = [eq[c][1] for c in prefix]

            def build_eq(index=index, key_exprs=key_exprs):
                return pl.IndexEqScan(binding, db, index, key_exprs,
                                      lock_exclusive=lock_exclusive)

            out.append(Candidate(f"IndexEqScan({index.name})", cost, est,
                                 used, build_eq))
            continue
        col = index.columns[0]
        if col in ranges:
            lo = hi = None
            lo_inc = hi_inc = True
            used = []
            for op, conjunct, other in ranges[col]:
                if op in (">", ">=") and lo is None:
                    lo, lo_inc = other, (op == ">=")
                    used.append(conjunct)
                elif op in ("<", "<=") and hi is None:
                    hi, hi_inc = other, (op == "<=")
                    used.append(conjunct)
            if used:
                pos = binding.schema.column_position(col)
                lo_v = (None if lo is None
                        else UNKNOWN if pl.expr_slots(lo)
                        else _probe_value(lo))
                hi_v = (None if hi is None
                        else UNKNOWN if pl.expr_slots(hi)
                        else _probe_value(hi))
                sel = stats.columns[pos].range_fraction(
                    lo_v, hi_v, lo_inc, hi_inc, rows)
                est = rows * sel
                cost = (PROBE_COST + est * FETCH_COST
                        + model.pages(int(est)) * PAGE_COST)

                def build_range(index=index, lo=lo, hi=hi, lo_inc=lo_inc,
                                hi_inc=hi_inc):
                    return pl.IndexRangeScan(binding, db, index, lo, hi,
                                             lo_inc, hi_inc,
                                             lock_exclusive=lock_exclusive)

                out.append(Candidate(f"IndexRangeScan({index.name})", cost,
                                     est, used, build_range))

    def build_seq():
        return pl.SeqScan(binding, db, lock_exclusive=lock_exclusive)

    out.append(Candidate("SeqScan", model.seq_cost(rows), float(rows), [],
                         build_seq))
    return out


def join_candidates(outer: Optional[pl.Plan], outer_rows: float,
                    binding: pl.Binding, conjuncts: List[n.Expr],
                    available: Set[int], model: CostModel,
                    slot_map: SlotMap) -> List[Candidate]:
    """Priced ways to join the next table onto a frontier of
    ``outer_rows`` estimated rows. ``outer`` may be None when only the
    numbers are needed (join-order search)."""
    stats = model.stats(binding.table)
    rows = stats.row_count if stats is not None else 0
    out: List[Candidate] = []
    db = model.db_name

    # Index lookup: any index access path usable with the outer slots
    # available (the heuristic wraps every such path in IndexLookupJoin).
    for cand in access_candidates(binding, conjuncts, available, model):
        if cand.kind == "SeqScan":
            continue
        per_probe = cand.rows
        cost = outer_rows * (PROBE_COST + per_probe * FETCH_COST)
        result = outer_rows * per_probe

        def build_ilj(cand=cand):
            return pl.IndexLookupJoin(outer, cand.build())

        out.append(Candidate(f"IndexLookupJoin/{cand.kind}", cost, result,
                             cand.used, build_ilj))

    # Hash join on equality conjuncts linking outer and inner.
    local = set(range(binding.offset, binding.offset + binding.width))
    outer_keys: List[n.Expr] = []
    inner_keys: List[n.Expr] = []
    hash_used: List[n.Expr] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, n.BinaryOp) or conjunct.op != "=":
            continue
        left_slots = pl.expr_slots(conjunct.left)
        right_slots = pl.expr_slots(conjunct.right)
        if left_slots <= available and right_slots <= local and right_slots:
            outer_keys.append(conjunct.left)
            inner_keys.append(conjunct.right)
            hash_used.append(conjunct)
        elif right_slots <= available and left_slots <= local and left_slots:
            outer_keys.append(conjunct.right)
            inner_keys.append(conjunct.left)
            hash_used.append(conjunct)
    if outer_keys:
        join_sel = 1.0
        for o_key, i_key in zip(outer_keys, inner_keys):
            inner_ndv = 1
            if isinstance(i_key, pl.Slot):
                resolved = slot_map.column(i_key.index)
                if resolved is not None:
                    inner_ndv = resolved[0].distinct
            outer_ndv = 1
            if isinstance(o_key, pl.Slot):
                resolved = slot_map.column(o_key.index)
                if resolved is not None:
                    outer_ndv = resolved[0].distinct
            join_sel *= 1.0 / max(1, inner_ndv, outer_ndv)
        result = outer_rows * rows * join_sel
        cost = (model.seq_cost(rows) + outer_rows * ROW_COST
                + result * ROW_COST)

        def build_hash():
            return pl.HashJoin(outer, pl.SeqScan(binding, db),
                               outer_keys, inner_keys,
                               binding.width, binding.offset)

        out.append(Candidate("HashJoin", cost, result, hash_used,
                             build_hash))

    result = outer_rows * rows
    cost = model.seq_cost(rows) + result * ROW_COST

    def build_cross():
        return pl.CrossJoin(outer, pl.SeqScan(binding, db))

    out.append(Candidate("CrossJoin", cost, result, [], build_cross))
    return out


def _pick(candidates: List[Candidate]) -> Candidate:
    """Cheapest candidate; ties resolve in enumeration order, which
    mirrors the heuristic's index-first preference."""
    best = candidates[0]
    for cand in candidates[1:]:
        if cand.cost < best.cost:
            best = cand
    return best


def _note_choice(what: str, chosen: Candidate,
                 candidates: List[Candidate]) -> Optional[str]:
    losers = [c for c in candidates if c is not chosen]
    if not losers:
        return None
    lost = ", ".join(f"{c.kind} cost={c.cost:.1f}" for c in losers)
    return (f"{what}: kept {chosen.kind} cost={chosen.cost:.1f} "
            f"rows={chosen.rows:.1f}; rejected {lost}")


# -- join-order search ---------------------------------------------------------


def choose_join_order(bindings: List[pl.Binding], conjuncts: List[n.Expr],
                      model: CostModel
                      ) -> Optional[Tuple[List[int], List[str]]]:
    """Greedy cost-ordered join enumeration.

    Returns a permutation of binding positions plus rejected-order
    notes, or None to keep the syntactic order (any table without
    statistics yet, including empty tables, defers to the heuristic).
    """
    count = len(bindings)
    all_stats = [model.stats(b.table) for b in bindings]
    if any(s is None or s.row_count <= 0 for s in all_stats):
        return None
    slot_map = SlotMap(bindings, model)
    local_slots = [set(range(b.offset, b.offset + b.width))
                   for b in bindings]
    local_conjs: List[List[n.Expr]] = [[] for _ in range(count)]
    for conjunct in conjuncts:
        slots = pl.expr_slots(conjunct)
        for i, owned in enumerate(local_slots):
            if slots and slots <= owned:
                local_conjs[i].append(conjunct)
                break
    local_sel = [
        _product(conjunct_selectivity(c, slot_map) for c in local_conjs[i])
        for i in range(count)
    ]
    eff_rows = [all_stats[i].row_count * local_sel[i] for i in range(count)]

    notes: List[str] = []
    scores = []
    for i in range(count):
        access = _pick(access_candidates(bindings[i], conjuncts, set(),
                                         model))
        scores.append((access.cost + eff_rows[i], i))
    start = min(scores)[1]
    rejected_starts = ", ".join(
        f"{bindings[i].name} score={score:.1f}"
        for score, i in sorted(scores) if i != start)
    if rejected_starts:
        notes.append(f"join order: start {bindings[start].name} "
                     f"score={min(scores)[0]:.1f}; rejected "
                     f"{rejected_starts}")

    order = [start]
    frontier = eff_rows[start]
    placed = set(local_slots[start])
    remaining = [i for i in range(count) if i != start]
    while remaining:
        step_scores = []
        for j in remaining:
            cand = _pick(join_candidates(None, frontier, bindings[j],
                                         conjuncts, placed, model,
                                         slot_map))
            result = cand.rows * local_sel[j]
            step_scores.append((cand.cost + result, j, result))
        step_scores.sort()
        _, chosen, result = step_scores[0]
        if len(step_scores) > 1:
            notes.append(
                f"join order: next {bindings[chosen].name} "
                f"score={step_scores[0][0]:.1f}; rejected "
                + ", ".join(f"{bindings[j].name} score={s:.1f}"
                            for s, j, _ in step_scores[1:]))
        order.append(chosen)
        frontier = result
        placed |= local_slots[chosen]
        remaining.remove(chosen)
    return order, notes


# -- cost-based plan construction ---------------------------------------------


def plan_joins(planner, bindings: List[pl.Binding],
               conjuncts: List[n.Expr], model: CostModel,
               rejected: List[str]) -> pl.Plan:
    """Cost-based analogue of ``Planner._plan_joins``.

    Same conjunct bookkeeping (consume on use, filter as soon as a
    conjunct's slots are available) so every plan it emits is one the
    interpreter executes identically; only the choices are priced.
    Tables without statistics defer each decision to the heuristic.
    """
    slot_map = SlotMap(bindings, model)
    remaining = list(conjuncts)
    available: Set[int] = set()

    def usable(expr: n.Expr) -> bool:
        return pl.expr_slots(expr) <= available

    first = bindings[0]
    first_stats = model.stats(first.table)
    if first_stats is None or first_stats.row_count <= 0:
        root, used = planner._access_path(first, remaining, available)
        est = 0.0
        cost = 0.0
    else:
        candidates = access_candidates(first, remaining, available, model)
        chosen = _pick(candidates)
        note = _note_choice(f"scan {first.name}", chosen, candidates)
        if note:
            rejected.append(note)
        root, used, est, cost = (chosen.build(), chosen.used, chosen.rows,
                                 chosen.cost)
    annotate(root, est, cost)
    for conjunct in used:
        remaining.remove(conjunct)
    available |= set(range(first.offset, first.offset + first.width))
    root, est = _apply_filters(root, remaining, usable, slot_map, est, cost)

    for binding in bindings[1:]:
        stats = model.stats(binding.table)
        if stats is None or stats.row_count <= 0:
            root, used = planner._join_one(root, binding, remaining,
                                           available)
            est = 0.0
        else:
            candidates = join_candidates(root, est, binding, remaining,
                                         available, model, slot_map)
            chosen = _pick(candidates)
            note = _note_choice(f"join {binding.name}", chosen, candidates)
            if note:
                rejected.append(note)
            cost += chosen.cost
            root, used, est = chosen.build(), chosen.used, chosen.rows
        annotate(root, est, cost)
        for conjunct in used:
            remaining.remove(conjunct)
        available |= set(range(binding.offset,
                               binding.offset + binding.width))
        root, est = _apply_filters(root, remaining, usable, slot_map, est,
                                   cost)
    if remaining:
        raise pl.SqlError(f"unplaceable predicates: {remaining}")
    return root


def _apply_filters(plan: pl.Plan, remaining: List[n.Expr], usable,
                   slot_map: SlotMap, est: float,
                   cost: float) -> Tuple[pl.Plan, float]:
    for conjunct in [c for c in remaining if usable(c)]:
        plan = pl.Filter(plan, conjunct)
        est *= conjunct_selectivity(conjunct, slot_map)
        annotate(plan, est, cost)
        remaining.remove(conjunct)
    return plan, est


def finalize_estimates(plan: pl.Plan, slot_map: SlotMap) -> None:
    """Propagate row/cost estimates to operators above the join tree."""
    _walk_estimates(plan, slot_map)


def _walk_estimates(plan, slot_map: SlotMap):
    if not isinstance(plan, pl.Plan):
        return None
    existing = getattr(plan, "est_rows", None)
    if existing is not None:
        # Scans/joins/filters were annotated during construction, but
        # still descend so nested subtrees get visited.
        for attr in ("child", "outer", "inner"):
            node = getattr(plan, attr, None)
            if node is not None:
                _walk_estimates(node, slot_map)
        return existing, getattr(plan, "est_cost", 0.0)
    child = getattr(plan, "child", None)
    below = _walk_estimates(child, slot_map) if child is not None else None
    if below is None:
        return None
    child_rows, child_cost = below
    if isinstance(plan, pl.Aggregate):
        if not plan.group_exprs:
            rows = 1.0
        else:
            rows = child_rows
            ndv_product = 1.0
            for group in plan.group_exprs:
                if isinstance(group, pl.Slot):
                    resolved = slot_map.column(group.index)
                    if resolved is not None:
                        ndv_product *= max(1, resolved[0].distinct)
                else:
                    ndv_product = float("inf")
                    break
            rows = min(child_rows, ndv_product)
        cost = child_cost + child_rows * ROW_COST
    elif isinstance(plan, pl.Sort):
        rows = child_rows
        cost = child_cost + child_rows * ROW_COST
    elif isinstance(plan, pl.Limit):
        rows = child_rows
        if plan.limit is not None:
            rows = min(rows, float(plan.limit + plan.offset))
        cost = child_cost
    elif isinstance(plan, pl.Distinct):
        rows = child_rows
        cost = child_cost + child_rows * ROW_COST
    elif isinstance(plan, (pl.Project, pl.Filter)):
        rows = child_rows
        cost = child_cost
    else:
        return None
    annotate(plan, rows, cost)
    return rows, cost
