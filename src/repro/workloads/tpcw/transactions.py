"""The database transactions behind the 14 TPC-W web interactions.

Each interaction is a generator coroutine that drives one cluster
:class:`~repro.cluster.controller.Connection` — executing statements,
branching on their results like the benchmark's servlets, and committing
at the end. A :class:`TpcwSession` binds the interactions to one emulated
browser's state: its customer id and its dedicated shopping cart.

If any statement aborts (deadlock, rejection, failure) the controller
raises :class:`TransactionAborted` out of the generator; the client loop
catches and accounts for it.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cluster.controller import Connection
from repro.sim.rng import SeededRNG
from repro.workloads.tpcw.datagen import SUBJECTS, TpcwDatabase


class TpcwSession:
    """One emulated browser's interaction repertoire."""

    def __init__(self, conn: Connection, data: TpcwDatabase,
                 rng: SeededRNG, customer_id: int, cart_id: int):
        self.conn = conn
        self.data = data
        self.rng = rng
        self.customer_id = customer_id
        self.cart_id = cart_id

    # -- helpers ---------------------------------------------------------------

    def _random_item(self) -> int:
        return self.rng.randint(1, self.data.scale.items)

    def _random_subject(self) -> str:
        return self.rng.choice(SUBJECTS)

    def _today(self) -> str:
        return "2008-06-15"

    # -- browse interactions ------------------------------------------------------

    def home(self) -> Generator:
        """Customer greeting plus promotional items (point reads)."""
        conn = self.conn
        yield conn.execute(
            "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
            (self.customer_id,))
        for _ in range(2):
            yield conn.execute(
                "SELECT i_id, i_title, i_cost FROM item WHERE i_id = ?",
                (self._random_item(),))
        yield conn.commit()

    def new_products(self) -> Generator:
        """Newest items in one subject, with their authors."""
        yield self.conn.execute(
            "SELECT i_id, i_title, i_pub_date, i_srp, a_fname, a_lname "
            "FROM item, author WHERE i_subject = ? AND i_a_id = a_id "
            "ORDER BY i_pub_date DESC, i_title LIMIT 20",
            (self._random_subject(),))
        yield self.conn.commit()

    def best_sellers(self) -> Generator:
        """Top sellers over the most recent orders (two-phase form).

        As in the reference TPC-W implementations: first aggregate the
        recent order lines alone (order_line rows are insert-only, so
        these read locks conflict with nothing), then fetch details for
        just the top items — bounding the catalog rows this interaction
        touches to the list it displays.
        """
        recent = max(1, self.data.ids.next_order - 300)
        top = yield self.conn.execute(
            "SELECT ol_i_id, SUM(ol_qty) AS qty FROM order_line "
            "WHERE ol_o_id >= ? GROUP BY ol_i_id "
            "ORDER BY qty DESC, ol_i_id LIMIT 10", (recent,))
        for (item_id, _qty) in top.rows:
            yield self.conn.execute(
                "SELECT i_title, i_srp, a_fname, a_lname "
                "FROM item, author WHERE i_id = ? AND i_a_id = a_id",
                (item_id,))
        yield self.conn.commit()

    def product_detail(self) -> Generator:
        yield self.conn.execute(
            "SELECT i_title, i_pub_date, i_publisher, i_desc, i_srp, "
            "i_cost, i_stock, a_fname, a_lname "
            "FROM item, author WHERE i_id = ? AND i_a_id = a_id",
            (self._random_item(),))
        yield self.conn.commit()

    def search_request(self) -> Generator:
        """The search form page: a light catalog touch."""
        yield self.conn.execute(
            "SELECT co_id, co_name FROM country ORDER BY co_id LIMIT 5")
        yield self.conn.commit()

    def search_results(self) -> Generator:
        """Search by author (40 %), subject (40 %), or title (20 %)."""
        kind = self.rng.random()
        if kind < 0.4:
            lname = f"aln{self.rng.randint(0, max(0, self.data.scale.authors // 2 - 1))}"
            yield self.conn.execute(
                "SELECT i_id, i_title, a_fname, a_lname "
                "FROM author, item WHERE a_lname = ? AND i_a_id = a_id "
                "ORDER BY i_title LIMIT 20", (lname,))
        elif kind < 0.8:
            yield self.conn.execute(
                "SELECT i_id, i_title, i_srp FROM item WHERE i_subject = ? "
                "ORDER BY i_title LIMIT 20", (self._random_subject(),))
        else:
            # Title prefix search: exercises the title index range or a
            # scan, the cold path of the buffer pool.
            prefix = f"title{self.rng.randint(0, 9)}"
            yield self.conn.execute(
                "SELECT i_id, i_title, i_srp FROM item "
                "WHERE i_title >= ? AND i_title <= ? ORDER BY i_title "
                "LIMIT 20", (prefix, prefix + "~"))
        yield self.conn.commit()

    # -- cart / order interactions ----------------------------------------------------

    def shopping_cart(self) -> Generator:
        """View the cart and (usually) add or bump one item."""
        conn = self.conn
        result = yield conn.execute(
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line "
            "WHERE scl_sc_id = ?", (self.cart_id,))
        if self.rng.random() < 0.8:
            item = self._random_item()
            existing = {row[0] for row in result.rows}
            if item in existing:
                yield conn.execute(
                    "UPDATE shopping_cart_line SET scl_qty = scl_qty + 1 "
                    "WHERE scl_sc_id = ? AND scl_i_id = ?",
                    (self.cart_id, item))
            else:
                yield conn.execute(
                    "INSERT INTO shopping_cart_line VALUES (?, ?, ?)",
                    (self.cart_id, item, self.rng.randint(1, 3)))
        yield conn.execute(
            "UPDATE shopping_cart SET sc_time = ? WHERE sc_id = ?",
            (self._today(), self.cart_id))
        yield conn.commit()

    def customer_registration(self) -> Generator:
        """Create a new customer with a fresh address."""
        conn = self.conn
        addr_id = self.data.ids.address()
        c_id = self.data.ids.customer()
        yield conn.execute(
            "INSERT INTO address VALUES (?, ?, ?, ?, ?, ?, ?)",
            (addr_id, self.rng.string(16), self.rng.string(16),
             self.rng.string(10), self.rng.string(8),
             f"{self.rng.randint(10000, 99999)}",
             self.rng.randint(1, self.data.scale.countries)))
        yield conn.execute(
            "INSERT INTO customer VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (c_id, f"user{c_id:07d}", self.rng.string(8),
             self.rng.string(8), self.rng.string(10), addr_id,
             f"555{self.rng.randint(1000000, 9999999)}",
             f"user{c_id}@example.com", self._today(), self._today(),
             self._today(), "2010-01-01", 0.1, 0.0, 0.0))
        yield conn.commit()
        # Future interactions of this browser act as the new customer.
        self.customer_id = c_id

    def buy_request(self) -> Generator:
        """Checkout page: customer, address, cart refresh."""
        conn = self.conn
        result = yield conn.execute(
            "SELECT c_fname, c_lname, c_addr_id, c_discount "
            "FROM customer WHERE c_id = ?", (self.customer_id,))
        if result.rows:
            addr_id = result.rows[0][2]
            yield conn.execute(
                "SELECT addr_street1, addr_city, addr_zip, co_name "
                "FROM address, country WHERE addr_id = ? "
                "AND addr_co_id = co_id", (addr_id,))
        yield conn.execute(
            "UPDATE shopping_cart SET sc_time = ? WHERE sc_id = ?",
            (self._today(), self.cart_id))
        yield conn.commit()

    def buy_confirm(self) -> Generator:
        """Place the order: the benchmark's heavyweight write transaction.

        Reads the cart, inserts the order, its lines, and the credit-card
        transaction, decrements every purchased item's stock (the lock
        pattern responsible for TPC-W's deadlocks), and clears the cart.
        """
        conn = self.conn
        result = yield conn.execute(
            "SELECT scl_i_id, scl_qty FROM shopping_cart_line "
            "WHERE scl_sc_id = ?", (self.cart_id,))
        lines: List[Tuple[int, int]] = [(r[0], r[1] or 1) for r in result.rows]
        if not lines:
            item = self._random_item()
            lines = [(item, 1)]
        o_id = self.data.ids.order()
        subtotal = 0.0
        costs = []
        for item_id, qty in lines:
            # Check-then-decrement on the item: under strict 2PL this is
            # the benchmark's classic deadlock — two buyers of the same
            # item both hold S and both try to upgrade to X.
            price_row = yield conn.execute(
                "SELECT i_cost, i_stock FROM item WHERE i_id = ?",
                (item_id,))
            cost = price_row.scalar() or 10.0
            costs.append(cost)
            subtotal += cost * qty
        tax = round(subtotal * 0.0825, 2)
        yield conn.execute(
            "INSERT INTO orders VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (o_id, self.customer_id, self._today(), round(subtotal, 2),
             tax, round(subtotal + tax, 2), "UPS", self._today(),
             1, 1, "PENDING"))
        for line_no, ((item_id, qty), cost) in enumerate(zip(lines, costs),
                                                         start=1):
            yield conn.execute(
                "INSERT INTO order_line VALUES (?, ?, ?, ?, ?, ?)",
                (o_id, line_no, item_id, qty, 0.0, ""))
            yield conn.execute(
                "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?",
                (qty, item_id))
        yield conn.execute(
            "INSERT INTO cc_xacts VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (o_id, "VISA", f"{self.rng.randint(10 ** 15, 10 ** 16 - 1)}",
             self.rng.string(12), "2010-01-01", self.rng.string(10),
             round(subtotal + tax, 2), self._today(),
             self.rng.randint(1, self.data.scale.countries)))
        yield conn.execute(
            "DELETE FROM shopping_cart_line WHERE scl_sc_id = ?",
            (self.cart_id,))
        yield conn.commit()

    def order_inquiry(self) -> Generator:
        yield self.conn.execute(
            "SELECT c_id, c_fname, c_lname FROM customer WHERE c_id = ?",
            (self.customer_id,))
        yield self.conn.commit()

    def order_display(self) -> Generator:
        """The customer's most recent order with lines and payment."""
        conn = self.conn
        result = yield conn.execute(
            "SELECT o_id, o_date, o_total, o_status FROM orders "
            "WHERE o_c_id = ? ORDER BY o_id DESC LIMIT 1",
            (self.customer_id,))
        if result.rows:
            o_id = result.rows[0][0]
            yield conn.execute(
                "SELECT ol_i_id, ol_qty, i_title, i_cost "
                "FROM order_line, item WHERE ol_o_id = ? AND ol_i_id = i_id",
                (o_id,))
            yield conn.execute(
                "SELECT cx_type, cx_xact_amt, cx_xact_date "
                "FROM cc_xacts WHERE cx_o_id = ?", (o_id,))
        yield conn.commit()

    # -- admin interactions ---------------------------------------------------------

    def admin_request(self) -> Generator:
        yield self.conn.execute(
            "SELECT i_id, i_title, i_srp, i_cost, i_stock, i_pub_date "
            "FROM item WHERE i_id = ?", (self._random_item(),))
        yield self.conn.commit()

    def admin_confirm(self) -> Generator:
        """Catalog maintenance: re-price and re-date one item."""
        item = self._random_item()
        yield self.conn.execute(
            "UPDATE item SET i_pub_date = ?, i_srp = ? WHERE i_id = ?",
            (self._today(), round(self.rng.uniform(1.0, 100.0), 2), item))
        yield self.conn.commit()
