"""Cluster commit-path latency: parallel 2PC fan-out vs sequential.

Measures the coordinator's PREPARE and COMMIT phase latency on a
fabric-enabled cluster (fixed one-way message latency, no loss) for
replication factors 2, 3, and 5 under both write policies. The
sequential reference coordinator pays one round trip per participant
per phase; the parallel fan-out issues every branch at once and pays
one round trip per phase regardless of fan-out width, so the expected
p50 speedup is roughly the replication factor.

Two modes:

* ``pytest benchmarks/bench_cluster_txn.py --benchmark-only`` — a
  pytest-benchmark wrapper timing one full bench run per mode (the
  simulation is deterministic; this tracks harness wall-clock);
* ``python benchmarks/bench_cluster_txn.py`` — plain mode: runs the
  full sweep and writes ``BENCH_cluster_txn.json`` (phase-latency
  percentiles and speedups per configuration) at the repository root.
  ``--smoke`` restricts the sweep to replication factor 3 with fewer
  transactions for CI.
"""

import sys

import pytest

sys.path.insert(0, "src")

from repro.analysis.invariants import check_controller
from repro.cluster import WritePolicy
from repro.harness.runner import run_commit_latency_bench

POLICIES = (WritePolicy.AGGRESSIVE, WritePolicy.CONSERVATIVE)
#: Fixed one-way fabric latency for every run; well under the RPC
#: timeout so no run pays a retransmission.
LATENCY_S = 0.003


def run_pair(replicas, policy, transactions_per_client=50):
    """One (sequential, parallel) result pair, identical otherwise."""
    results = {}
    for parallel in (False, True):
        results[parallel] = run_commit_latency_bench(
            replicas=replicas, write_policy=policy,
            parallel_commit=parallel, latency_s=LATENCY_S,
            transactions_per_client=transactions_per_client)
    return results[False], results[True]


def sweep(replication_factors=(2, 3, 5), transactions_per_client=50):
    """{rf: {policy: row}} with per-phase p50/p95 and speedups."""
    table = {}
    for replicas in replication_factors:
        per_policy = {}
        for policy in POLICIES:
            seq, par = run_pair(replicas, policy,
                                transactions_per_client)
            for result in (seq, par):
                assert not check_controller(result.controller), \
                    "invariant violation in bench run"
                assert result.committed > 0
            row = {"committed": par.committed}
            for label, result in (("sequential", seq), ("parallel", par)):
                for phase in ("prepare", "commit", "txn"):
                    stats = result.latencies.get(phase, {})
                    row[f"{label}_{phase}_p50"] = stats.get("p50", 0.0)
                    row[f"{label}_{phase}_p95"] = stats.get("p95", 0.0)
            for phase in ("prepare", "commit"):
                seq_p50 = row[f"sequential_{phase}_p50"]
                par_p50 = row[f"parallel_{phase}_p50"]
                row[f"{phase}_speedup"] = (
                    round(seq_p50 / par_p50, 2) if par_p50 else 0.0)
            commit_path = (seq.commit_path_p50, par.commit_path_p50)
            row["commit_path_speedup"] = (
                round(commit_path[0] / commit_path[1], 2)
                if commit_path[1] else 0.0)
            per_policy[policy.value] = row
        table[replicas] = per_policy
    return table


def format_sweep(table):
    lines = [f"{'rf':>2}  {'policy':<12}  {'seq 2pc p50':>11}  "
             f"{'par 2pc p50':>11}  {'speedup':>7}"]
    for replicas, per_policy in sorted(table.items()):
        for policy, row in sorted(per_policy.items()):
            seq = (row["sequential_prepare_p50"]
                   + row["sequential_commit_p50"])
            par = row["parallel_prepare_p50"] + row["parallel_commit_p50"]
            lines.append(f"{replicas:>2}  {policy:<12}  {seq:>11.4f}  "
                         f"{par:>11.4f}  "
                         f"{row['commit_path_speedup']:>6.2f}x")
    return "\n".join(lines)


# -- pytest-benchmark wrappers ------------------------------------------------


@pytest.mark.benchmark(group="cluster-txn")
@pytest.mark.parametrize("parallel", [True, False],
                         ids=["parallel", "sequential"])
def test_bench_commit_path(benchmark, parallel):
    result = benchmark(run_commit_latency_bench, replicas=3,
                       parallel_commit=parallel,
                       transactions_per_client=20)
    assert result.committed > 0


# -- plain mode ---------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="Cluster 2PC fan-out benchmark (plain mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="replication factor 3 only, fewer "
                             "transactions (CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    factors = (3,) if args.smoke else (2, 3, 5)
    per_client = 20 if args.smoke else 50
    table = sweep(replication_factors=factors,
                  transactions_per_client=per_client)

    for replicas, per_policy in table.items():
        for policy, row in per_policy.items():
            if replicas >= 3:
                assert row["commit_path_speedup"] >= 2.0, (
                    f"rf={replicas} {policy}: commit-path speedup "
                    f"{row['commit_path_speedup']} < 2x")

    payload = {
        "benchmark": "cluster_txn",
        "unit": "seconds",
        "fabric_latency_s": LATENCY_S,
        "smoke": bool(args.smoke),
        "configurations": {
            str(replicas): per_policy
            for replicas, per_policy in table.items()
        },
    }
    out = args.out or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_cluster_txn.json"))
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_sweep(table))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
