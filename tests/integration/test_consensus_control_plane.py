"""Integration tests: the consensus control plane driving the cluster.

With ``ClusterConfig.consensus_enabled`` the controller's 2PC commit
decisions, metadata mutations, and take-over processing all flow through
the multi-Paxos group; these tests check the binding end to end — and
that with the flag off (the default) nothing consensus-shaped runs.
"""

from repro.cluster.consensus import takeover_cleanup
from repro.cluster.network import NetworkConfig
from repro.errors import NotLeaderError, PlatformError
from repro.workloads.microbench import KeyValueWorkload, KvStats
from tests.conftest import assert_no_violations, make_kv_cluster


def make_consensus_cluster(sim, seed=2, **kwargs):
    return make_kv_cluster(
        sim, machines=3, replicas=2, consensus_enabled=True,
        trace_capacity=65536,
        network=NetworkConfig(enabled=True, latency_s=0.002,
                              jitter_s=0.001, seed=seed),
        **kwargs)


class TestConsensusCommitPath:
    def test_commit_decision_replicates_to_every_controller_replica(self, sim):
        controller = make_consensus_cluster(sim)
        done = {}

        def client():
            yield sim.timeout(1.0)  # let the bootstrap election settle
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 7 WHERE k = 7")
            yield conn.commit()
            done["committed"] = True

        proc = sim.process(client())
        sim.run(until=6.0)
        assert proc.ok and done.get("committed")

        group = controller.consensus.group
        # The decision and its clear both reached every replica's log.
        for node in group.nodes.values():
            kinds = [cmd[0] for cmd in node.chosen.values()]
            assert "decision" in kinds
            assert "decision_clear" in kinds
            assert node.state.decisions == {}
        applies = controller.trace.events(kind="ctl_applied")
        decided_on = {e.machine for e in applies
                      if e.extra["command"] == "decision"}
        assert decided_on == set(group.names)
        # The data-plane decision event carries the consensus term.
        logged = controller.trace.events(kind="decision_logged")
        assert logged and all(e.extra.get("mirrored") for e in logged)
        assert all(e.extra["term"] >= 1 for e in logged)
        assert_no_violations(controller)

    def test_leader_kill_fails_over_and_cleans_up(self, sim):
        controller = make_consensus_cluster(sim, seed=5)
        plane = controller.consensus
        workload = KeyValueWorkload(controller, keys=20, seed=5)
        stats = KvStats()
        proc = sim.process(workload.reconnecting_client(
            0, until=18.0, think_time_s=0.05, stats=stats))
        proc.defused = True

        def killer():
            yield sim.timeout(4.0)
            plane.crash_controller(plane.acting)

        sim.process(killer())
        sim.run(until=30.0)

        assert plane.kills and plane.kills[0][1] == f"{controller.name}-ctl0"
        new_leader = plane.group.leader()
        assert new_leader is not None
        assert new_leader.name != plane.kills[0][1]
        assert plane.acting == new_leader.name
        takeovers = controller.trace.events(kind="ctl_takeover")
        assert takeovers and takeovers[0].machine == new_leader.name
        # Clients rode through the failover and kept committing.
        assert stats.reconnects >= 1
        committed_after = [e for e in controller.trace.events(kind="committed")
                          if e.t > plane.kills[0][0]]
        assert committed_after, "no commits after the leader kill"
        assert stats.committed > 0
        assert_no_violations(controller)

    def test_deposed_acting_replica_redirects_clients(self, sim):
        controller = make_consensus_cluster(sim)
        sim.run(until=1.0)
        plane = controller.consensus
        plane.crash_controller(plane.acting)
        # Before a new leader is elected the contacted replica must
        # refuse with a redirect, not silently serve.
        try:
            controller.connect("kv")
        except NotLeaderError as exc:
            assert exc.leader is not None
        except PlatformError:
            pass  # primary-down path is an acceptable refusal too
        else:
            raise AssertionError("connect served without a leader")

    def test_partitioned_leader_lease_lapses_and_fences_it(self, sim):
        controller = make_consensus_cluster(sim, seed=7)
        sim.run(until=1.0)
        plane = controller.consensus
        old = plane.acting
        old_node = plane.group.nodes[old]
        others = [n for n in plane.group.names if n != old]
        assert plane.lease_valid()
        for name in others:
            controller.fabric.cut(old, name)
        # Strictly longer than lease_duration_s: the isolated leader's
        # own lease view expires on its own clock, no message required.
        sim.run(until=1.0 + plane.config.lease_duration_s + 0.5)
        assert sim.now >= old_node.own_lease_until
        sim.run(until=15.0)
        # A new leader rose among the connected majority and the acting
        # role moved with it.
        assert plane.group.last_leader in others
        assert plane.acting == plane.group.last_leader
        assert plane.lease_valid()
        for name in others:
            controller.fabric.heal(old, name)
        sim.run(until=25.0)
        # The old leader saw the higher ballot, stepped down, caught up.
        new_node = plane.group.nodes[plane.group.last_leader]
        assert not old_node.is_leader
        assert old_node.applied_to == new_node.applied_to
        assert_no_violations(controller)


class TestTakeoverClearsDrainGauge:
    """An orphaned coordinator must not wedge the delta-handoff drain.

    A controller kill mid-transaction leaves the coordinator generator
    dead before ``_finish`` runs, so its transaction would stay in the
    open-writer gauge forever — and any later delta re-replication of
    that database would drain against it until the end of time (the
    seed-9 controller soak hit exactly this). The take-over settles
    every in-flight transaction; it must purge them from the gauge too.
    """

    def _orphan_writer(self, sim, controller, holder):
        def orphan():
            yield sim.timeout(1.0)  # let the bootstrap election settle
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 3 WHERE k = 3")
            holder["txn"] = conn.txn.txn_id
            # Die here, like a coordinator whose controller was killed:
            # no commit, no rollback, no close.

        sim.process(orphan())
        sim.run(until=3.0)
        assert controller.open_writers("kv") == 1

    def test_undecided_orphan_is_aborted_and_leaves_the_gauge(self, sim):
        controller = make_consensus_cluster(sim)
        holder = {}
        self._orphan_writer(sim, controller, holder)

        committed, aborted = takeover_cleanup(controller, {}, actor="test")

        assert holder["txn"] in aborted
        assert controller.open_writers("kv") == 0

    def test_decided_orphan_on_dead_participant_leaves_the_gauge(self, sim):
        # The seed-9 wedge: the decision is replicated but the only
        # participant still holding the branch is permanently dead, so
        # Phase 1 cannot deliver the COMMIT anywhere — the gauge entry
        # must still be resolved.
        controller = make_consensus_cluster(sim)
        holder = {}
        self._orphan_writer(sim, controller, holder)
        txn_id = holder["txn"]
        for machine in controller.machines.values():
            machine.engine.transactions.pop(txn_id, None)

        decisions = {txn_id: ("commit", ["no-such-machine"])}
        committed, _aborted = takeover_cleanup(controller, decisions,
                                               actor="test")

        assert txn_id in committed
        assert controller.open_writers("kv") == 0


class TestConsensusDisabled:
    def test_default_config_runs_no_consensus(self, sim):
        controller = make_kv_cluster(sim)
        assert controller.consensus is None
        done = {}

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = 1")
            yield conn.commit()
            done["ok"] = True

        sim.process(client())
        sim.run()
        assert done.get("ok")
        assert [e for e in controller.trace.events()
                if e.kind.startswith("ctl_")] == []
        logged = controller.trace.events(kind="decision_logged")
        assert logged and "term" not in logged[0].extra
        assert_no_violations(controller, strict=True)


class TestControllerSoakSmoke:
    def test_consensus_soak_audits_clean(self):
        from repro.analysis.invariants import check_controller
        from repro.harness.runner import run_controller_soak

        result = run_controller_soak(consensus=True, duration_s=15.0,
                                     drain_s=10.0, ctl_kill_mtbf_s=5.0,
                                     seed=11)
        assert result.consensus
        assert result.committed > 0
        assert result.kills, "soak never killed a controller replica"
        assert result.elections >= 1
        violations = check_controller(result.controller,
                                      expect_recovery_complete=True)
        assert not violations, "\n".join(str(v) for v in violations)

    def test_pair_soak_stages_one_takeover(self):
        from repro.analysis.invariants import check_controller
        from repro.harness.runner import run_controller_soak

        result = run_controller_soak(consensus=False, duration_s=12.0,
                                     drain_s=8.0, seed=11)
        assert not result.consensus
        assert result.committed > 0
        assert result.takeovers == 1
        violations = check_controller(result.controller,
                                      expect_recovery_complete=True)
        assert not violations, "\n".join(str(v) for v in violations)
