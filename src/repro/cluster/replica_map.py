"""The cluster controller's map of databases to machines.

Each database maps to an *ordered* list of machine names; the first live
entry acts as the designated primary for read Option 1. The map is the
authority on which machines writes fan out to and which machine serves a
read.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import NoReplicaError


class ReplicaMap:
    """Ordered replica placement for every hosted database."""

    def __init__(self):
        self._replicas: Dict[str, List[str]] = {}

    def databases(self) -> List[str]:
        return list(self._replicas)

    def add_database(self, db: str, machines: List[str]) -> None:
        if db in self._replicas:
            raise ValueError(f"database {db!r} already placed")
        if len(set(machines)) != len(machines):
            raise ValueError(f"duplicate machines in placement: {machines}")
        self._replicas[db] = list(machines)

    def drop_database(self, db: str) -> None:
        self._replicas.pop(db, None)

    def replicas(self, db: str) -> List[str]:
        """Ordered replica list (may include failed machines)."""
        if db not in self._replicas:
            raise NoReplicaError(f"database {db!r} is not hosted here")
        return list(self._replicas[db])

    def add_replica(self, db: str, machine: str) -> None:
        replicas = self._replicas.get(db)
        if replicas is None:
            raise NoReplicaError(f"database {db!r} is not hosted here")
        if machine not in replicas:
            replicas.append(machine)

    def remove_machine(self, machine: str) -> List[str]:
        """Remove a failed machine everywhere; returns affected databases."""
        affected = []
        for db, replicas in self._replicas.items():
            if machine in replicas:
                replicas.remove(machine)
                affected.append(db)
        return affected

    def hosted_on(self, machine: str) -> List[str]:
        return [db for db, reps in self._replicas.items() if machine in reps]

    def replica_count(self, db: str) -> int:
        return len(self._replicas.get(db, ()))
