"""Differential property tests: compiled executor vs the interpreter.

Two engines are loaded with identical data — one with
``compile_plans=True`` (closure-compiled executor), one with
``compile_plans=False`` (the tree-walking interpreter, kept as the
reference implementation). Every generated statement must produce
identical rows, rowcounts, CostReport counters, and lock footprints on
both; DML must leave identical table contents behind. Any divergence is
a compiler bug by definition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig

values = st.integers(min_value=-20, max_value=20)
# k: primary key; v: nullable, unindexed (NULL keys are not supported
# by the secondary-index B+Tree); w: non-null, carries a secondary
# index so IndexEqScan/IndexRangeScan paths are exercised; s: strings
# for LIKE.
rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60),
              st.one_of(st.none(), values),
              st.integers(min_value=-10, max_value=10),
              st.sampled_from(["alpha", "beta", "gamma", "ab%c", ""])),
    max_size=30,
    unique_by=lambda r: r[0],
)

# -- random statement construction -------------------------------------------

select_lists = st.sampled_from([
    "k", "v", "s", "k, v", "v, s, k", "k + v", "v * 2 - k", "-v",
    "k, v, w, s", "w, k",
])
predicates = st.sampled_from([
    None,
    "k = ?",
    "v = ?",
    "v <> ?",
    "k >= ? AND k < ?",
    "v > ? OR v IS NULL",
    "NOT (v <= ?)",
    "v BETWEEN ? AND ?",
    "v NOT BETWEEN ? AND ?",
    "k IN (?, ?, 3)",
    "v IN (?, NULL)",
    "w = ?",
    "w >= ? AND w <= ?",
    "s LIKE 'a%'",
    "s LIKE '%a_c%'",
    "v IS NOT NULL",
    "v / ? > 1",
    "k * 0 = ?",
])
order_bys = st.sampled_from([
    "", " ORDER BY k", " ORDER BY v, k", " ORDER BY v DESC, k",
    " ORDER BY s DESC, k",
])
limits = st.sampled_from(["", " LIMIT 5", " LIMIT 3 OFFSET 2"])
aggregate_queries = st.sampled_from([
    "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
    "SELECT COUNT(v), COUNT(DISTINCT v) FROM t",
    "SELECT w, COUNT(*) FROM t GROUP BY w ORDER BY w",
    "SELECT w, SUM(k) FROM t GROUP BY w HAVING COUNT(*) > 1 ORDER BY w",
    "SELECT DISTINCT v FROM t ORDER BY v",
    "SELECT s, MIN(k), MAX(k) FROM t GROUP BY s ORDER BY s",
])


def _param_count(sql):
    return sql.count("?")


def build_pair(rows):
    engines = []
    for compiled in (True, False):
        engine = Engine(config=EngineConfig(compile_plans=compiled))
        engine.create_database("db")
        txn = engine.begin()
        engine.execute_sync(
            txn, "db",
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, "
            "w INTEGER, s VARCHAR(10))")
        engine.execute_sync(txn, "db", "CREATE INDEX t_w ON t (w)")
        for row in rows:
            engine.execute_sync(txn, "db",
                                "INSERT INTO t VALUES (?, ?, ?, ?)", row)
        engine.commit(txn)
        engines.append(engine)
    return engines


def run_both(engines, sql, params=()):
    """Run one statement on both engines; assert identical observables.

    Lock footprints are compared *before* commit — strict 2PL means the
    full set acquired by the statement is still held there.
    """
    outcomes = []
    for engine in engines:
        txn = engine.begin()
        try:
            result = engine.execute_sync(txn, "db", sql, params)
            error = None
            held = dict(engine.locks.held(txn.txn_id))
            engine.commit(txn)
        except Exception as exc:  # noqa: BLE001 - compared across engines
            error = (type(exc).__name__, str(exc))
            result = None
            held = None
            engine.abort(txn)
        outcomes.append((result, held, error))
    (res_c, held_c, err_c), (res_i, held_i, err_i) = outcomes
    assert err_c == err_i, f"{sql}: errors diverge: {err_c} vs {err_i}"
    assert held_c == held_i, f"{sql}: lock footprints diverge"
    if err_c is not None:
        return None
    assert res_c.columns == res_i.columns, f"{sql}: columns diverge"
    assert res_c.rows == res_i.rows, f"{sql}: rows diverge"
    assert res_c.rowcount == res_i.rowcount, f"{sql}: rowcount diverges"
    assert res_c.cost == res_i.cost, (
        f"{sql}: cost reports diverge: {res_c.cost} vs {res_i.cost}")
    return res_c


def assert_same_table_state(engines):
    snapshots = [run_both(engines, "SELECT k, v, w, s FROM t ORDER BY k")]
    assert snapshots[0] is not None


@settings(max_examples=60, deadline=None)
@given(rows_strategy, select_lists, predicates, order_bys, limits,
       st.lists(values, min_size=4, max_size=4))
def test_select_differential(rows, select_list, predicate, order_by, limit,
                             raw_params):
    engines = build_pair(rows)
    where = f" WHERE {predicate}" if predicate else ""
    sql = f"SELECT {select_list} FROM t{where}{order_by}{limit}"
    params = tuple(raw_params[:_param_count(sql)])
    run_both(engines, sql, params)


@settings(max_examples=40, deadline=None)
@given(rows_strategy, aggregate_queries)
def test_aggregate_differential(rows, sql):
    engines = build_pair(rows)
    run_both(engines, sql)


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.sampled_from([
    "SELECT k, v FROM t WHERE k = ? FOR UPDATE",
    "SELECT k FROM t WHERE w = ? FOR UPDATE",
    "SELECT k FROM t WHERE k >= ? FOR UPDATE",
]), values)
def test_for_update_lock_parity(rows, sql, probe):
    engines = build_pair(rows)
    run_both(engines, sql, (probe,))


@settings(max_examples=50, deadline=None)
@given(rows_strategy, st.sampled_from([
    ("UPDATE t SET v = ? WHERE k = ?", 2),
    ("UPDATE t SET v = v + 1 WHERE v < ?", 1),
    ("UPDATE t SET w = 9 WHERE w = ?", 1),
    ("DELETE FROM t WHERE k = ?", 1),
    ("DELETE FROM t WHERE v BETWEEN ? AND ?", 2),
    ("INSERT INTO t VALUES (?, ?, 0, 'new')", 2),
]), st.lists(values, min_size=2, max_size=2))
def test_dml_differential(rows, stmt, raw_params):
    sql, arity = stmt
    engines = build_pair(rows)
    params = tuple(raw_params[:arity])
    if sql.startswith("INSERT"):
        # Keep the PK outside the generated-row key range so both
        # engines succeed or both collide identically (they do either
        # way — this just exercises the success path more often).
        params = (100 + params[0], params[1])
    run_both(engines, sql, params)
    assert_same_table_state(engines)


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.lists(st.sampled_from([
    ("UPDATE t SET v = 0 WHERE k > ?", 1),
    ("DELETE FROM t WHERE w = ?", 1),
    ("SELECT COUNT(*) FROM t WHERE v >= ?", 1),
    ("SELECT k FROM t WHERE w = ? ORDER BY k", 1),
]), min_size=1, max_size=4), st.lists(values, min_size=4, max_size=4))
def test_statement_sequence_differential(rows, stmts, raw_params):
    """Multi-statement transactions stay in lockstep on both engines."""
    engines = build_pair(rows)
    txns = [engine.begin() for engine in engines]
    for i, (sql, arity) in enumerate(stmts):
        params = tuple(raw_params[i:i + arity])
        results = [engine.execute_sync(txn, "db", sql, params)
                   for engine, txn in zip(engines, txns)]
        assert results[0].rows == results[1].rows
        assert results[0].rowcount == results[1].rowcount
        assert results[0].cost == results[1].cost
    helds = [dict(engine.locks.held(txn.txn_id))
             for engine, txn in zip(engines, txns)]
    assert helds[0] == helds[1]
    for engine, txn in zip(engines, txns):
        engine.commit(txn)
    assert_same_table_state(engines)


@settings(max_examples=25, deadline=None)
@given(rows_strategy)
def test_join_differential(rows):
    engines = build_pair(rows)
    for engine in engines:
        txn = engine.begin()
        engine.execute_sync(txn, "db",
                            "CREATE TABLE u (w INTEGER PRIMARY KEY, "
                            "label VARCHAR(10))")
        for w in range(-10, 11, 4):
            engine.execute_sync(txn, "db", "INSERT INTO u VALUES (?, ?)",
                                (w, f"l{w}"))
        engine.commit(txn)
    run_both(engines,
             "SELECT t.k, u.label FROM t JOIN u ON t.w = u.w ORDER BY t.k")
    run_both(engines,
             "SELECT t.k, u.w FROM t, u "
             "WHERE t.w = u.w AND u.w > ? ORDER BY t.k", (0,))
