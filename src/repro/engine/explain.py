"""EXPLAIN: render a physical plan as an indented operator tree.

Not part of the paper, but indispensable when studying which access
paths the TPC-W interactions take (and therefore which locks they
acquire — the input to the deadlock experiments).

Usage::

    from repro.engine.explain import explain
    print(explain(engine.plan("shop", "SELECT ... WHERE i_id = ?")))
"""

from __future__ import annotations

from typing import List

from repro.engine import planner as p
from repro.engine.sqlparse import nodes as n


def _expr(expr) -> str:
    if isinstance(expr, p.Slot):
        return expr.name or f"${expr.index}"
    if isinstance(expr, p.AggSlot):
        return expr.name or f"agg${expr.index}"
    if isinstance(expr, n.Literal):
        return repr(expr.value)
    if isinstance(expr, n.Param):
        return f"?{expr.index}"
    if isinstance(expr, n.BinaryOp):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, n.UnaryOp):
        op = "-" if expr.op == "NEG" else "NOT "
        return f"{op}{_expr(expr.operand)}"
    if isinstance(expr, n.InList):
        inner = ", ".join(_expr(i) for i in expr.items)
        neg = "NOT " if expr.negated else ""
        return f"{_expr(expr.expr)} {neg}IN ({inner})"
    if isinstance(expr, n.Between):
        neg = "NOT " if expr.negated else ""
        return (f"{_expr(expr.expr)} {neg}BETWEEN {_expr(expr.low)} "
                f"AND {_expr(expr.high)}")
    if isinstance(expr, n.IsNull):
        neg = "NOT " if expr.negated else ""
        return f"{_expr(expr.expr)} IS {neg}NULL"
    if isinstance(expr, n.FuncCall):
        arg = "*" if expr.star else _expr(expr.arg)
        return f"{expr.name}({arg})"
    return repr(expr)


def _describe(plan) -> str:
    if isinstance(plan, p.SeqScan):
        lock = "X" if plan.lock_exclusive else "S"
        return f"SeqScan {plan.binding.table} [table {lock} lock]"
    if isinstance(plan, p.IndexEqScan):
        keys = ", ".join(_expr(e) for e in plan.key_exprs)
        lock = "X" if plan.lock_exclusive else "S"
        return (f"IndexEqScan {plan.binding.table}.{plan.index.name}"
                f"({keys}) [row {lock} locks]")
    if isinstance(plan, p.IndexRangeScan):
        lo = _expr(plan.lo) if plan.lo is not None else "-inf"
        hi = _expr(plan.hi) if plan.hi is not None else "+inf"
        lo_b = "[" if plan.lo_inclusive else "("
        hi_b = "]" if plan.hi_inclusive else ")"
        lock = "X" if plan.lock_exclusive else "S"
        return (f"IndexRangeScan {plan.binding.table}.{plan.index.name} "
                f"{lo_b}{lo}, {hi}{hi_b} [row {lock} locks]")
    if isinstance(plan, p.Filter):
        return f"Filter {_expr(plan.predicate)}"
    if isinstance(plan, p.IndexLookupJoin):
        return "IndexLookupJoin"
    if isinstance(plan, p.HashJoin):
        keys = " AND ".join(
            f"{_expr(o)} = {_expr(i)}"
            for o, i in zip(plan.outer_keys, plan.inner_keys))
        return f"HashJoin on {keys}"
    if isinstance(plan, p.CrossJoin):
        return "CrossJoin"
    if isinstance(plan, p.Project):
        cols = ", ".join(plan.names)
        return f"Project [{cols}]"
    if isinstance(plan, p.Aggregate):
        groups = ", ".join(_expr(g) for g in plan.group_exprs) or "()"
        aggs = ", ".join(f"{a.func}({'*' if a.star else _expr(a.arg)})"
                         for a in plan.aggs)
        return f"Aggregate group by {groups} compute [{aggs}]"
    if isinstance(plan, p.Sort):
        keys = ", ".join(
            f"{_expr(e)} {'DESC' if d else 'ASC'}" for e, d in plan.keys)
        return f"Sort by {keys}"
    if isinstance(plan, p.Limit):
        return f"Limit {plan.limit} offset {plan.offset}"
    if isinstance(plan, p.Distinct):
        return "Distinct"
    if isinstance(plan, p.InsertPlan):
        return f"Insert into {plan.table.name} ({len(plan.rows)} rows)"
    if isinstance(plan, p.UpdatePlan):
        cols = ", ".join(
            plan.binding.schema.columns[pos].name
            for pos, _ in plan.assignments)
        return f"Update {plan.binding.table} set [{cols}]"
    if isinstance(plan, p.DeletePlan):
        return f"Delete from {plan.binding.table}"
    return type(plan).__name__


def _children(plan) -> List:
    if isinstance(plan, (p.Filter, p.Project, p.Aggregate, p.Sort,
                         p.Limit, p.Distinct)):
        return [plan.child]
    if isinstance(plan, (p.IndexLookupJoin, p.HashJoin, p.CrossJoin)):
        return [plan.outer, plan.inner]
    if isinstance(plan, (p.UpdatePlan, p.DeletePlan)):
        return [plan.source]
    if isinstance(plan, p.SelectPlan):
        return [plan.root]
    return []


def _estimate_suffix(node) -> str:
    """Cost-based annotations, when the optimizer stamped this node."""
    est = getattr(node, "est_rows", None)
    cost = getattr(node, "est_cost", None)
    if est is None or cost is None:
        return ""
    return f"  (~{est:.0f} rows, cost {cost:.1f})"


def explain(plan, verbose: bool = False) -> str:
    """Render a plan (or SelectPlan/DML plan) as an indented tree.

    Nodes the cost-based optimizer estimated carry a ``(~N rows,
    cost C)`` suffix. With ``verbose``, plans the optimizer considered
    and rejected (alternative access paths, join orders, join
    algorithms) are listed after the tree.
    """
    rejected: List[str] = []
    if isinstance(plan, p.SelectPlan):
        rejected = plan.rejected
        plan = plan.root
    lines: List[str] = []

    def walk(node, depth):
        lines.append("  " * depth + "-> " + _describe(node)
                     + _estimate_suffix(node))
        for child in _children(node):
            walk(child, depth + 1)

    walk(plan, 0)
    if verbose and rejected:
        lines.append("rejected plans:")
        for note in rejected:
            lines.append("  " + note)
    return "\n".join(lines)


def explain_statement(engine, db_name: str, sql: str,
                      verbose: bool = False) -> str:
    """Explain a statement as the engine would run it.

    Renders the plan tree plus an execution-mode line: ``compiled`` when
    the engine will run a closure-compiled executor for this statement
    (see :mod:`repro.engine.compile`), ``interpreted`` when it will
    tree-walk the plan (``EngineConfig.compile_plans`` off, or a
    statement kind with no compiled form).
    """
    plan = engine.plan(db_name, sql)
    mode = "compiled" if engine.compiled(db_name, sql) is not None \
        else "interpreted"
    return explain(plan, verbose=verbose) + f"\n[execution: {mode}]"
