"""Cluster-controller fault tolerance: the process pair (Section 2).

The cluster controller "is configured to run as a process pair in two
machines... the backup keeps track of the primary cluster controller's
state with respect to committing transactions and cleans up the
transactions in transit as part of its take-over processing."

:class:`ProcessPairBackup` mirrors exactly that state: the primary logs a
commit *decision* to the backup after every successful PREPARE round and
before any COMMIT message leaves. On primary failure, the backup's
take-over:

* completes every decided-commit transaction on its participant engines
  (they are PREPARED and hold their write locks, so this is always
  possible);
* presumed-aborts every other open transaction — their clients lost the
  connection and must re-establish it, per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.controller import ClusterController
from repro.engine.transactions import TxnState


@dataclass
class _Decision:
    decision: str
    machines: List[str]


class ProcessPairBackup:
    """The standby half of the cluster-controller process pair."""

    def __init__(self, controller: ClusterController):
        self.controller = controller
        self.decisions: Dict[int, _Decision] = {}
        self.took_over = False
        self.completed_on_takeover: List[int] = []
        self.aborted_on_takeover: List[int] = []
        controller.backup = self

    # -- mirroring (called by the primary) ---------------------------------------

    def log_decision(self, txn_id: int, decision: str,
                     machines: List[str]) -> None:
        self.decisions[txn_id] = _Decision(decision, list(machines))

    def clear_decision(self, txn_id: int) -> None:
        self.decisions.pop(txn_id, None)

    # -- take-over -----------------------------------------------------------------

    def take_over(self) -> Tuple[List[int], List[int]]:
        """Simulate the primary crashing and the backup taking over.

        Returns (committed transaction ids, aborted transaction ids).
        Connection-level state is gone: any open :class:`Connection`
        objects raise on further use and clients must reconnect.
        """
        self.took_over = True
        trace = self.controller.trace
        trace.emit("takeover",
                   decided=sorted(txn_id for txn_id, d in
                                  self.decisions.items()
                                  if d.decision == "commit"))
        # Phase 1: finish decided commits.
        for txn_id, decision in sorted(self.decisions.items()):
            if decision.decision != "commit":
                continue
            for machine_name in decision.machines:
                machine = self.controller.machines.get(machine_name)
                if machine is None or not machine.alive:
                    continue
                txn = machine.engine.transactions.get(txn_id)
                if txn is not None and not txn.finished:
                    machine.engine.commit(txn)
                machine.forget_txn(txn_id)
            self.completed_on_takeover.append(txn_id)
            trace.emit("takeover_commit", txn=txn_id)
        self.decisions.clear()

        # Phase 2: presumed abort for everything else in flight.
        decided = set(self.completed_on_takeover)
        for machine in self.controller.live_machines():
            for txn_id, txn in list(machine.engine.transactions.items()):
                if txn_id in decided or txn.finished:
                    continue
                machine.engine.abort(txn)
                machine.forget_txn(txn_id)
                if txn_id not in self.aborted_on_takeover:
                    self.aborted_on_takeover.append(txn_id)
                    trace.emit("takeover_abort", txn=txn_id)
        return (list(self.completed_on_takeover),
                list(self.aborted_on_takeover))
