"""Quickstart: the paper's two-call API in ~60 lines.

Creates a platform with two colos, creates a database with an SLA,
connects, and runs parameterized SQL transactions — the full stack
(system controller -> colo -> cluster -> replicated MiniSQL engines)
behind one facade.

Run:  python examples/quickstart.py
"""

from repro.platform import DataPlatform, DatabaseSpec
from repro.sla import Sla


def main():
    # Infrastructure: two colos with a pool of free machines each.
    platform = DataPlatform()
    platform.add_colo("us-west", free_machines=6, location=0.0)
    platform.add_colo("us-east", free_machines=6, location=30.0)

    # API call 1: create a database along with an associated SLA.
    platform.create_database(DatabaseSpec(
        name="guestbook",
        ddl=[
            "CREATE TABLE entries ("
            "  e_id INTEGER PRIMARY KEY,"
            "  author VARCHAR(30) NOT NULL,"
            "  message VARCHAR(200),"
            "  likes INTEGER)",
            "CREATE INDEX entries_author ON entries (author)",
        ],
        sla=Sla(min_throughput_tps=2.0, max_rejected_fraction=0.001),
        expected_size_mb=50.0,
        write_mix=0.3,
    ))

    # API call 2: connect and use it like any SQL database. Clients are
    # simulation processes; each statement/commit returns an event to
    # yield on (the simulated analogue of a blocking JDBC call).
    def client():
        conn = platform.connect("guestbook")
        for i, (author, message) in enumerate([
            ("ada", "first!"),
            ("grace", "hello from the platform"),
            ("ada", "nice weather in the simulator"),
        ]):
            yield conn.execute(
                "INSERT INTO entries VALUES (?, ?, ?, ?)",
                (i, author, message, 0))
        yield conn.commit()

        yield conn.execute(
            "UPDATE entries SET likes = likes + 1 WHERE author = ?",
            ("ada",))
        yield conn.commit()

        result = yield conn.execute(
            "SELECT author, COUNT(*) posts, SUM(likes) likes "
            "FROM entries GROUP BY author ORDER BY author")
        yield conn.commit()
        return result

    proc = platform.sim.process(client())
    platform.sim.run()

    result = proc.value
    print("guestbook contents (author, posts, likes):")
    for row in result.rows:
        print("  ", row)

    cluster = platform.primary_cluster("guestbook")
    print(f"\nreplicas: {cluster.replica_map.replicas('guestbook')}")
    print(f"committed transactions: {cluster.metrics.total_committed()}")
    print(f"standby colo replication lag: "
          f"{platform.system.replication_lag('guestbook')} txns")


if __name__ == "__main__":
    main()
