"""Microbenchmarks of the MiniSQL engine itself (wall-clock, not simulated).

These measure the Python engine's raw statement rates — useful when
tuning experiment scales, and a regression guard for the executor and
index paths that every simulated experiment leans on.

Two modes:

* ``pytest benchmarks/bench_engine_micro.py --benchmark-only`` — the
  pytest-benchmark suite (per-op statistics);
* ``python benchmarks/bench_engine_micro.py`` — plain mode: runs every
  group against a compiled-plans engine and an interpreter engine and
  writes ``BENCH_engine_micro.json`` (statements/sec per group, compiled
  vs interpreted) at the repository root, so the repo's perf trajectory
  is machine-readable. Rates are best-of-N to shrug off scheduler noise.
"""

import pytest

from repro.engine import Engine, EngineConfig


def make_engine(rows: int = 2000, config: EngineConfig = None):
    engine = Engine("micro", config=config)
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, "
                        "v INTEGER, s VARCHAR(20))")
    engine.execute_sync(txn, "db", "CREATE INDEX t_v ON t (v)")
    # Small dimension table for the join groups: t.v points into d.id,
    # d.grp fans d out 10 ways (selective via the d_grp index).
    engine.execute_sync(txn, "db",
                        "CREATE TABLE d (id INTEGER PRIMARY KEY, "
                        "grp INTEGER, label VARCHAR(20))")
    engine.execute_sync(txn, "db", "CREATE INDEX d_grp ON d (grp)")
    for k in range(rows):
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?, ?)",
                            (k, k % 50, f"s{k:06d}"))
    for i in range(100):
        engine.execute_sync(txn, "db", "INSERT INTO d VALUES (?, ?, ?)",
                            (i, i % 10, f"d{i:04d}"))
    engine.commit(txn)
    return engine


@pytest.fixture(scope="module")
def engine():
    return make_engine()


@pytest.mark.benchmark(group="engine-micro")
def test_point_select(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db", "SELECT v FROM t WHERE k = ?", (777,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rows == [(777 % 50,)]


@pytest.mark.benchmark(group="engine-micro")
def test_secondary_index_select(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db", "SELECT COUNT(*) FROM t WHERE v = ?", (7,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.scalar() == 40


@pytest.mark.benchmark(group="engine-micro")
def test_range_scan(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT k FROM t WHERE k >= ? AND k < ? ORDER BY k",
            (100, 200))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rowcount == 100


@pytest.mark.benchmark(group="engine-micro")
def test_update_commit_cycle(benchmark):
    engine = make_engine(500)
    counter = [0]

    def op():
        counter[0] += 1
        txn = engine.begin()
        engine.execute_sync(txn, "db",
                            "UPDATE t SET v = ? WHERE k = ?",
                            (counter[0] % 100, counter[0] % 500))
        engine.commit(txn)

    benchmark(op)


@pytest.mark.benchmark(group="engine-micro")
def test_aggregate_group_by(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v LIMIT 10")

    result = benchmark(op)
    engine.commit(txn)
    assert len(result.rows) == 10


@pytest.mark.benchmark(group="engine-micro")
def test_join_lookup(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT t.k, d.label FROM t, d WHERE d.id = t.v "
            "AND t.k >= ? AND t.k < ?", (100, 200))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rowcount == 100


@pytest.mark.benchmark(group="engine-micro")
def test_join_reorder(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT COUNT(*) FROM t, d WHERE t.v = d.id AND d.grp = ?",
            (3,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.scalar() == 200


@pytest.mark.benchmark(group="engine-micro")
def test_analytic_topn(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT k, v, s FROM t WHERE v >= ? ORDER BY s DESC LIMIT 10",
            (10,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rowcount == 10


@pytest.mark.benchmark(group="engine-micro")
def test_analytic_global_agg(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM t WHERE v < ?",
            (25,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rows[0][0] == 1000


# -- plain mode ---------------------------------------------------------------


def _plain_groups():
    """(name, inner-loop size, statement runner factory) per group.

    Each factory takes an engine and returns a zero-argument op running
    one statement; read-only groups share one long-lived transaction the
    way the pytest variants do.
    """

    def query(engine, sql, params=()):
        txn = engine.begin()

        def op():
            return engine.execute_sync(txn, "db", sql, params)

        return op

    def update_cycle(engine):
        counter = [0]

        def op():
            counter[0] += 1
            txn = engine.begin()
            engine.execute_sync(txn, "db", "UPDATE t SET v = ? WHERE k = ?",
                                (counter[0] % 100, counter[0] % 500))
            engine.commit(txn)

        return op

    return [
        ("point_select", 3000,
         lambda e: query(e, "SELECT v FROM t WHERE k = ?", (777,))),
        ("secondary_index_select", 1000,
         lambda e: query(e, "SELECT COUNT(*) FROM t WHERE v = ?", (7,))),
        ("range_scan", 400,
         lambda e: query(e, "SELECT k FROM t WHERE k >= ? AND k < ? "
                            "ORDER BY k", (100, 200))),
        ("update_commit_cycle", 1000, update_cycle),
        ("aggregate_group_by", 60,
         lambda e: query(e, "SELECT v, COUNT(*) FROM t "
                            "GROUP BY v ORDER BY v LIMIT 10")),
        ("join_lookup", 100,
         lambda e: query(e, "SELECT t.k, d.label FROM t, d "
                            "WHERE d.id = t.v AND t.k >= ? AND t.k < ?",
                        (100, 200))),
        ("join_reorder", 100,
         lambda e: query(e, "SELECT COUNT(*) FROM t, d "
                            "WHERE t.v = d.id AND d.grp = ?", (3,))),
        ("analytic_topn", 100,
         lambda e: query(e, "SELECT k, v, s FROM t WHERE v >= ? "
                            "ORDER BY s DESC LIMIT 10", (10,))),
        ("analytic_global_agg", 200,
         lambda e: query(e, "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) "
                            "FROM t WHERE v < ?", (25,))),
    ]


def run_plain(repeats: int = 5, smoke: bool = False):
    """Measure statements/sec per group, compiled vs interpreted.

    The two modes are interleaved repeat-by-repeat (not run back to
    back) so a CPU-frequency or scheduler shift mid-run skews both
    sides equally instead of poisoning the speedup ratio. ``smoke``
    shrinks tables and inner loops so CI can exercise every group in a
    few seconds (numbers are then functional coverage, not results).
    """
    import time

    rates = {}
    for name, inner, factory in _plain_groups():
        rows = 500 if name == "update_commit_cycle" else 2000
        if smoke:
            rows = min(rows, 300)
            inner = min(inner, 10)
        ops = {}
        for label, compiled in (("compiled", True), ("interpreted", False)):
            engine = make_engine(rows,
                                 config=EngineConfig(compile_plans=compiled))
            ops[label] = factory(engine)
            ops[label]()  # warm plan + compile caches
        best = {"compiled": 0.0, "interpreted": 0.0}
        for _ in range(repeats):
            for label, op in ops.items():
                start = time.perf_counter()
                for _ in range(inner):
                    op()
                elapsed = time.perf_counter() - start
                best[label] = max(best[label], inner / elapsed)
        rates[name] = {label: round(rate, 1)
                       for label, rate in best.items()}
        rates[name]["speedup"] = round(
            best["compiled"] / best["interpreted"], 2)
    return rates


def main(argv=None) -> int:
    import argparse
    import json
    import os
    import platform

    parser = argparse.ArgumentParser(
        description="MiniSQL engine microbenchmark (plain mode)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per group (best is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny tables and loops (CI functional pass)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    if args.smoke:
        rates = run_plain(repeats=1, smoke=True)
    else:
        rates = run_plain(repeats=args.repeats)
    payload = {
        "benchmark": "engine_micro",
        "unit": "statements_per_sec",
        "python": platform.python_version(),
        "groups": rates,
    }
    out = args.out or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_engine_micro.json"))
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    width = max(len(name) for name in rates)
    print(f"{'group':<{width}}  {'compiled':>12}  {'interpreted':>12}  "
          f"{'speedup':>7}")
    for name, group in rates.items():
        print(f"{name:<{width}}  {group['compiled']:>12.1f}  "
              f"{group['interpreted']:>12.1f}  {group['speedup']:>6.2f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
