"""SQL front end: lexer, AST, and recursive-descent parser.

The dialect is the slice of SQL-92 that TPC-W and the paper's experiments
need: SELECT with inner joins (comma or JOIN..ON), WHERE, GROUP BY,
ORDER BY, LIMIT/OFFSET, DISTINCT, aggregates, and parameterized
INSERT/UPDATE/DELETE plus CREATE TABLE/INDEX.
"""

from repro.engine.sqlparse.lexer import Token, TokenType, tokenize
from repro.engine.sqlparse.parser import parse, parse_expression

__all__ = ["Token", "TokenType", "tokenize", "parse", "parse_expression"]
