"""Property tests for the non-locking consistent-read mode.

Reads no longer participate in 2PL, so full one-copy serializability is
out (by design, as in read-committed MySQL); what must still hold:

* the *write* history stays serializable (writes still lock);
* replicas still converge to identical states;
* readers never observe a value that was never committed
  (no dirty reads).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (ClusterConfig, ClusterController, ReadOption,
                           WritePolicy)
from repro.cluster.controller import TransactionAborted
from repro.sim import Simulator
from repro.sim.rng import SeededRNG


def run_workload(seed: int, clients: int, keys: int):
    sim = Simulator()
    config = ClusterConfig(read_option=ReadOption.OPTION_1,
                           write_policy=WritePolicy.CONSERVATIVE,
                           lock_wait_timeout_s=0.5)
    config.machine.engine.nonlocking_reads = True
    controller = ClusterController(sim, config)
    controller.add_machines(3)
    controller.create_database(
        "db", ["CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"],
        replicas=2)
    # Every committed write sets v to a unique positive stamp, so any
    # read of a value outside the committed set is a dirty read.
    controller.bulk_load("db", "kv", [(k, 0) for k in range(keys)])
    committed_stamps = {0}
    observed = []
    stamp_counter = [0]

    def client(cid):
        rng = SeededRNG(seed).fork(f"c{cid}")
        conn = controller.connect("db")
        for _ in range(6):
            try:
                if rng.random() < 0.5:
                    result = yield conn.execute(
                        "SELECT v FROM kv WHERE k = ?",
                        (rng.randint(0, keys - 1),))
                    if result.rows:
                        observed.append(result.scalar())
                stamp_counter[0] += 1
                stamp = stamp_counter[0]
                yield conn.execute("UPDATE kv SET v = ? WHERE k = ?",
                                   (stamp, rng.randint(0, keys - 1)))
                yield conn.commit()
                committed_stamps.add(stamp)
            except TransactionAborted:
                pass
            yield sim.timeout(rng.uniform(0, 0.002))

    for cid in range(clients):
        sim.process(client(cid))
    sim.run()
    return controller, committed_stamps, observed


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       clients=st.integers(min_value=2, max_value=5),
       keys=st.integers(min_value=2, max_value=5))
def test_replicas_converge_and_no_dirty_reads(seed, clients, keys):
    controller, committed_stamps, observed = run_workload(seed, clients,
                                                          keys)
    # Replica convergence.
    replicas = controller.replica_map.replicas("db")
    states = []
    for name in replicas:
        engine = controller.machines[name].engine
        txn = engine.begin()
        states.append(engine.execute_sync(
            txn, "db", "SELECT k, v FROM kv ORDER BY k").rows)
        engine.commit(txn)
    assert states[0] == states[1], f"divergence at seed {seed}"
    # No dirty reads: every observed stamp was committed at some point.
    # (A racing commit can land between the read and our bookkeeping, so
    # check against the final committed set, which contains every stamp
    # whose transaction ever committed.)
    for value in observed:
        assert value in committed_stamps, (
            f"dirty read: observed {value} which never committed "
            f"(seed {seed})")
