"""Cluster-controller fault tolerance: the process pair (Section 2).

The cluster controller "is configured to run as a process pair in two
machines... the backup keeps track of the primary cluster controller's
state with respect to committing transactions and cleans up the
transactions in transit as part of its take-over processing."

:class:`ProcessPairBackup` mirrors exactly that state: the primary logs a
commit *decision* to the backup after every successful PREPARE round and
before any COMMIT message leaves. On primary failure, the backup's
take-over:

* completes every decided-commit transaction on its participant engines
  (they are PREPARED and hold their write locks, so this is always
  possible);
* presumed-aborts every other open transaction — their clients lost the
  connection and must re-establish it, per the paper.

Take-over can be invoked two ways: directly (the oracle path older
experiments use), or *detected* — :meth:`start_monitor` heartbeats the
primary over the network fabric and runs take-over itself once the
primary has been silent for a configurable number of intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.cluster.consensus import takeover_cleanup
from repro.cluster.controller import ClusterController
from repro.cluster.network import BACKUP, CONTROLLER
from repro.sim import Process


@dataclass
class _Decision:
    decision: str
    machines: List[str]


class ProcessPairBackup:
    """The standby half of the cluster-controller process pair."""

    def __init__(self, controller: ClusterController):
        self.controller = controller
        self.sim = controller.sim
        self.decisions: Dict[int, _Decision] = {}
        self.took_over = False
        self.completed_on_takeover: List[int] = []
        self.aborted_on_takeover: List[int] = []
        self._monitor_proc: Optional[Process] = None
        controller.backup = self

    # -- primary failure detection -------------------------------------------------

    def start_monitor(self, interval_s: Optional[float] = None,
                      misses: int = 3) -> Process:
        """Heartbeat the primary; run take-over when it goes silent.

        The backup pings the primary over the fabric every
        ``interval_s`` (default: the cluster heartbeat interval) and
        invokes :meth:`take_over` itself after ``misses`` consecutive
        unanswered rounds — detection-driven fail-over, no oracle.
        """
        if (self._monitor_proc is not None
                and not self._monitor_proc.triggered
                and not self.took_over):
            return self._monitor_proc
        if self._monitor_proc is not None and self._monitor_proc.is_alive:
            # The old loop is a zombie: its pair already took over (or
            # was re-formed), so it exits at its next wake-up. Replace
            # it instead of handing the stale handle back.
            self._monitor_proc.interrupt("monitor superseded")
        interval = interval_s or self.controller.config.heartbeat_interval_s
        self._monitor_proc = self.sim.process(
            self._monitor_loop(interval, misses), name="backup:monitor")
        self._monitor_proc.defused = True
        return self._monitor_proc

    def reform(self) -> None:
        """Re-form the pair after a completed take-over.

        The surviving controller becomes primary again with an empty
        backup mirror, exactly as a repaired pair restarts in Section 2.
        Clears the take-over latch and the stale monitor handle so
        :meth:`start_monitor` can arm a fresh detection loop.
        """
        if self._monitor_proc is not None and self._monitor_proc.is_alive:
            self._monitor_proc.interrupt("pair re-formed")
        self._monitor_proc = None
        self.took_over = False
        self.decisions.clear()
        self.completed_on_takeover = []
        self.aborted_on_takeover = []
        self.controller.primary_alive = True

    def _ping_primary(self) -> Generator:
        fabric = self.controller.fabric
        if not fabric.enabled:
            # No fabric: the pair shares a rack-local supervision channel.
            return self.controller.primary_alive
        delivered = yield from fabric.deliver(BACKUP, CONTROLLER)
        if not delivered or not self.controller.primary_alive:
            return False
        delivered = yield from fabric.deliver(CONTROLLER, BACKUP)
        return delivered

    def _monitor_loop(self, interval: float, threshold: int) -> Generator:
        missed = 0
        while not self.took_over:
            yield self.sim.timeout(interval)
            answered = yield from self._ping_primary()
            if self.took_over:
                return
            if answered:
                missed = 0
                continue
            missed += 1
            if missed >= threshold:
                self.take_over(reason=f"{missed} missed heartbeats")
                return

    # -- mirroring (called by the primary) ---------------------------------------

    def log_decision(self, txn_id: int, decision: str,
                     machines: List[str]) -> None:
        self.decisions[txn_id] = _Decision(decision, list(machines))

    def clear_decision(self, txn_id: int) -> None:
        self.decisions.pop(txn_id, None)

    # -- take-over -----------------------------------------------------------------

    def take_over(self, reason: str = "invoked") -> Tuple[List[int], List[int]]:
        """The backup takes over from the (crashed) primary.

        Returns (committed transaction ids, aborted transaction ids).
        Connection-level state is gone: any open :class:`Connection`
        objects raise on further use and clients must reconnect.
        """
        if self.took_over:
            return (list(self.completed_on_takeover),
                    list(self.aborted_on_takeover))
        self.took_over = True
        # Fence the old primary before acting on any decision: even if it
        # is merely partitioned from the backup (not dead), it must not
        # issue another COMMIT once the backup starts cleaning up —
        # process-pair equivalent of STONITH, the no-split-brain rule.
        self.controller.primary_alive = False
        trace = self.controller.trace
        trace.emit("takeover", actor="backup", reason=reason,
                   decided=sorted(txn_id for txn_id, d in
                                  self.decisions.items()
                                  if d.decision == "commit"))
        # Phase 1 completes decided commits; Phase 2 presumed-aborts
        # every other in-flight transaction on all alive machines —
        # fenced ones included, since their engines still hold the old
        # transactions' locks and nothing else will release them.
        committed, aborted = takeover_cleanup(
            self.controller,
            {txn_id: (d.decision, list(d.machines))
             for txn_id, d in self.decisions.items()},
            actor="backup")
        self.decisions.clear()
        self.completed_on_takeover.extend(committed)
        self.aborted_on_takeover.extend(aborted)
        return (list(self.completed_on_takeover),
                list(self.aborted_on_takeover))
