"""Per-table catalogue statistics for cost-based planning.

Each table carries a :class:`TableStats`: a row count plus one
:class:`ColumnStats` sketch per column (distinct-value counts, null
count, min/max bounds). The sketches are *exact* value-count maps — the
paper's premise is many small application databases, so per-tenant
cardinalities stay modest and exactness buys the optimizer literal-value
selectivities for free (an equality against a literal reads the value's
actual frequency, like a complete histogram).

Maintenance is incremental and commit-driven, never a rescan:

* :meth:`Engine.commit <repro.engine.engine.Engine.commit>` replays the
  transaction's undo log as stat deltas (insert adds the after-image,
  delete removes the before-image, update does both), so aborted
  transactions never touch the sketches and uncommitted changes are
  invisible to the planner;
* bulk loads (replica copy landing) add rows as they stream in;
* crash recovery rebuilds from the replayed storage state, then backs
  out in-doubt transactions' deltas so the sketches reflect committed
  state only.

Min/max shrink correctly on delete: bounds are invalidated when the
boundary value's count reaches zero and lazily recomputed over the
distinct values (never the rows). ``tests/property/test_stats_property.py``
pins incremental maintenance to a from-scratch recount after randomized
statement soaks.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class _UnknownType:
    """Sentinel: a bound/probe value not known at plan time (a Param)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unknown>"


UNKNOWN = _UnknownType()

# Fallback selectivities when a probe value is unknown at plan time.
DEFAULT_CLOSED_RANGE_SEL = 0.30
DEFAULT_OPEN_RANGE_SEL = 0.40


class ColumnStats:
    """Exact distinct-value sketch of one column: counts, nulls, bounds."""

    __slots__ = ("counts", "nulls", "non_null", "_min", "_max", "_stale")

    def __init__(self):
        self.counts: Dict[Any, int] = {}
        self.nulls = 0
        self.non_null = 0
        self._min: Any = None
        self._max: Any = None
        self._stale = False

    # -- incremental maintenance -------------------------------------------

    def add(self, value: Any) -> None:
        if value is None:
            self.nulls += 1
            return
        self.non_null += 1
        count = self.counts.get(value)
        if count is None:
            self.counts[value] = 1
            if not self._stale:
                if self.non_null == 1:
                    self._min = self._max = value
                else:
                    if value < self._min:
                        self._min = value
                    if value > self._max:
                        self._max = value
        else:
            self.counts[value] = count + 1

    def remove(self, value: Any) -> None:
        if value is None:
            self.nulls -= 1
            return
        self.non_null -= 1
        count = self.counts[value] - 1
        if count:
            self.counts[value] = count
        else:
            del self.counts[value]
            # A boundary value disappeared: bounds are recomputed lazily
            # over the remaining distinct values (never the rows).
            if not self._stale and (value == self._min or value == self._max):
                self._stale = True

    def _refresh_bounds(self) -> None:
        if self.counts:
            self._min = min(self.counts)
            self._max = max(self.counts)
        else:
            self._min = self._max = None
        self._stale = False

    # -- accessors ----------------------------------------------------------

    @property
    def distinct(self) -> int:
        return len(self.counts)

    @property
    def min(self) -> Any:
        if self._stale:
            self._refresh_bounds()
        return self._min if self.counts else None

    @property
    def max(self) -> Any:
        if self._stale:
            self._refresh_bounds()
        return self._max if self.counts else None

    # -- selectivity estimation --------------------------------------------
    # Fractions are of the table's rows (NULLs never satisfy a
    # comparison, so they count in the denominator only).

    def eq_fraction(self, value: Any, row_count: int) -> float:
        if row_count <= 0:
            return 0.0
        if value is UNKNOWN:
            return 1.0 / max(1, self.distinct)
        try:
            matched = self.counts.get(value, 0)
        except TypeError:  # unhashable probe value
            return 1.0 / max(1, self.distinct)
        return matched / row_count

    def range_fraction(self, lo: Any, hi: Any, lo_inc: bool, hi_inc: bool,
                       row_count: int) -> float:
        """Fraction of rows inside a range; ``None`` bound = unbounded."""
        if row_count <= 0:
            return 0.0
        if lo is UNKNOWN or hi is UNKNOWN:
            if lo is not None and hi is not None:
                return DEFAULT_CLOSED_RANGE_SEL
            return DEFAULT_OPEN_RANGE_SEL
        matched = 0
        try:
            for value, count in self.counts.items():
                if lo is not None and (value < lo
                                       or (value == lo and not lo_inc)):
                    continue
                if hi is not None and (value > hi
                                       or (value == hi and not hi_inc)):
                    continue
                matched += count
        except TypeError:  # incomparable probe type
            return DEFAULT_CLOSED_RANGE_SEL
        return matched / row_count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "distinct": self.distinct,
            "nulls": self.nulls,
            "non_null": self.non_null,
            "min": self.min,
            "max": self.max,
            "counts": dict(self.counts),
        }


class TableStats:
    """Row count plus per-column sketches for one table."""

    __slots__ = ("row_count", "columns")

    def __init__(self, n_columns: int):
        self.row_count = 0
        self.columns: List[ColumnStats] = [ColumnStats()
                                           for _ in range(n_columns)]

    # -- delta application --------------------------------------------------

    def add_row(self, row: Sequence[Any]) -> None:
        self.row_count += 1
        for column, value in zip(self.columns, row):
            column.add(value)

    def remove_row(self, row: Sequence[Any]) -> None:
        self.row_count -= 1
        for column, value in zip(self.columns, row):
            column.remove(value)

    def update_row(self, before: Sequence[Any], after: Sequence[Any]) -> None:
        for column, old, new in zip(self.columns, before, after):
            if old != new or (old is None) != (new is None):
                column.remove(old)
                column.add(new)

    def apply_delta(self, kind: str, before, after) -> None:
        """Apply one undo-log entry as a committed-state delta."""
        if kind == "insert":
            self.add_row(after)
        elif kind == "delete":
            self.remove_row(before)
        else:
            self.update_row(before, after)

    def revert_delta(self, kind: str, before, after) -> None:
        """Back out one undo-log entry (recovery of in-doubt txns)."""
        if kind == "insert":
            self.remove_row(after)
        elif kind == "delete":
            self.add_row(before)
        else:
            self.update_row(after, before)

    # -- construction -------------------------------------------------------

    @classmethod
    def rebuild(cls, n_columns: int,
                rows: Iterable[Sequence[Any]]) -> "TableStats":
        """From-scratch recount (recovery, and the test oracle)."""
        stats = cls(n_columns)
        for row in rows:
            stats.add_row(row)
        return stats

    def snapshot(self) -> Dict[str, Any]:
        """Comparable view of the full statistics state."""
        return {
            "row_count": self.row_count,
            "columns": [c.snapshot() for c in self.columns],
        }
