"""The system controller: colos, proximity routing, disaster recovery.

"The colos are coordinated by a fault-tolerant system controller, which
routes client database connection requests to an appropriate colo, based
on... the replication configuration for the database, the load and status
of the colo, and the geographical proximity of the client and the colo.
A client database is (asynchronously) replicated across more than one
colo to provide disaster recovery."

Asynchronous replication is write-shipping: every committed writing
transaction's statements are appended to a per-database, sequence-
numbered replication log and replayed *in commit order* on the standby
colo's copy. Guarantees are deliberately weaker than in-cluster
replication (the paper's design): on colo failure the standby may miss
a suffix of recent transactions, but is always a transaction-consistent
prefix — the bounded data-loss window reported as RPO.

Two shipping paths share the log:

* **legacy** (``wan.enabled`` False, the default): each entry crosses
  the WAN after a fixed ``wan_latency_s`` and is applied best-effort —
  a standby conflict is retried once on a fresh connection, then the
  entry is dropped (counted in ``link.dropped``). Pre-fabric runs
  replay identically.
* **fabric** (``wan.enabled`` True): entries ride
  :class:`~repro.cluster.network.NetworkFabric` WAN links with seeded
  latency/jitter/drop and cut/heal partitions. Shipping is resumable —
  an entry is retransmitted with backoff until the standby acks it —
  and apply is at-most-once keyed on ``(db, seq)``: a redelivered entry
  the standby already applied is acked without reapplying.

Colo failover is detection-driven when the fabric is on: the system
controller heartbeats every colo, *suspects* after K consecutive
misses, *declares* after more, fences the colo under a monotonically
increasing epoch (a fenced primary refuses new connections and stops
shipping), promotes the standby, and then *re-protects* each promoted
database by establishing a fresh standby on a surviving colo via
snapshot copy plus log catch-up. A repaired colo rejoins as a blank
standby target through the same path (failback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.analysis.metrics import MetricsCollector
from repro.analysis.trace import Tracer
from repro.cluster.controller import Connection, CopyState, TransactionAborted
from repro.cluster.network import SYSTEM, NetworkConfig, NetworkFabric
from repro.errors import NoReplicaError, PlatformError
from repro.platform.colo import ColoController
from repro.sim import Interrupt, Process, Simulator, Store
from repro.sla.model import ResourceVector


@dataclass
class ReplicationLink:
    """Async write-shipping from a primary colo db to a standby colo.

    ``log`` holds not-yet-acked entries keyed by sequence number;
    ``next_seq`` is the next number to assign. ``applied_seq`` is the
    standby's high-water mark (entries at or below it are duplicates on
    redelivery — the at-most-once key is ``(db, seq)``); ``acked_seq``
    is the primary's view of it. ``shipped``/``applied``/``dropped``
    count entries for the lag metric: lag = shipped - applied - dropped.
    """

    db: str
    primary: str
    standby: str
    queue: Store
    applier: Optional[Process] = None
    shipped: int = 0
    applied: int = 0
    dropped: int = 0
    next_seq: int = 1
    applied_seq: int = 0
    acked_seq: int = 0
    torn: bool = False
    log: Dict[int, List[Tuple[str, Tuple]]] = field(default_factory=dict)
    hook: Any = None
    hook_cluster: Any = None


@dataclass
class DbRecord:
    """What the system controller needs to re-protect a database."""

    db: str
    ddl: Optional[List[str]] = None
    requirement: Optional[ResourceVector] = None
    standby_replicas: int = 1


class SystemController:
    """Top-level coordinator across geographically distributed colos."""

    def __init__(self, sim: Simulator, wan_latency_s: float = 0.05,
                 wan: Optional[NetworkConfig] = None,
                 heartbeat_interval_s: float = 0.5,
                 suspect_after_misses: int = 2,
                 declare_after_misses: int = 5,
                 wan_mbps: float = 50.0,
                 apply_retries: Optional[int] = None,
                 reprotect_retry_s: float = 5.0,
                 delta_reprotect: bool = True,
                 trace_capacity: int = 65536):
        self.sim = sim
        self.wan_latency_s = wan_latency_s
        self.wan_config = wan or NetworkConfig()
        self.wan_mbps = wan_mbps
        # Log-structured re-protection: attach the replication link at
        # the dump's snapshot instant instead of rejecting writes for
        # the dump's whole duration. The full-copy reference path
        # (rejection via Algorithm 1) is kept behind False.
        self.delta_reprotect = delta_reprotect
        # Fabric-path apply conflicts retry until they succeed by
        # default (None = unbounded), preserving the prefix guarantee;
        # a bound turns exhausted entries into counted drops.
        self.apply_retries = apply_retries
        self.reprotect_retry_s = reprotect_retry_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.suspect_after_misses = suspect_after_misses
        self.declare_after_misses = declare_after_misses
        self.metrics = MetricsCollector()
        self.trace = Tracer(capacity=trace_capacity,
                            clock=lambda: self.sim.now)
        self.wan = NetworkFabric(sim, self.wan_config, metrics=self.metrics)
        self.wan.trace = self.trace
        self.trace.emit("trace_meta", tier="system",
                        wan_enabled=self.wan.enabled)
        self.colos: Dict[str, ColoController] = {}
        # db -> (primary colo, standby colo or None)
        self.placements: Dict[str, Tuple[str, Optional[str]]] = {}
        self.links: Dict[str, ReplicationLink] = {}
        self.records: Dict[str, DbRecord] = {}
        # Monotonic fencing epoch; bumped by every declare/fail.
        self.epoch = 0
        # Colo failure-detector state (heartbeats over the WAN fabric).
        self.suspected: Dict[str, float] = {}   # name -> suspected-at time
        self.declared_dead: set = set()
        self._hb_misses: Dict[str, int] = {}
        self._detector_proc: Optional[Process] = None
        # Outstanding probe per colo: a probe that outlasts the interval
        # (slow or cut WAN link) suppresses new probes for that colo so
        # misses are not double-counted.
        self._probes: Dict[str, Process] = {}
        self._reprotect_procs: Dict[str, Process] = {}

    # -- membership ------------------------------------------------------------

    def add_colo(self, colo: ColoController) -> None:
        if colo.name in self.colos:
            raise ValueError(f"colo {colo.name!r} already registered")
        self.colos[colo.name] = colo

    def live_colos(self) -> List[ColoController]:
        return [c for c in self.colos.values() if c.alive and not c.fenced]

    # -- database placement across colos ---------------------------------------------

    def register_database(self, db: str, primary: str,
                          standby: Optional[str] = None,
                          ddl: Optional[List[str]] = None,
                          requirement: Optional[ResourceVector] = None,
                          standby_replicas: int = 1) -> None:
        """Record a database's colo placement and start async shipping.

        ``ddl``/``requirement`` (when provided) let the controller
        re-protect the database after a failover: a fresh standby can be
        placed and created from scratch on a surviving colo.
        """
        if primary not in self.colos:
            raise NoReplicaError(f"unknown colo {primary!r}")
        if standby is not None and standby not in self.colos:
            raise NoReplicaError(f"unknown colo {standby!r}")
        self.placements[db] = (primary, standby)
        self.records[db] = DbRecord(db, ddl=list(ddl) if ddl else None,
                                    requirement=requirement,
                                    standby_replicas=standby_replicas)
        self.trace.emit("dr_protect", db=db, primary=primary,
                        standby=standby, base_seq=0)
        if standby is None:
            return
        link = self._attach_link(db, primary, standby)
        self._start_link(link)

    def deregister_database(self, db: str) -> None:
        """Drop a database from the platform: tear down its replication
        link (cancelling the applier) and remove its data and placement
        load from every hosting colo."""
        self._teardown_link(db)
        self.placements.pop(db, None)
        self.records.pop(db, None)
        self._cancel_reprotect(db)
        for colo in self.colos.values():
            if colo.hosts(db) and colo.alive:
                colo.drop_database(db)

    # -- the replication log ---------------------------------------------------------

    def _attach_link(self, db: str, primary: str,
                     standby: str) -> ReplicationLink:
        """Create a link and start sequencing the primary's commits.

        Synchronous (no sim time passes between the caller's snapshot
        and the hook attach), so the log is exactly the commit suffix
        after the snapshot instant.
        """
        link = ReplicationLink(db, primary, standby, Store(self.sim))
        cluster = self.colos[primary].cluster_of(db)

        def hook(committed_db, txn_id, writes, link=link):
            self._on_commit(link, committed_db, writes)

        link.hook = hook
        link.hook_cluster = cluster
        cluster.commit_hooks.append(hook)
        self.links[db] = link
        return link

    def _start_link(self, link: ReplicationLink) -> None:
        loop = (self._ship_loop(link) if self.wan.enabled
                else self._apply_loop(link))
        applier = self.sim.process(loop, name=f"ship:{link.db}")
        applier.defused = True  # runs until the link is torn
        link.applier = applier

    def _teardown_link(self, db: str) -> None:
        link = self.links.pop(db, None)
        if link is None:
            return
        link.torn = True
        if link.applier is not None and link.applier.is_alive:
            link.applier.defused = True
            link.applier.interrupt("link torn")
        if link.hook is not None and link.hook_cluster is not None:
            try:
                link.hook_cluster.commit_hooks.remove(link.hook)
            except ValueError:
                pass
        self.trace.emit("dr_link_torn", db=db, primary=link.primary,
                        standby=link.standby,
                        lag=link.shipped - link.applied - link.dropped)

    def _on_commit(self, link: ReplicationLink, db: str, writes) -> None:
        if db != link.db or not writes or link.torn:
            return
        primary_colo = self.colos.get(link.primary)
        if (primary_colo is None or not primary_colo.alive
                or primary_colo.fenced):
            return  # a fenced primary stops shipping
        seq = link.next_seq
        link.next_seq += 1
        link.shipped += 1
        link.log[seq] = list(writes)
        link.queue.put(seq)
        self.metrics.record_dr_ship()
        self.trace.emit("dr_ship", db=link.db, rseq=seq,
                        src=link.primary, dst=link.standby)

    def _replay(self, colo: ColoController, db: str, writes) -> Generator:
        """Apply one shipped transaction on a fresh standby connection."""
        conn = colo.connect(db)
        try:
            for sql, params in writes:
                yield conn.execute(sql, params)
            yield conn.commit()
        finally:
            conn.close()

    def _record_apply(self, link: ReplicationLink, seq: int) -> None:
        link.applied += 1
        link.applied_seq = seq
        self.metrics.record_dr_apply()
        self.trace.emit("dr_apply", db=link.db, rseq=seq,
                        machine=link.standby)

    def _record_drop(self, link: ReplicationLink, seq: int,
                     reason: str) -> None:
        link.dropped += 1
        link.applied_seq = seq
        self.metrics.record_dr_drop()
        self.trace.emit("dr_drop", db=link.db, rseq=seq, reason=reason)

    def _standby_colo(self, link: ReplicationLink
                      ) -> Optional[ColoController]:
        colo = self.colos.get(link.standby)
        if (colo is None or not colo.alive or colo.fenced
                or not colo.hosts(link.db)):
            return None
        return colo

    def _apply_loop(self, link: ReplicationLink) -> Generator:
        """Legacy path: fixed WAN latency, best-effort apply.

        A standby conflict (e.g. local activity) is retried once on a
        *fresh* connection — the aborted one is finished and cannot run
        the retry — then the entry is dropped and counted, so
        :meth:`replication_lag` converges instead of overreporting
        forever.
        """
        try:
            while not link.torn:
                seq = yield link.queue.get()
                yield self.sim.timeout(self.wan_latency_s)
                writes = link.log.pop(seq, None)
                if writes is None:
                    continue
                standby_colo = self._standby_colo(link)
                if standby_colo is None:
                    self._record_drop(link, seq, reason="no-standby")
                    continue
                try:
                    yield from self._replay(standby_colo, link.db, writes)
                except TransactionAborted:
                    try:
                        yield from self._replay(standby_colo, link.db,
                                                writes)
                    except (TransactionAborted, PlatformError):
                        self._record_drop(link, seq, reason="apply-conflict")
                        continue
                except PlatformError:
                    self._record_drop(link, seq, reason="standby-error")
                    continue
                self._record_apply(link, seq)
        except Interrupt:
            return

    def _ship_loop(self, link: ReplicationLink) -> Generator:
        """Fabric path: sequenced, resumable, at-most-once shipping.

        Each entry is sent over the WAN link until the standby acks it;
        a drop or cut in either direction just means a retransmission
        after backoff (resumable catch-up — a long outage drains once
        the link heals). The standby applies an entry only once: a
        redelivery of ``seq <= applied_seq`` is acked without reapply.
        """
        try:
            while not link.torn:
                seq = yield link.queue.get()
                writes = link.log.get(seq)
                if writes is None:
                    continue
                attempt = 0
                while not link.torn:
                    primary_colo = self.colos.get(link.primary)
                    if (primary_colo is None or not primary_colo.alive
                            or primary_colo.fenced):
                        return  # a fenced/dead primary stops shipping
                    delivered = yield from self.wan.deliver(link.primary,
                                                            link.standby)
                    applied = False
                    if delivered:
                        applied = yield from self._apply_shipped(link, seq,
                                                                 writes)
                    if applied:
                        acked = yield from self.wan.deliver(link.standby,
                                                            link.primary)
                        if acked:
                            link.acked_seq = seq
                            link.log.pop(seq, None)
                            break
                    attempt += 1
                    yield self.sim.timeout(self.wan.backoff_delay(attempt))
        except Interrupt:
            return

    def _apply_shipped(self, link: ReplicationLink, seq: int,
                       writes) -> Generator:
        """Standby-side apply, at-most-once keyed on ``(db, seq)``."""
        if seq <= link.applied_seq:
            return True  # duplicate delivery; ack without reapplying
        standby_colo = self._standby_colo(link)
        if standby_colo is None:
            return False
        attempt = 0
        while not link.torn:
            try:
                yield from self._replay(standby_colo, link.db, writes)
            except TransactionAborted:
                attempt += 1
                if (self.apply_retries is not None
                        and attempt > self.apply_retries):
                    self._record_drop(link, seq, reason="apply-conflict")
                    return True
                yield self.sim.timeout(self.wan.backoff_delay(attempt))
                continue
            except PlatformError:
                return False
            self._record_apply(link, seq)
            return True
        return False

    # -- connection routing ---------------------------------------------------------

    def route(self, db: str,
              client_location: float = 0.0) -> ColoController:
        """Pick the colo to serve a connection.

        Prefers the primary colo; falls back to the standby when the
        primary is gone (disaster routing). Among equals, proximity wins
        (the |location - client| metric stands in for geography). Dead
        and fenced colos are never candidates.
        """
        if db not in self.placements:
            raise NoReplicaError(f"database {db!r} is not registered")
        primary, standby = self.placements[db]
        candidates = [name for name in (primary, standby)
                      if name is not None and name in self.colos
                      and self.colos[name].alive
                      and not self.colos[name].fenced
                      and self.colos[name].hosts(db)]
        if not candidates:
            raise NoReplicaError(f"no colo can serve {db!r}")
        candidates.sort(key=lambda name: (
            0 if name == primary else 1,
            abs(self.colos[name].location - client_location)))
        return self.colos[candidates[0]]

    def connect(self, db: str, client_location: float = 0.0) -> Connection:
        return self.route(db, client_location).connect(db)

    # -- colo failure detection ---------------------------------------------------------

    def start_failure_detector(self) -> Process:
        """Start heartbeating every colo over the WAN fabric.

        A colo is *suspected* after ``suspect_after_misses`` consecutive
        silent heartbeats, *declared* dead (fenced under a new epoch,
        standbys promoted, re-protection scheduled) after
        ``declare_after_misses``, and rejoined as a blank standby target
        if it ever answers again.
        """
        if not self.wan.enabled:
            raise RuntimeError(
                "the colo failure detector needs the WAN fabric "
                "(wan.enabled)")
        if (self._detector_proc is not None
                and not self._detector_proc.triggered):
            return self._detector_proc
        self._detector_proc = self.sim.process(self._detector_loop(),
                                               name="system:colo-detector")
        self._detector_proc.defused = True
        return self._detector_proc

    def _detector_loop(self) -> Generator:
        try:
            while True:
                for name in list(self.colos):
                    outstanding = self._probes.get(name)
                    if outstanding is not None and outstanding.is_alive:
                        continue  # earlier probe still in flight
                    probe = self.sim.process(self._probe_colo(name),
                                             name=f"colo-hb:{name}")
                    probe.defused = True
                    self._probes[name] = probe
                yield self.sim.timeout(self.heartbeat_interval_s)
        except Interrupt:
            return

    def _ping_colo(self, colo: ColoController) -> Generator:
        """One heartbeat round trip over the WAN. A fenced colo still
        answers pings (it refuses *work*, not liveness probes) — that is
        how a falsely declared colo rejoins after the partition heals.
        Late responses count as misses."""
        deadline = self.sim.now + self.heartbeat_interval_s
        delivered = yield from self.wan.deliver(SYSTEM, colo.name)
        if not delivered or not colo.alive:
            return False
        delivered = yield from self.wan.deliver(colo.name, SYSTEM)
        return delivered and self.sim.now <= deadline

    def _probe_colo(self, name: str) -> Generator:
        colo = self.colos.get(name)
        if colo is None:
            return
        answered = yield from self._ping_colo(colo)
        if answered:
            self._hb_misses[name] = 0
            if name in self.declared_dead:
                # False declaration: the colo was alive behind a
                # partition. Its state is stale (its databases were
                # promoted away); it rejoins blank through failback.
                self.metrics.record_dr_false_suspicion()
                self.repair_colo(name)
            elif name in self.suspected:
                since = self.suspected.pop(name)
                self.metrics.record_dr_false_suspicion()
                self.trace.emit("colo_unsuspected", machine=name,
                                suspected_for=self.sim.now - since)
            return
        if name in self.declared_dead:
            return
        misses = self._hb_misses.get(name, 0) + 1
        self._hb_misses[name] = misses
        if (misses >= self.suspect_after_misses
                and name not in self.suspected):
            self.suspected[name] = self.sim.now
            self.trace.emit("colo_suspected", machine=name, misses=misses)
        if (misses >= self.declare_after_misses and name in self.suspected
                and self._declare_colo_allowed(name)):
            self.declare_colo_dead(name,
                                   reason=f"{misses} missed heartbeats")

    def _declare_colo_allowed(self, name: str) -> bool:
        """Never declare a colo whose loss would lose a database
        outright: every database it primaries must have a live, unfenced
        standby holding a copy. It stays merely suspected until the
        partition heals or re-protection lands a standby elsewhere."""
        for db, (primary, standby) in self.placements.items():
            if primary != name:
                continue
            standby_colo = self.colos.get(standby) if standby else None
            if (standby_colo is None or not standby_colo.alive
                    or standby_colo.fenced or not standby_colo.hosts(db)):
                return False
        return True

    # -- disaster handling -------------------------------------------------------------

    def declare_colo_dead(self, name: str, reason: str = "") -> List[str]:
        """Declare a silent colo dead: fence it under a fresh epoch,
        promote standbys, and schedule re-protection.

        Fencing models the colo-side lease expiring at the declaration:
        even if the colo is alive on the far side of a partition it
        refuses new connections and stops shipping, so the promoted
        standby is the *only* primary under the new epoch (no dual
        primary)."""
        colo = self.colos.get(name)
        if colo is None:
            raise ValueError(f"unknown colo {name!r}")
        if name in self.declared_dead:
            return []
        self.suspected.pop(name, None)
        self.declared_dead.add(name)
        self.epoch += 1
        was_alive = colo.alive
        colo.fence()
        self.trace.emit("colo_declared", machine=name, reason=reason,
                        was_alive=was_alive)
        self.trace.emit("colo_fenced", machine=name, epoch=self.epoch)
        return self._handle_colo_loss(name, self.epoch, self.sim.now)

    def crash_colo(self, name: str) -> None:
        """Power a colo off *without* telling the system controller.

        Nothing is promoted here — only the heartbeat failure detector
        can notice the silence and drive declare→fence→promote."""
        colo = self.colos.get(name)
        if colo is None:
            raise ValueError(f"unknown colo {name!r}")
        colo.crash()
        self.trace.emit("colo_crashed", machine=name)

    def fail_colo(self, name: str) -> List[str]:
        """Lose a whole colo through the oracle path; promote standbys
        instantly. Returns the databases whose primary was lost."""
        colo = self.colos.get(name)
        if colo is None:
            raise ValueError(f"unknown colo {name!r}")
        colo.crash()
        colo.fence()
        self.declared_dead.add(name)
        self.suspected.pop(name, None)
        self.epoch += 1
        self.trace.emit("colo_failed", machine=name, epoch=self.epoch)
        return self._handle_colo_loss(name, self.epoch, self.sim.now)

    def repair_colo(self, name: str) -> None:
        """Wipe a failed/fenced colo and rejoin it as a blank standby
        target; unprotected databases re-protect onto it (failback)."""
        colo = self.colos.get(name)
        if colo is None:
            raise ValueError(f"unknown colo {name!r}")
        colo.repair()
        self.declared_dead.discard(name)
        self.suspected.pop(name, None)
        self._hb_misses[name] = 0
        self.trace.emit("colo_repaired", machine=name)
        self._kick_reprotects()

    def _handle_colo_loss(self, name: str, epoch: int,
                          declared_at: float) -> List[str]:
        affected = []
        for db, (primary, standby) in list(self.placements.items()):
            if primary == name:
                affected.append(db)
                standby_colo = (self.colos.get(standby)
                                if standby is not None else None)
                if (standby_colo is not None and standby_colo.alive
                        and not standby_colo.fenced
                        and standby_colo.hosts(db)):
                    self._promote(db, name, standby, epoch, declared_at)
                else:
                    self._teardown_link(db)
                    self.placements.pop(db)
            elif standby == name:
                self._teardown_link(db)
                self.placements[db] = (primary, None)
                self._schedule_reprotect(db)
        return affected

    def _promote(self, db: str, old_primary: str, new_primary: str,
                 epoch: int, declared_at: float) -> None:
        link = self.links.get(db)
        # RPO: acked commits the standby never applied — the logged
        # suffix above its high-water mark at promotion time.
        rpo = ((link.next_seq - 1) - link.applied_seq
               if link is not None else 0)
        self._teardown_link(db)
        self.placements[db] = (new_primary, None)
        self.metrics.record_dr_promotion(db, old_primary, new_primary,
                                         epoch, declared_at, rpo)
        self.trace.emit("dr_promote", db=db, old=old_primary,
                        new=new_primary, epoch=epoch, rpo_commits=rpo)
        self._arm_rto(db, new_primary, declared_at)
        self._schedule_reprotect(db)

    def _arm_rto(self, db: str, new_primary: str,
                 declared_at: float) -> None:
        """RTO stops the clock at the first successful statement a
        client lands on the promoted primary."""
        colo = self.colos.get(new_primary)
        if colo is None or not colo.hosts(db):
            return
        cluster = colo.cluster_of(db)

        def hook(hdb, db=db, cluster=cluster, declared_at=declared_at):
            if hdb != db:
                return
            seconds = self.sim.now - declared_at
            self.metrics.record_dr_rto(db, seconds)
            self.trace.emit("dr_rto", db=db, seconds=seconds)
            try:
                cluster.statement_hooks.remove(hook)
            except ValueError:
                pass

        cluster.statement_hooks.append(hook)

    # -- re-protection (snapshot copy + log catch-up) ---------------------------------

    def _schedule_reprotect(self, db: str) -> None:
        proc = self._reprotect_procs.get(db)
        if proc is not None and proc.is_alive:
            return
        proc = self.sim.process(self._reprotect_loop(db),
                                name=f"reprotect:{db}")
        proc.defused = True
        self._reprotect_procs[db] = proc

    def _cancel_reprotect(self, db: str) -> None:
        proc = self._reprotect_procs.pop(db, None)
        if proc is not None and proc.is_alive:
            proc.interrupt("database deregistered")

    def _kick_reprotects(self) -> None:
        """Re-scan for unprotected databases (a colo was repaired or
        added, so a parked re-protection may now have a target)."""
        for db, (primary, standby) in list(self.placements.items()):
            if standby is not None:
                continue
            colo = self.colos.get(primary)
            if colo is not None and colo.alive and not colo.fenced:
                self._schedule_reprotect(db)

    def _pick_reprotect_target(self, db: str,
                               primary: str) -> Optional[str]:
        record = self.records.get(db)
        if (record is None or record.ddl is None
                or record.requirement is None):
            return None  # not enough to re-create the database
        candidates = [c for c in self.colos.values()
                      if c.name != primary and c.alive and not c.fenced
                      and not c.hosts(db)]
        if not candidates:
            return None
        candidates.sort(key=lambda c: (-c.free_pool, c.name))
        return candidates[0].name

    def _reprotect_loop(self, db: str) -> Generator:
        """Establish a fresh standby for an unprotected database.

        Parks (returns) when no surviving colo can host the copy — a
        later :meth:`repair_colo`/:meth:`add_colo` re-kicks it — and
        retries after a delay on transient failures (e.g. a WAN cut in
        the middle of the snapshot transfer)."""
        try:
            while True:
                record = self.records.get(db)
                placement = self.placements.get(db)
                if record is None or placement is None:
                    return
                primary, standby = placement
                if standby is not None:
                    return
                primary_colo = self.colos.get(primary)
                if (primary_colo is None or not primary_colo.alive
                        or primary_colo.fenced):
                    return
                target = self._pick_reprotect_target(db, primary)
                if target is None:
                    return  # parked until a target colo appears
                try:
                    done = yield from self._reprotect_once(db, record,
                                                           primary, target)
                except PlatformError:
                    done = False
                if done:
                    return
                yield self.sim.timeout(self.reprotect_retry_s)
        except Interrupt:
            return

    def _reprotect_once(self, db: str, record: DbRecord, primary: str,
                        target_name: str) -> Generator:
        """One snapshot-copy + catch-up attempt toward ``target_name``.

        Delta mode (the default): the dump runs *without* rejecting
        writes, and the replication link is attached at the snapshot
        instant — the dump's S locks guarantee every commit whose hook
        has fired is in the snapshot, and every later commit's hook
        lands in the fresh link's log, so catch-up replays exactly the
        suffix after the snapshot. Reference mode
        (``delta_reprotect=False``): the snapshot is dumped under
        Algorithm 1's write-rejection window (writes to the database
        are refused for the dump's duration), so the instant the dump
        completes there are no in-flight writes and the link attached
        then sequences the same precise suffix. Either way the standby
        is a transaction-consistent prefix.
        """
        primary_colo = self.colos[primary]
        target_colo = self.colos[target_name]
        cluster = primary_colo.cluster_of(db)
        sources = cluster.live_replicas(db)
        if not sources:
            raise NoReplicaError(f"no live replica of {db!r} to copy")
        self.trace.emit("dr_reprotect_start", db=db, src=primary,
                        target=target_name,
                        mode="delta" if self.delta_reprotect else "full")
        target_colo.place_database(db, record.ddl, record.requirement,
                                   record.standby_replicas)
        link: Optional[ReplicationLink] = None
        try:
            source = cluster.machines[sources[-1]]  # spare the primary
            if self.delta_reprotect:
                # No copy state, no rejection: commit hooks fire at the
                # decision point, and a decided-but-unapplied commit's X
                # locks block the dump — so attaching the link inside
                # the dump's synchronous snapshot step (no yields)
                # splits commits exactly: hooks fired before the attach
                # are in the rows read, hooks after land in the link log.
                holder: Dict[str, ReplicationLink] = {}

                def on_snapshot(_dumps):
                    holder["link"] = self._attach_link(db, primary,
                                                       target_name)

                dumps = yield source.run_copy(
                    source.dump_database_body(db, on_snapshot=on_snapshot),
                    label=f"dr-dump:{db}")
                link = holder.get("link")
            else:
                state = CopyState(db, f"colo:{target_name}",
                                  source=source.name)
                state.copying_all = True
                cluster.copy_states[db] = state
                try:
                    dumps = yield source.run_copy(
                        source.dump_database_body(db),
                        label=f"dr-dump:{db}")
                    # The dump just finished and writes were rejected
                    # throughout, so nothing is in flight *now*: attach
                    # the link at this exact instant (no yields) and the
                    # log is the precise commit suffix after the snapshot.
                    link = self._attach_link(db, primary, target_name)
                finally:
                    if cluster.copy_states.get(db) is state:
                        del cluster.copy_states[db]
            nbytes = sum(dump.bytes_estimate for dump in dumps)
            yield from self._wan_transfer(primary, target_name, nbytes)
            if (not primary_colo.alive or primary_colo.fenced
                    or not target_colo.alive or target_colo.fenced
                    or link.torn or db not in self.placements):
                raise NoReplicaError(
                    f"re-protection of {db!r} lost an endpoint")
            target_cluster = target_colo.cluster_of(db)
            for dump in dumps:
                target_cluster.bulk_load(db, dump.table, dump.rows)
            self.placements[db] = (primary, target_name)
            self._start_link(link)
        except BaseException:
            if link is not None and self.links.get(db) is link:
                self._teardown_link(db)
            if target_colo.alive and not target_colo.fenced:
                target_colo.drop_database(db)
            raise
        failback = target_colo.was_failed
        self.trace.emit("dr_reprotect_done", db=db, primary=primary,
                        standby=target_name, base_seq=0,
                        failback=failback)
        self.trace.emit("dr_protect", db=db, primary=primary,
                        standby=target_name, base_seq=0)
        if failback:
            self.metrics.record_dr_failback()
            self.trace.emit("dr_failback", db=db, machine=target_name)
        return True

    def _wan_transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Cross-colo transfer time for the snapshot stream."""
        machine_cfg = self.colos[src].cluster_config.machine
        scaled = nbytes * machine_cfg.copy_bytes_factor
        seconds = (scaled / (1024.0 * 1024.0)) / self.wan_mbps
        if self.wan.enabled:
            yield from self.wan.transfer(src, dst, seconds)
        elif seconds > 0:
            yield self.sim.timeout(seconds + self.wan_latency_s)

    # -- metrics ---------------------------------------------------------------------

    def replication_lag(self, db: str) -> int:
        """Shipped-but-unresolved transaction count (staleness metric).

        Dropped entries are resolved (they will never apply), so lag
        converges to zero on an idle link instead of overreporting
        forever."""
        link = self.links.get(db)
        if link is None:
            return 0
        return link.shipped - link.applied - link.dropped

    def dr_summary(self) -> Dict[str, object]:
        return self.metrics.dr_summary()
