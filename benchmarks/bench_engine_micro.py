"""Microbenchmarks of the MiniSQL engine itself (wall-clock, not simulated).

These measure the Python engine's raw statement rates — useful when
tuning experiment scales, and a regression guard for the executor and
index paths that every simulated experiment leans on.
"""

import pytest

from repro.engine import Engine


def make_engine(rows: int = 2000):
    engine = Engine("micro")
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, "
                        "v INTEGER, s VARCHAR(20))")
    engine.execute_sync(txn, "db", "CREATE INDEX t_v ON t (v)")
    for k in range(rows):
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?, ?)",
                            (k, k % 50, f"s{k:06d}"))
    engine.commit(txn)
    return engine


@pytest.fixture(scope="module")
def engine():
    return make_engine()


@pytest.mark.benchmark(group="engine-micro")
def test_point_select(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db", "SELECT v FROM t WHERE k = ?", (777,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rows == [(777 % 50,)]


@pytest.mark.benchmark(group="engine-micro")
def test_secondary_index_select(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db", "SELECT COUNT(*) FROM t WHERE v = ?", (7,))

    result = benchmark(op)
    engine.commit(txn)
    assert result.scalar() == 40


@pytest.mark.benchmark(group="engine-micro")
def test_range_scan(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT k FROM t WHERE k >= ? AND k < ? ORDER BY k",
            (100, 200))

    result = benchmark(op)
    engine.commit(txn)
    assert result.rowcount == 100


@pytest.mark.benchmark(group="engine-micro")
def test_update_commit_cycle(benchmark):
    engine = make_engine(500)
    counter = [0]

    def op():
        counter[0] += 1
        txn = engine.begin()
        engine.execute_sync(txn, "db",
                            "UPDATE t SET v = ? WHERE k = ?",
                            (counter[0] % 100, counter[0] % 500))
        engine.commit(txn)

    benchmark(op)


@pytest.mark.benchmark(group="engine-micro")
def test_aggregate_group_by(benchmark, engine):
    txn = engine.begin()

    def op():
        return engine.execute_sync(
            txn, "db",
            "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v LIMIT 10")

    result = benchmark(op)
    engine.commit(txn)
    assert len(result.rows) == 10
