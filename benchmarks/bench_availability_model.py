"""Validation — the Section 4.1 availability model against measurement.

The paper bounds the fraction of proactively rejected transactions by::

    (failure_rate + reallocation_rate) * (recovery_time / T) * write_mix

This benchmark runs a sustained-failure soak (Poisson machine failures,
database-granularity recovery so the rejection window is the whole copy)
and compares the measured rejected fraction against the formula's
prediction built from the same run's observed failure count and copy
durations. A reproduction of the *model*, not just the mechanism.
"""

import pytest

from repro.cluster import (ClusterConfig, ClusterController,
                           CopyGranularity, ReadOption, RecoveryManager,
                           WritePolicy)
from repro.harness import format_table
from repro.harness.faults import FailureInjector
from repro.sim import Simulator
from repro.sla.model import AvailabilityInputs, rejected_fraction_bound
from repro.sla.monitor import observed_availability_inputs
from repro.workloads.microbench import KeyValueWorkload

DURATION_S = 300.0
MTBF_S = 40.0


def run_soak():
    sim = Simulator()
    config = ClusterConfig(read_option=ReadOption.OPTION_1,
                           write_policy=WritePolicy.CONSERVATIVE)
    config.machine.copy_bytes_factor = 20_000.0  # ~10 s copies
    controller = ClusterController(sim, config)
    controller.add_machines(6)
    workload = KeyValueWorkload(controller, db_name="app", keys=40, seed=2)
    workload.install(replicas=2)
    recovery = RecoveryManager(controller,
                               granularity=CopyGranularity.DATABASE,
                               threads=2, retry_delay_s=1.0)
    recovery.start()
    injector = FailureInjector(controller, mtbf_s=MTBF_S, seed=9,
                               min_live_machines=3)
    injector.start()
    for cid in range(4):
        proc = sim.process(workload.client(
            cid, transactions=100_000, reads_per_txn=1, writes_per_txn=1,
            think_time_s=0.25))
        proc.defused = True
    sim.run(until=DURATION_S)
    injector.stop()

    counters = controller.metrics.db("app")
    measured_fraction = counters.rejected_fraction()
    failures_hitting_db = sum(
        1 for event in injector.events if "app" in event.databases_affected)
    inputs = observed_availability_inputs(
        "app", recovery.records, failures_observed=failures_hitting_db,
        window_s=DURATION_S, write_mix=1.0, period_s=DURATION_S)
    predicted = rejected_fraction_bound(inputs, DURATION_S)
    return {
        "measured": measured_fraction,
        "predicted": predicted,
        "failures": failures_hitting_db,
        "recovery_time_s": inputs.recovery_time_s,
        "committed": counters.committed,
        "rejected": counters.rejected,
    }


@pytest.mark.benchmark(group="availability-model")
def test_availability_model_validates(benchmark, capsys):
    from common import report
    data = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    text = format_table(
        ["metric", "value"],
        [["failures hitting the database", data["failures"]],
         ["mean recovery (copy) time (s)", data["recovery_time_s"]],
         ["committed transactions", data["committed"]],
         ["rejected transactions", data["rejected"]],
         ["measured rejected fraction", data["measured"]],
         ["Section 4.1 predicted fraction", data["predicted"]]])
    report("availability_model", text, capsys)
    assert data["failures"] >= 1
    assert data["rejected"] >= 1, "db-level copies must reject writes"
    # The model and the measurement agree to well within an order of
    # magnitude (the formula is an expectation, the run is one sample).
    ratio = data["measured"] / data["predicted"]
    assert 0.2 <= ratio <= 5.0, f"model mismatch: ratio {ratio}"
