"""Plan compilation: turn bound plans into Python closures.

The tree-walking interpreter in :mod:`repro.engine.executor` re-dispatches
on ``isinstance`` for every plan node and re-interprets every bound
expression tree once per row. This module performs all of that dispatch
*once per cached plan*:

* every bound expression compiles to a ``(row, params) -> value`` closure
  with SQL three-valued logic baked in (constant subtrees are folded at
  compile time);
* every plan node compiles to a closure producing the executor's
  generator protocol (yield :class:`LockRequest` on waits, yield row
  tuples otherwise), with per-row invariants — lock resources, primary
  key positions, the history/no-history decision — hoisted out of the
  loop;
* ``ORDER BY`` compiles to key-tuple sorts (one stable pass per key,
  applied last-key-first) instead of a ``cmp_to_key`` comparator that
  re-evaluates both sort expressions on every comparison.

Compiled statements are behavior-identical to the interpreter: same rows,
same lock acquisition order, same buffer-pool page touches, same
:class:`CostReport` counters, and same history records. The interpreter
remains the reference implementation; ``EngineConfig.compile_plans``
selects between them and a differential property test
(``tests/property/test_compiled_executor_property.py``) holds the two
paths together.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.engine import planner as p
from repro.engine.executor import ExecContext, ExecResult
from repro.engine.locks import LockMode, LockRequest
from repro.engine.schema import TableSchema
from repro.engine.sqlparse import nodes as n
from repro.engine.transactions import UndoEntry
from repro.engine.types import SqlType, like_match, sql_compare, sql_eq
from repro.engine.wal import RecordType
from repro.errors import SqlError

# A compiled expression: (row, params) -> value.
ExprFn = Callable[[Tuple[Any, ...], Tuple[Any, ...]], Any]
# A compiled plan node: (ctx, outer_row) -> generator of rows/LockRequests.
NodeFn = Callable[..., Generator]


@dataclass(frozen=True)
class CompileOptions:
    """Compilation knobs, threaded in from :class:`EngineConfig`.

    ``batch`` turns on columnar batch execution for the hot read path:
    scan/filter chains at slot offset zero emit :class:`Batch` blocks
    instead of per-row yields, filters evaluate column vectors under a
    selection vector, and aggregates consume batches directly. Batched
    subtrees are behavior-identical to row-at-a-time execution on every
    non-erroring statement (same rows, lock order, page touches, cost
    counters, history records); when a statement raises mid-scan the
    batch path may have scanned up to one batch further before the same
    error surfaces.
    """

    batch: bool = False
    batch_size: int = 256


class Batch:
    """A block of rows flowing between batch-aware operators.

    Rows are primary; per-column value lists are materialized lazily and
    cached, since a filter or aggregate typically touches one or two
    columns of a wide row. A batch is never mutated once emitted —
    filters build new, narrower batches.
    """

    __slots__ = ("rows", "_columns")

    def __init__(self, rows: List[Tuple[Any, ...]]):
        self.rows = rows
        self._columns = None

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, index: int) -> List[Any]:
        cols = self._columns
        if cols is None:
            cols = self._columns = {}
        col = cols.get(index)
        if col is None:
            col = cols[index] = [row[index] for row in self.rows]
        return col


# -- expression compilation ---------------------------------------------------


def compile_expr(expr: n.Expr) -> ExprFn:
    """Compile a bound expression to a ``(row, params) -> value`` closure."""
    fn, _ = _compile_expr(expr)
    return fn


def _fold(fn: ExprFn, const: bool) -> Tuple[ExprFn, bool]:
    """Evaluate a constant subtree once; fall back on any failure.

    Folding must never change *when* an error surfaces, so a constant
    subtree that raises is left unfolded and raises at row time exactly
    like the interpreter.
    """
    if not const:
        return fn, False
    try:
        value = fn((), ())
    except Exception:
        return fn, False
    return (lambda row, params: value), True


def _compile_expr(expr: n.Expr) -> Tuple[ExprFn, bool]:
    if isinstance(expr, n.Literal):
        value = expr.value
        return (lambda row, params: value), True
    if isinstance(expr, n.Param):
        index = expr.index
        def param_fn(row, params):
            try:
                return params[index]
            except IndexError:
                raise SqlError(
                    f"statement has parameter ${index} but only "
                    f"{len(params)} values were bound"
                ) from None
        return param_fn, False
    if isinstance(expr, (p.Slot, p.AggSlot)):
        index = expr.index
        return (lambda row, params: row[index]), False
    if isinstance(expr, n.BinaryOp):
        return _compile_binary(expr)
    if isinstance(expr, n.UnaryOp):
        operand, const = _compile_expr(expr.operand)
        if expr.op == "NOT":
            def not_fn(row, params):
                value = operand(row, params)
                return None if value is None else (not value)
            return _fold(not_fn, const)
        if expr.op == "NEG":
            def neg_fn(row, params):
                value = operand(row, params)
                return None if value is None else -value
            return _fold(neg_fn, const)
        raise SqlError(f"unknown unary op {expr.op}")
    if isinstance(expr, n.InList):
        value_fn, vconst = _compile_expr(expr.expr)
        compiled = [_compile_expr(i) for i in expr.items]
        item_fns = [fn for fn, _ in compiled]
        const = vconst and all(c for _, c in compiled)
        negated = expr.negated
        def in_fn(row, params):
            value = value_fn(row, params)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                verdict = sql_eq(value, item_fn(row, params))
                if verdict is None:
                    saw_null = True
                elif verdict:
                    return not negated
            if saw_null:
                return None
            return negated
        return _fold(in_fn, const)
    if isinstance(expr, n.Between):
        value_fn, c1 = _compile_expr(expr.expr)
        low_fn, c2 = _compile_expr(expr.low)
        high_fn, c3 = _compile_expr(expr.high)
        negated = expr.negated
        def between_fn(row, params):
            value = value_fn(row, params)
            lo_cmp = sql_compare(value, low_fn(row, params))
            hi_cmp = sql_compare(value, high_fn(row, params))
            if lo_cmp is None or hi_cmp is None:
                return None
            inside = lo_cmp >= 0 and hi_cmp <= 0
            return inside != negated
        return _fold(between_fn, c1 and c2 and c3)
    if isinstance(expr, n.IsNull):
        value_fn, const = _compile_expr(expr.expr)
        negated = expr.negated
        def isnull_fn(row, params):
            return (value_fn(row, params) is None) != negated
        return _fold(isnull_fn, const)
    raise SqlError(f"cannot compile {expr!r}")


def _compile_binary(expr: n.BinaryOp) -> Tuple[ExprFn, bool]:
    op = expr.op
    left_fn, lconst = _compile_expr(expr.left)
    right_fn, rconst = _compile_expr(expr.right)
    const = lconst and rconst
    if op == "AND":
        def and_fn(row, params):
            left = left_fn(row, params)
            if left is False:
                return False
            right = right_fn(row, params)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        return _fold(and_fn, const)
    if op == "OR":
        def or_fn(row, params):
            left = left_fn(row, params)
            if left is True:
                return True
            right = right_fn(row, params)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        return _fold(or_fn, const)
    if op == "=":
        def eq_fn(row, params):
            return sql_eq(left_fn(row, params), right_fn(row, params))
        return _fold(eq_fn, const)
    if op == "<>":
        def ne_fn(row, params):
            verdict = sql_eq(left_fn(row, params), right_fn(row, params))
            return None if verdict is None else not verdict
        return _fold(ne_fn, const)
    if op in ("<", "<=", ">", ">="):
        # Bake the comparison verdict in: one sql_compare, one test.
        if op == "<":
            test = lambda cmp: cmp < 0
        elif op == "<=":
            test = lambda cmp: cmp <= 0
        elif op == ">":
            test = lambda cmp: cmp > 0
        else:
            test = lambda cmp: cmp >= 0
        def cmp_fn(row, params):
            cmp = sql_compare(left_fn(row, params), right_fn(row, params))
            return None if cmp is None else test(cmp)
        return _fold(cmp_fn, const)
    if op == "LIKE":
        def like_fn(row, params):
            right = right_fn(row, params)
            if right is None:
                return None
            return like_match(left_fn(row, params), str(right))
        return _fold(like_fn, const)
    if op in ("+", "-", "*", "/"):
        if op == "+":
            arith = lambda a, b: a + b
        elif op == "-":
            arith = lambda a, b: a - b
        elif op == "*":
            arith = lambda a, b: a * b
        else:
            arith = lambda a, b: None if b == 0 else a / b
        def arith_fn(row, params):
            left = left_fn(row, params)
            right = right_fn(row, params)
            if left is None or right is None:
                return None
            return arith(left, right)
        return _fold(arith_fn, const)
    raise SqlError(f"unknown operator {op}")


def _truthy(value: Any) -> bool:
    # Same verdicts as executor._truthy (0/0.0 compare equal to False).
    return value is True or (value not in (None, False) and bool(value))


# -- plan-node compilation ----------------------------------------------------
# Every compiled node is a closure (ctx, outer_row=()) -> generator that
# follows the executor protocol. Lock acquisition is inlined (the fast
# granted path avoids a sub-generator per request) but performs exactly
# the interpreter's sequence of LockManager calls.


def _scan_lock_modes(exclusive: bool) -> Tuple[LockMode, LockMode]:
    if exclusive:
        return LockMode.IX, LockMode.X
    return LockMode.IS, LockMode.S


def _compile_seq_scan(plan: p.SeqScan, with_rids: bool) -> NodeFn:
    table_name = plan.binding.table
    lock_exclusive = plan.lock_exclusive
    table_res = ("tbl", plan.db, table_name)
    pk_positions = plan.binding.schema.pk_positions()
    table_mode = LockMode.X if lock_exclusive else LockMode.S

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()) -> Generator:
        table = ctx.database.table(table_name)
        cost = ctx.cost
        nonlocking = ctx.nonlocking_reads and not lock_exclusive
        if not nonlocking:
            txn_id = ctx.txn.txn_id
            if not ctx.locks.try_reentrant(txn_id, table_res, table_mode):
                request = ctx.locks.acquire(txn_id, table_res, table_mode)
                if not request.granted:
                    cost.lock_waits += 1
                    yield request
                    if not request.granted:
                        raise request.error or RuntimeError(
                            "lock wait failed")
        ctx.touch(table.heap_pages())
        history = ctx.history
        committed_view = ctx.committed_view
        for rid, row in list(table.scan()):
            if nonlocking:
                row = committed_view(table_name, rid, row)
                if row is None:
                    continue
            cost.rows_scanned += 1
            if history is not None:
                key = (tuple(row[i] for i in pk_positions)
                       if pk_positions else (rid,))
                history.record_read(ctx.txn.txn_id,
                                    (plan.db, table_name, key))
            yield (rid, row) if with_rids else row

    return run


def _compile_fetch_loop(plan, with_rids: bool):
    """Shared per-rid fetch: lock, re-check, charge page, emit.

    Returns a generator function ``fetch(ctx, table, rids)`` mirroring the
    interpreter's ``_fetch_row`` applied to each rid in order.
    """
    table_name = plan.binding.table
    row_mode = _scan_lock_modes(plan.lock_exclusive)[1]
    pk_positions = plan.binding.schema.pk_positions()
    row_res_prefix = ("row", plan.db, table_name)
    exclusive = row_mode is LockMode.X

    def fetch(ctx: ExecContext, table, rids) -> Generator:
        cost = ctx.cost
        locks = ctx.locks
        try_reentrant = locks.try_reentrant
        txn_id = ctx.txn.txn_id
        access = ctx.pool.access
        history = ctx.history
        nonlocking_s = ctx.nonlocking_reads and not exclusive
        get = table.get
        heap_page = table.heap_page
        for rid in rids:
            row = get(rid)
            if row is None:
                continue
            if nonlocking_s:
                row = ctx.committed_view(table_name, rid, row)
                if row is None:
                    continue
            else:
                resource = row_res_prefix + (rid,)
                if try_reentrant(txn_id, resource, row_mode):
                    row = get(rid)
                    if row is None:
                        continue
                else:
                    request = locks.acquire(txn_id, resource, row_mode)
                    if not request.granted:
                        cost.lock_waits += 1
                        yield request
                        if not request.granted:
                            raise request.error or RuntimeError(
                                "lock wait failed")
                    row = get(rid)
                    if row is None:
                        continue  # deleted while we waited for the lock
            if access(heap_page(rid)):
                cost.cache_hits += 1
            else:
                cost.cache_misses += 1
            cost.rows_scanned += 1
            if history is not None:
                key = (tuple(row[i] for i in pk_positions)
                       if pk_positions else (rid,))
                history.record_read(txn_id, (plan.db, table_name, key))
            yield (rid, row) if with_rids else row

    return fetch


def _compile_index_eq_scan(plan: p.IndexEqScan, with_rids: bool) -> NodeFn:
    table_name = plan.binding.table
    index_name = plan.index.name
    key_fns = [compile_expr(e) for e in plan.key_exprs]
    full_key = len(plan.key_exprs) == len(plan.index.columns)
    table_res = ("tbl", plan.db, table_name)
    table_mode = _scan_lock_modes(plan.lock_exclusive)[0]
    lock_exclusive = plan.lock_exclusive
    fetch = _compile_fetch_loop(plan, with_rids)

    single_key = len(key_fns) == 1
    key_fn0 = key_fns[0] if key_fns else None

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()) -> Generator:
        table = ctx.database.table(table_name)
        if not (ctx.nonlocking_reads and not lock_exclusive):
            txn_id = ctx.txn.txn_id
            if not ctx.locks.try_reentrant(txn_id, table_res, table_mode):
                request = ctx.locks.acquire(txn_id, table_res, table_mode)
                if not request.granted:
                    ctx.cost.lock_waits += 1
                    yield request
                    if not request.granted:
                        raise request.error or RuntimeError(
                            "lock wait failed")
        params = ctx.params
        if single_key:
            key = (key_fn0(outer_row, params),)
        else:
            key = tuple(fn(outer_row, params) for fn in key_fns)
        index = table.indexes[index_name]
        cost = ctx.cost
        access = ctx.pool.access
        for page in table.index_pages(index_name, key):
            if access(page):
                cost.cache_hits += 1
            else:
                cost.cache_misses += 1
        if full_key:
            rids = index.search(key)
            rids.sort()
        else:
            rids = []
            klen = len(key)
            for found_key, key_rids in index.range_scan(key, None):
                if found_key[:klen] != key:
                    break
                rids.extend(sorted(key_rids))
        yield from fetch(ctx, table, rids)

    return run


def _compile_index_range_scan(plan: p.IndexRangeScan, with_rids: bool,
                              batch_size: int = None) -> NodeFn:
    table_name = plan.binding.table
    index_name = plan.index.name
    lo_fn = compile_expr(plan.lo) if plan.lo is not None else None
    hi_fn = compile_expr(plan.hi) if plan.hi is not None else None
    lo_inclusive, hi_inclusive = plan.lo_inclusive, plan.hi_inclusive
    single_column = len(plan.index.columns) == 1
    table_res = ("tbl", plan.db, table_name)
    table_mode = _scan_lock_modes(plan.lock_exclusive)[0]
    lock_exclusive = plan.lock_exclusive
    db_name = plan.db
    if batch_size is None:
        fetch = _compile_fetch_loop(plan, with_rids)
    else:
        fetch = _compile_fetch_batches(plan, batch_size)

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()) -> Generator:
        table = ctx.database.table(table_name)
        if not (ctx.nonlocking_reads and not lock_exclusive):
            txn_id = ctx.txn.txn_id
            if not ctx.locks.try_reentrant(txn_id, table_res, table_mode):
                request = ctx.locks.acquire(txn_id, table_res, table_mode)
                if not request.granted:
                    ctx.cost.lock_waits += 1
                    yield request
                    if not request.granted:
                        raise request.error or RuntimeError(
                            "lock wait failed")
        params = ctx.params
        lo = (lo_fn(outer_row, params),) if lo_fn is not None else None
        hi = (hi_fn(outer_row, params),) if hi_fn is not None else None
        index = table.indexes[index_name]
        matches: List[int] = []
        probe_key = lo if lo is not None else hi
        ctx.touch(table.index_pages(index_name, probe_key or ()))
        if single_column:
            for _, key_rids in index.range_scan(lo, hi, lo_inclusive,
                                                hi_inclusive):
                matches.extend(sorted(key_rids))
        else:
            for found_key, key_rids in index.range_scan(lo, None):
                if hi is not None:
                    cmp = sql_compare(found_key[0], hi[0])
                    if cmp is None or cmp > 0 or (cmp == 0
                                                  and not hi_inclusive):
                        break
                matches.extend(sorted(key_rids))
        extra_leaves = max(0, len(matches)
                           // max(1, ctx.database.config.rows_per_page))
        ctx.touch((db_name, table_name, "ix", index_name, "leafrange", i)
                  for i in range(extra_leaves))
        yield from fetch(ctx, table, matches)

    return run


def _compile_filter(plan: p.Filter, with_rids: bool,
                    opts: CompileOptions) -> NodeFn:
    child = _compile_node(plan.child, with_rids, opts)
    pred = compile_expr(plan.predicate)

    if with_rids:
        def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
            params = ctx.params
            for item in child(ctx, outer_row):
                if isinstance(item, LockRequest):
                    yield item
                elif _truthy(pred(item[1], params)):
                    yield item
    else:
        def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
            params = ctx.params
            for item in child(ctx, outer_row):
                if isinstance(item, LockRequest):
                    yield item
                elif _truthy(pred(item, params)):
                    yield item

    return run


def _compile_projector(exprs: List[n.Expr]) -> ExprFn:
    """Compile a SELECT list to one ``(row, params) -> tuple`` closure.

    Pure-slot projections — the common case for every TPC-W template —
    become an ``itemgetter``; everything else evaluates per-expression
    closures.
    """
    if exprs and all(isinstance(e, (p.Slot, p.AggSlot)) for e in exprs):
        indices = [e.index for e in exprs]
        if len(indices) == 1:
            index = indices[0]
            return lambda row, params: (row[index],)
        getter = itemgetter(*indices)
        return lambda row, params: getter(row)
    expr_fns = [compile_expr(e) for e in exprs]
    return lambda row, params: tuple(fn(row, params) for fn in expr_fns)


def _compile_project(plan: p.Project, opts: CompileOptions) -> NodeFn:
    child = _compile_node(plan.child, False, opts)
    project = _compile_projector(plan.exprs)

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            else:
                yield project(item, params)

    return run


def _compile_index_lookup_join(plan: p.IndexLookupJoin,
                               opts: CompileOptions) -> NodeFn:
    outer = _compile_node(plan.outer, False, opts)
    inner_plan = plan.inner
    if isinstance(inner_plan, p.IndexEqScan):
        inner = _compile_index_eq_scan(inner_plan, with_rids=False)
    elif isinstance(inner_plan, p.IndexRangeScan):
        inner = _compile_index_range_scan(inner_plan, with_rids=False)
    else:
        raise SqlError("index lookup join requires an index scan inner")

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        for item in outer(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            for inner_item in inner(ctx, item):
                if isinstance(inner_item, LockRequest):
                    yield inner_item
                else:
                    yield item + inner_item

    return run


def _compile_hash_join(plan: p.HashJoin, opts: CompileOptions) -> NodeFn:
    outer = _compile_node(plan.outer, False, opts)
    inner = _compile_node(plan.inner, False, opts)
    outer_key_fns = [compile_expr(e) for e in plan.outer_keys]
    inner_key_fns = [compile_expr(e) for e in plan.inner_keys]
    pad = (None,) * plan.inner_offset

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        build = {}
        for item in inner(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            padded = pad + item
            key = tuple(fn(padded, params) for fn in inner_key_fns)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(item)
        for item in outer(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            key = tuple(fn(item, params) for fn in outer_key_fns)
            if any(v is None for v in key):
                continue
            for inner_row in build.get(key, ()):
                yield item + inner_row

    return run


def _compile_cross_join(plan: p.CrossJoin, opts: CompileOptions) -> NodeFn:
    outer = _compile_node(plan.outer, False, opts)
    inner = _compile_node(plan.inner, False, opts)

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        inner_rows = []
        for item in inner(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            else:
                inner_rows.append(item)
        for item in outer(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            for inner_row in inner_rows:
                yield item + inner_row

    return run


# Aggregate accumulators compile to (make, update, result) closure
# triples; group state is a list of per-aggregate state lists.


def _compile_agg(item: p.AggItem):
    if item.star:
        def make_star():
            return [0]
        def update_star(state, row, params):
            state[0] += 1
        def result_star(state):
            return state[0]
        return make_star, update_star, result_star

    arg_fn = compile_expr(item.arg)
    distinct = item.distinct
    func = item.func

    if func == "COUNT":
        def make():
            return [0, set() if distinct else None]
        def update(state, row, params):
            value = arg_fn(row, params)
            if value is None:
                return
            if distinct:
                if value in state[1]:
                    return
                state[1].add(value)
            state[0] += 1
        def result(state):
            return state[0]
        return make, update, result

    if func in ("SUM", "AVG"):
        average = func == "AVG"
        def make():
            # Integer zero: SUM over INTEGER columns stays an int.
            return [0, 0, set() if distinct else None]
        def update(state, row, params):
            value = arg_fn(row, params)
            if value is None:
                return
            if distinct:
                if value in state[2]:
                    return
                state[2].add(value)
            state[0] += 1
            state[1] += value
        def result(state):
            if not state[0]:
                return None
            return state[1] / state[0] if average else state[1]
        return make, update, result

    minimum = func == "MIN"
    def make_best():
        return [None, set() if distinct else None]
    def update_best(state, row, params):
        value = arg_fn(row, params)
        if value is None:
            return
        if distinct:
            if value in state[1]:
                return
            state[1].add(value)
        best = state[0]
        if best is None or (value < best if minimum else value > best):
            state[0] = value
    def result_best(state):
        return state[0]
    return make_best, update_best, result_best


def _compile_aggregate(plan: p.Aggregate, opts: CompileOptions) -> NodeFn:
    if opts.batch:
        source = _batch_source(plan.child, opts)
        if source is not None:
            return _compile_aggregate_batches(plan, source[0])
    child = _compile_node(plan.child, False, opts)
    group_fns = [compile_expr(g) for g in plan.group_exprs]
    specs = [_compile_agg(a) for a in plan.aggs]
    makes = [s[0] for s in specs]
    updates = [s[1] for s in specs]
    results = [s[2] for s in specs]
    global_agg = not plan.group_exprs

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        groups = {}
        order = []
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            key = tuple(fn(item, params) for fn in group_fns)
            states = groups.get(key)
            if states is None:
                states = groups[key] = [make() for make in makes]
                order.append(key)
            for update, state in zip(updates, states):
                update(state, item, params)
        if not groups and global_agg:
            groups[()] = [make() for make in makes]
            order.append(())
        for key in order:
            states = groups[key]
            yield key + tuple(result(state)
                              for result, state in zip(results, states))

    return run


def _compile_sort(plan: p.Sort, opts: CompileOptions) -> NodeFn:
    child = _compile_node(plan.child, False, opts)
    key_specs = [(compile_expr(e), descending) for e, descending in plan.keys]

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        rows = []
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            else:
                rows.append(item)
        # One stable pass per key, applied last-key-first, gives the
        # lexicographic multi-key order of the interpreter's comparator.
        # NULLs map to (False, 0) so they sort before every value
        # ascending and after every value descending (reverse=True keeps
        # the tie order, matching cmp_to_key's treatment of NULL pairs).
        for key_fn, descending in reversed(key_specs):
            def sort_key(row, fn=key_fn):
                value = fn(row, params)
                if value is None:
                    return (False, 0)
                return (True, value)
            rows.sort(key=sort_key, reverse=descending)
        yield from rows

    return run


class _Descending:
    """Key part that inverts comparison order inside a sort key tuple."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def _compile_topn(sort_plan: p.Sort, project: Optional[ExprFn],
                  limit: int, offset: int, opts: CompileOptions) -> NodeFn:
    """Fused ``Limit(Sort)`` — a bounded top-N instead of a full sort.

    ``heapq.nsmallest`` is documented equivalent to ``sorted(...)[:n]``
    (stable), so the emitted prefix is identical to sort-then-limit. The
    composite key reproduces the layered stable sorts of
    :func:`_compile_sort`: NULL maps below every value, and descending
    keys wrap in :class:`_Descending`.
    """
    child = _compile_node(sort_plan.child, False, opts)
    key_specs = [(compile_expr(e), descending)
                 for e, descending in sort_plan.keys]
    count = limit + offset

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        rows = []
        append = rows.append
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            else:
                append(item)

        def sort_key(row):
            key = []
            for fn, descending in key_specs:
                value = fn(row, params)
                part = (False, 0) if value is None else (True, value)
                key.append(_Descending(part) if descending else part)
            return tuple(key)

        top = heapq.nsmallest(count, rows, key=sort_key)[offset:]
        if project is None:
            yield from top
        else:
            for row in top:
                yield project(row, params)

    return run


def _compile_limit(plan: p.Limit, opts: CompileOptions) -> NodeFn:
    limit, offset = plan.limit, plan.offset
    if limit is not None:
        if isinstance(plan.child, p.Sort):
            return _compile_topn(plan.child, None, limit, offset, opts)
        if (isinstance(plan.child, p.Project)
                and isinstance(plan.child.child, p.Sort)):
            projector = _compile_projector(plan.child.exprs)
            return _compile_topn(plan.child.child, projector, limit,
                                 offset, opts)
        # An unfused LIMIT stops pulling once the cap is reached, and the
        # interpreter's per-row scan count reflects exactly where it
        # stopped. A batched child scans a batch at a time, so its
        # rows_scanned would run ahead — keep the child row-at-a-time.
        opts = CompileOptions(batch=False, batch_size=opts.batch_size)
    child = _compile_node(plan.child, False, opts)

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        skipped = 0
        emitted = 0
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            if skipped < offset:
                skipped += 1
                continue
            if limit is not None and emitted >= limit:
                return
            emitted += 1
            yield item

    return run


def _compile_distinct(plan: p.Distinct, opts: CompileOptions) -> NodeFn:
    child = _compile_node(plan.child, False, opts)

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        seen = set()
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            elif item not in seen:
                seen.add(item)
                yield item

    return run


def _compile_node(plan: p.Plan, with_rids: bool,
                  opts: CompileOptions) -> NodeFn:
    """Compile one read-plan node (``with_rids`` for DML source trees)."""
    if not with_rids and opts.batch:
        source = _batch_source(plan, opts)
        if source is not None:
            return _flatten_batches(source[0])
    if isinstance(plan, p.SeqScan):
        return _compile_seq_scan(plan, with_rids)
    if isinstance(plan, p.IndexEqScan):
        return _compile_index_eq_scan(plan, with_rids)
    if isinstance(plan, p.IndexRangeScan):
        return _compile_index_range_scan(plan, with_rids)
    if isinstance(plan, p.Filter):
        return _compile_filter(plan, with_rids, opts)
    if with_rids:
        raise SqlError(f"invalid DML source node {type(plan).__name__}")
    if isinstance(plan, p.IndexLookupJoin):
        return _compile_index_lookup_join(plan, opts)
    if isinstance(plan, p.HashJoin):
        return _compile_hash_join(plan, opts)
    if isinstance(plan, p.CrossJoin):
        return _compile_cross_join(plan, opts)
    if isinstance(plan, p.Project):
        return _compile_project(plan, opts)
    if isinstance(plan, p.Aggregate):
        return _compile_aggregate(plan, opts)
    if isinstance(plan, p.Sort):
        return _compile_sort(plan, opts)
    if isinstance(plan, p.Limit):
        return _compile_limit(plan, opts)
    if isinstance(plan, p.Distinct):
        return _compile_distinct(plan, opts)
    raise SqlError(f"cannot compile plan node {type(plan).__name__}")


# -- batch (columnar) execution ----------------------------------------------
# The hot read path — Filter*(SeqScan | IndexRangeScan) at slot offset
# zero — compiles to operators that move Batch blocks instead of single
# rows. Everything observable (lock acquisition order, buffer-pool
# touches, cost counters, history records) is kept identical to the
# row-at-a-time code; only the shape of the Python loops changes.


def _compile_seq_scan_batches(plan: p.SeqScan, batch_size: int) -> NodeFn:
    table_name = plan.binding.table
    lock_exclusive = plan.lock_exclusive
    table_res = ("tbl", plan.db, table_name)
    pk_positions = plan.binding.schema.pk_positions()
    table_mode = LockMode.X if lock_exclusive else LockMode.S
    db_name = plan.db

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()) -> Generator:
        table = ctx.database.table(table_name)
        cost = ctx.cost
        nonlocking = ctx.nonlocking_reads and not lock_exclusive
        if not nonlocking:
            txn_id = ctx.txn.txn_id
            if not ctx.locks.try_reentrant(txn_id, table_res, table_mode):
                request = ctx.locks.acquire(txn_id, table_res, table_mode)
                if not request.granted:
                    cost.lock_waits += 1
                    yield request
                    if not request.granted:
                        raise request.error or RuntimeError(
                            "lock wait failed")
        ctx.touch(table.heap_pages())
        history = ctx.history
        if history is None and not nonlocking:
            # Rowless fast path: the table lock covers every row, nothing
            # is recorded per row, so the heap can be sliced wholesale.
            rows = table.scan_rows()
            cost.rows_scanned += len(rows)
            for start in range(0, len(rows), batch_size):
                yield Batch(rows[start:start + batch_size])
            return
        committed_view = ctx.committed_view
        txn_id = ctx.txn.txn_id
        buf: List[Tuple[Any, ...]] = []
        for rid, row in list(table.scan()):
            if nonlocking:
                row = committed_view(table_name, rid, row)
                if row is None:
                    continue
            cost.rows_scanned += 1
            if history is not None:
                key = (tuple(row[i] for i in pk_positions)
                       if pk_positions else (rid,))
                history.record_read(txn_id, (db_name, table_name, key))
            buf.append(row)
            if len(buf) >= batch_size:
                yield Batch(buf)
                buf = []
        if buf:
            yield Batch(buf)

    return run


def _compile_fetch_batches(plan, batch_size: int):
    """Batched variant of :func:`_compile_fetch_loop`.

    Performs the exact per-rid lock/re-check/page-charge sequence of the
    row loop but accumulates surviving rows into Batches, flushing the
    buffer before any lock wait is surfaced.
    """
    table_name = plan.binding.table
    row_mode = _scan_lock_modes(plan.lock_exclusive)[1]
    pk_positions = plan.binding.schema.pk_positions()
    row_res_prefix = ("row", plan.db, table_name)
    exclusive = row_mode is LockMode.X
    db_name = plan.db

    def fetch(ctx: ExecContext, table, rids) -> Generator:
        cost = ctx.cost
        locks = ctx.locks
        try_reentrant = locks.try_reentrant
        txn_id = ctx.txn.txn_id
        access = ctx.pool.access
        history = ctx.history
        nonlocking_s = ctx.nonlocking_reads and not exclusive
        get = table.get
        heap_page = table.heap_page
        buf: List[Tuple[Any, ...]] = []
        for rid in rids:
            row = get(rid)
            if row is None:
                continue
            if nonlocking_s:
                row = ctx.committed_view(table_name, rid, row)
                if row is None:
                    continue
            else:
                resource = row_res_prefix + (rid,)
                if try_reentrant(txn_id, resource, row_mode):
                    row = get(rid)
                    if row is None:
                        continue
                else:
                    if buf:
                        yield Batch(buf)
                        buf = []
                    request = locks.acquire(txn_id, resource, row_mode)
                    if not request.granted:
                        cost.lock_waits += 1
                        yield request
                        if not request.granted:
                            raise request.error or RuntimeError(
                                "lock wait failed")
                    row = get(rid)
                    if row is None:
                        continue  # deleted while we waited for the lock
            if access(heap_page(rid)):
                cost.cache_hits += 1
            else:
                cost.cache_misses += 1
            cost.rows_scanned += 1
            if history is not None:
                key = (tuple(row[i] for i in pk_positions)
                       if pk_positions else (rid,))
                history.record_read(txn_id, (db_name, table_name, key))
            buf.append(row)
            if len(buf) >= batch_size:
                yield Batch(buf)
                buf = []
        if buf:
            yield Batch(buf)

    return fetch


# Columnar predicate compilation. A conjunct compiles to a closure
# (batch, sel, params) -> sel' that narrows a selection vector (a list of
# row indices into the batch). Comparisons against values whose type
# matches the column's storage class use native Python operators (the
# storage layer guarantees homogeneous column types); everything else
# falls back to sql_compare / the compiled row predicate, preserving the
# interpreter's exact verdicts and error behavior.

_CMP_TESTS = {
    "<": lambda cmp: cmp < 0,
    "<=": lambda cmp: cmp <= 0,
    ">": lambda cmp: cmp > 0,
    ">=": lambda cmp: cmp >= 0,
}
_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "<>": "<>"}


def _column_is_numeric(schema: TableSchema, index: int) -> Optional[bool]:
    if index >= len(schema.columns):
        return None
    return schema.columns[index].sql_type in (SqlType.INTEGER, SqlType.FLOAT)


def _value_matches(numeric_column: bool, value: Any) -> bool:
    if numeric_column:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    return isinstance(value, str)


def _slot_vs_value(expr: n.Expr):
    """Normalize ``slot OP value`` / ``value OP slot`` comparisons."""
    if not (isinstance(expr, n.BinaryOp) and expr.op in _FLIP_OP):
        return None
    left, right = expr.left, expr.right
    if type(left) is p.Slot and isinstance(right, (n.Literal, n.Param)):
        return left.index, expr.op, right
    if type(right) is p.Slot and isinstance(left, (n.Literal, n.Param)):
        return right.index, _FLIP_OP[expr.op], left
    return None


def _and_conjuncts(expr: n.Expr) -> List[n.Expr]:
    if isinstance(expr, n.BinaryOp) and expr.op == "AND":
        return _and_conjuncts(expr.left) + _and_conjuncts(expr.right)
    return [expr]


def _compile_columnar_pred(conjunct: n.Expr, schema: TableSchema):
    """Compile one conjunct to a selection-vector transform."""
    match = _slot_vs_value(conjunct)
    if match is not None:
        index, op, value_expr = match
        value_fn = compile_expr(value_expr)
        if op == "=":
            # Native == matches sql_eq for every non-NULL pair: a type
            # mismatch yields False either way.
            def eq_pred(batch, sel, params):
                rv = value_fn((), params)
                if rv is None:
                    return []
                col = batch.column(index)
                return [i for i in sel
                        if col[i] is not None and col[i] == rv]
            return eq_pred
        if op == "<>":
            def ne_pred(batch, sel, params):
                rv = value_fn((), params)
                if rv is None:
                    return []
                col = batch.column(index)
                return [i for i in sel
                        if col[i] is not None and col[i] != rv]
            return ne_pred
        numeric = _column_is_numeric(schema, index)
        if numeric is not None:
            test = _CMP_TESTS[op]
            if op == "<":
                def native(col, sel, rv):
                    return [i for i in sel
                            if col[i] is not None and col[i] < rv]
            elif op == "<=":
                def native(col, sel, rv):
                    return [i for i in sel
                            if col[i] is not None and col[i] <= rv]
            elif op == ">":
                def native(col, sel, rv):
                    return [i for i in sel
                            if col[i] is not None and col[i] > rv]
            else:
                def native(col, sel, rv):
                    return [i for i in sel
                            if col[i] is not None and col[i] >= rv]

            def cmp_pred(batch, sel, params):
                rv = value_fn((), params)
                if rv is None:
                    return []
                col = batch.column(index)
                if _value_matches(numeric, rv):
                    return native(col, sel, rv)
                out = []
                for i in sel:
                    cmp = sql_compare(col[i], rv)
                    if cmp is not None and test(cmp):
                        out.append(i)
                return out
            return cmp_pred
    if isinstance(conjunct, n.IsNull) and type(conjunct.expr) is p.Slot:
        index = conjunct.expr.index
        if conjunct.negated:
            def notnull_pred(batch, sel, params):
                col = batch.column(index)
                return [i for i in sel if col[i] is not None]
            return notnull_pred

        def isnull_pred(batch, sel, params):
            col = batch.column(index)
            return [i for i in sel if col[i] is None]
        return isnull_pred
    if (isinstance(conjunct, n.Between)
            and type(conjunct.expr) is p.Slot
            and isinstance(conjunct.low, (n.Literal, n.Param))
            and isinstance(conjunct.high, (n.Literal, n.Param))):
        index = conjunct.expr.index
        low_fn = compile_expr(conjunct.low)
        high_fn = compile_expr(conjunct.high)
        negated = conjunct.negated
        numeric = _column_is_numeric(schema, index)

        def between_pred(batch, sel, params):
            lo = low_fn((), params)
            hi = high_fn((), params)
            if lo is None or hi is None:
                return []
            col = batch.column(index)
            if (numeric is not None and _value_matches(numeric, lo)
                    and _value_matches(numeric, hi)):
                if negated:
                    return [i for i in sel if col[i] is not None
                            and not lo <= col[i] <= hi]
                return [i for i in sel if col[i] is not None
                        and lo <= col[i] <= hi]
            out = []
            for i in sel:
                lo_cmp = sql_compare(col[i], lo)
                hi_cmp = sql_compare(col[i], hi)
                if lo_cmp is None or hi_cmp is None:
                    continue
                if (lo_cmp >= 0 and hi_cmp <= 0) != negated:
                    out.append(i)
            return out
        return between_pred

    row_pred = compile_expr(conjunct)

    def fallback_pred(batch, sel, params):
        rows = batch.rows
        return [i for i in sel if _truthy(row_pred(rows[i], params))]
    return fallback_pred


def _compile_filter_batches(plan: p.Filter, child: NodeFn,
                            schema: TableSchema) -> NodeFn:
    preds = [_compile_columnar_pred(c, schema)
             for c in _and_conjuncts(plan.predicate)]

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
                continue
            rows = item.rows
            sel = range(len(rows))
            for pred in preds:
                sel = pred(item, sel, params)
                if not sel:
                    break
            if sel:
                if len(sel) == len(rows):
                    yield item
                else:
                    yield Batch([rows[i] for i in sel])

    return run


def _batch_source(plan: p.Plan, opts: CompileOptions):
    """Batch-compile a ``Filter*(SeqScan | IndexRangeScan)`` chain.

    Returns ``(node_fn, table_schema)`` — the node yields Batches — or
    None when the subtree is not batchable. Only chains rooted at slot
    offset zero qualify: their slot indexes coincide with column
    positions, which the columnar predicate compiler relies on.
    """
    if isinstance(plan, p.SeqScan):
        if plan.binding.offset != 0:
            return None
        return (_compile_seq_scan_batches(plan, opts.batch_size),
                plan.binding.schema)
    if isinstance(plan, p.IndexRangeScan):
        if plan.binding.offset != 0:
            return None
        return (_compile_index_range_scan(plan, False, opts.batch_size),
                plan.binding.schema)
    if isinstance(plan, p.Filter):
        source = _batch_source(plan.child, opts)
        if source is None:
            return None
        child_fn, schema = source
        return _compile_filter_batches(plan, child_fn, schema), schema
    return None


def _flatten_batches(child: NodeFn) -> NodeFn:
    """Adapt a batch producer to the row protocol for row consumers."""

    def run(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        for item in child(ctx, outer_row):
            if isinstance(item, LockRequest):
                yield item
            else:
                yield from item.rows

    return run


# Batched aggregation: simple aggregates (COUNT(*), and COUNT / SUM /
# AVG / MIN / MAX over a bare column) get flat state lists and tight
# loops over batch rows; a global aggregate goes fully columnar with
# the sum/min/max builtins. Anything else — DISTINCT aggregates,
# expression arguments, expression group keys — runs the generic
# closure machinery over batch rows, still skipping the per-row
# generator relay.

_AGG_STAR, _AGG_COUNT, _AGG_SUM, _AGG_AVG, _AGG_MIN, _AGG_MAX = range(6)


def _simple_agg_spec(item: p.AggItem):
    if item.star:
        return (_AGG_STAR, -1)
    if type(item.arg) is not p.Slot:
        return None
    index = item.arg.index
    # DISTINCT is a no-op for MIN/MAX; it changes COUNT/SUM/AVG.
    if item.func == "MIN":
        return (_AGG_MIN, index)
    if item.func == "MAX":
        return (_AGG_MAX, index)
    if item.distinct:
        return None
    if item.func == "COUNT":
        return (_AGG_COUNT, index)
    if item.func == "SUM":
        return (_AGG_SUM, index)
    if item.func == "AVG":
        return (_AGG_AVG, index)
    return None


def _simple_agg_result(kind: int, state: List[Any]) -> Any:
    if kind in (_AGG_STAR, _AGG_COUNT):
        return state[0]
    if kind == _AGG_SUM:
        return state[1] if state[0] else None
    if kind == _AGG_AVG:
        return state[1] / state[0] if state[0] else None
    return state[0]


def _compile_aggregate_batches(plan: p.Aggregate, child: NodeFn) -> NodeFn:
    specs = [_simple_agg_spec(a) for a in plan.aggs]
    simple_aggs = all(s is not None for s in specs)
    simple_groups = all(type(g) is p.Slot for g in plan.group_exprs)
    global_agg = not plan.group_exprs

    if simple_aggs and global_agg:
        templates = [[0] if k in (_AGG_STAR, _AGG_COUNT)
                     else [0, 0] if k in (_AGG_SUM, _AGG_AVG)
                     else [None]
                     for k, _ in specs]
        nspecs = len(specs)

        def run_global(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
            states = [list(t) for t in templates]
            for item in child(ctx):
                if isinstance(item, LockRequest):
                    yield item
                    continue
                nrows = len(item.rows)
                for si in range(nspecs):
                    kind, index = specs[si]
                    state = states[si]
                    if kind == _AGG_STAR:
                        state[0] += nrows
                        continue
                    col = item.column(index)
                    if kind == _AGG_COUNT:
                        state[0] += sum(1 for v in col if v is not None)
                        continue
                    vals = [v for v in col if v is not None]
                    if not vals:
                        continue
                    if kind in (_AGG_SUM, _AGG_AVG):
                        state[0] += len(vals)
                        state[1] += sum(vals)
                    elif kind == _AGG_MIN:
                        best = min(vals)
                        if state[0] is None or best < state[0]:
                            state[0] = best
                    else:
                        best = max(vals)
                        if state[0] is None or best > state[0]:
                            state[0] = best
            yield tuple(_simple_agg_result(specs[si][0], states[si])
                        for si in range(nspecs))

        return run_global

    if simple_aggs and simple_groups:
        group_idx = [g.index for g in plan.group_exprs]
        single = len(group_idx) == 1
        gi0 = group_idx[0] if single else None
        nspecs = len(specs)

        if single and nspecs == 1 and specs[0][0] == _AGG_STAR:
            # GROUP BY col + COUNT(*): plain value -> int dict.
            def run_counts(ctx: ExecContext,
                           outer_row: Tuple[Any, ...] = ()):
                counts = {}
                order = []
                get = counts.get
                for item in child(ctx):
                    if isinstance(item, LockRequest):
                        yield item
                        continue
                    for row in item.rows:
                        key = row[gi0]
                        count = get(key)
                        if count is None:
                            counts[key] = 1
                            order.append(key)
                        else:
                            counts[key] = count + 1
                for key in order:
                    yield (key, counts[key])

            return run_counts

        templates = [[0] if k in (_AGG_STAR, _AGG_COUNT)
                     else [0, 0] if k in (_AGG_SUM, _AGG_AVG)
                     else [None]
                     for k, _ in specs]

        def run_grouped(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
            groups = {}
            order = []
            get = groups.get
            for item in child(ctx):
                if isinstance(item, LockRequest):
                    yield item
                    continue
                for row in item.rows:
                    key = (row[gi0] if single
                           else tuple(row[i] for i in group_idx))
                    states = get(key)
                    if states is None:
                        states = groups[key] = [list(t) for t in templates]
                        order.append(key)
                    for si in range(nspecs):
                        kind, index = specs[si]
                        state = states[si]
                        if kind == _AGG_STAR:
                            state[0] += 1
                            continue
                        value = row[index]
                        if value is None:
                            continue
                        if kind == _AGG_COUNT:
                            state[0] += 1
                        elif kind in (_AGG_SUM, _AGG_AVG):
                            state[0] += 1
                            state[1] += value
                        elif kind == _AGG_MIN:
                            if state[0] is None or value < state[0]:
                                state[0] = value
                        else:
                            if state[0] is None or value > state[0]:
                                state[0] = value
            for key in order:
                states = groups[key]
                prefix = (key,) if single else key
                yield prefix + tuple(
                    _simple_agg_result(specs[si][0], states[si])
                    for si in range(nspecs))

        return run_grouped

    # Generic fallback: closure-based updates, batch rows as the feed.
    group_fns = [compile_expr(g) for g in plan.group_exprs]
    gen = [_compile_agg(a) for a in plan.aggs]
    makes = [g[0] for g in gen]
    updates = [g[1] for g in gen]
    results = [g[2] for g in gen]

    def run_generic(ctx: ExecContext, outer_row: Tuple[Any, ...] = ()):
        params = ctx.params
        groups = {}
        order = []
        for item in child(ctx):
            if isinstance(item, LockRequest):
                yield item
                continue
            for row in item.rows:
                key = tuple(fn(row, params) for fn in group_fns)
                states = groups.get(key)
                if states is None:
                    states = groups[key] = [make() for make in makes]
                    order.append(key)
                for update, state in zip(updates, states):
                    update(state, row, params)
        if not groups and global_agg:
            groups[()] = [make() for make in makes]
            order.append(())
        for key in order:
            states = groups[key]
            yield key + tuple(result(state)
                              for result, state in zip(results, states))

    return run_generic


# -- top-level statements -----------------------------------------------------


def _compile_select(plan: p.SelectPlan,
                    opts: CompileOptions) -> Callable[[ExecContext],
                                                      Generator]:
    column_names = plan.column_names
    if opts.batch:
        # Batched roots collect whole blocks at a time; a Project root
        # fuses its projector into the per-batch loop.
        if isinstance(plan.root, p.Project):
            source = _batch_source(plan.root.child, opts)
            if source is not None:
                child = source[0]
                project = _compile_projector(plan.root.exprs)

                def run_batched_project(ctx: ExecContext) -> Generator:
                    params = ctx.params
                    rows = []
                    extend = rows.extend
                    for item in child(ctx):
                        if isinstance(item, LockRequest):
                            yield item
                        else:
                            extend([project(row, params)
                                    for row in item.rows])
                    ctx.cost.rows_returned = len(rows)
                    return ExecResult(columns=column_names, rows=rows,
                                      rowcount=len(rows), cost=ctx.cost)

                return run_batched_project
        else:
            source = _batch_source(plan.root, opts)
            if source is not None:
                child = source[0]

                def run_batched(ctx: ExecContext) -> Generator:
                    rows = []
                    extend = rows.extend
                    for item in child(ctx):
                        if isinstance(item, LockRequest):
                            yield item
                        else:
                            extend(item.rows)
                    ctx.cost.rows_returned = len(rows)
                    return ExecResult(columns=column_names, rows=rows,
                                      rowcount=len(rows), cost=ctx.cost)

                return run_batched
    # A Project root fuses into the collection loop (row-by-row, same
    # evaluation order as the interpreter) — one generator layer fewer on
    # every SELECT.
    if isinstance(plan.root, p.Project):
        child = _compile_node(plan.root.child, False, opts)
        project = _compile_projector(plan.root.exprs)

        def run(ctx: ExecContext) -> Generator:
            params = ctx.params
            rows = []
            append = rows.append
            for item in child(ctx):
                if isinstance(item, LockRequest):
                    yield item
                else:
                    append(project(item, params))
            ctx.cost.rows_returned = len(rows)
            return ExecResult(columns=column_names, rows=rows,
                              rowcount=len(rows), cost=ctx.cost)

        return run

    root = _compile_node(plan.root, False, opts)

    def run(ctx: ExecContext) -> Generator:
        rows = []
        append = rows.append
        for item in root(ctx):
            if isinstance(item, LockRequest):
                yield item
            else:
                append(item)
        ctx.cost.rows_returned = len(rows)
        return ExecResult(columns=column_names, rows=rows,
                          rowcount=len(rows), cost=ctx.cost)

    return run


def _compile_insert(plan: p.InsertPlan) -> Callable[[ExecContext], Generator]:
    table_name = plan.table.name
    table_res = ("tbl", plan.db, table_name)
    row_res_prefix = ("row", plan.db, table_name)
    row_fns = [[compile_expr(e) for e in row_exprs]
               for row_exprs in plan.rows]
    pk_positions = plan.table.pk_positions()
    db_name = plan.db

    def run(ctx: ExecContext) -> Generator:
        table = ctx.database.table(table_name)
        request = ctx.locks.acquire(ctx.txn.txn_id, table_res, LockMode.IX)
        if not request.granted:
            ctx.cost.lock_waits += 1
            yield request
            if not request.granted:
                raise request.error or RuntimeError("lock wait failed")
        params = ctx.params
        txn = ctx.txn
        inserted = 0
        for fns in row_fns:
            values = tuple(fn((), params) for fn in fns)
            rid = table.insert(values)
            request = ctx.locks.acquire(txn.txn_id, row_res_prefix + (rid,),
                                        LockMode.X)
            if not request.granted:
                ctx.cost.lock_waits += 1
                yield request
                if not request.granted:
                    raise request.error or RuntimeError("lock wait failed")
            after = table.get(rid)
            ctx.wal.append(txn.txn_id, RecordType.INSERT, db=db_name,
                           table=table_name, rid=rid, after=after)
            txn.undo.append(UndoEntry(db_name, table_name, "insert",
                                      rid, None, after))
            ctx.mark_dirty(table_name, rid, None)
            txn.wrote = True
            if ctx.history is not None:
                key = (tuple(after[i] for i in pk_positions)
                       if pk_positions else (rid,))
                ctx.history.record_write(txn.txn_id,
                                         (db_name, table_name, key))
            ctx.touch([table.heap_page(rid)])
            ctx.touch(page for name in table.indexes
                      for page in table.index_pages(
                          name, table.index_key(table.schema.indexes[name],
                                                after)))
            inserted += 1
        ctx.cost.rows_returned = inserted
        return ExecResult(rowcount=inserted, cost=ctx.cost)

    return run


def _compile_update(plan: p.UpdatePlan,
                    opts: CompileOptions) -> Callable[[ExecContext],
                                                      Generator]:
    table_name = plan.binding.table
    source = _compile_node(plan.source, True, opts)
    assignment_fns = [(pos, compile_expr(expr))
                      for pos, expr in plan.assignments]
    pk_positions = plan.binding.schema.pk_positions()
    db_name = plan.db
    schema = plan.binding.schema
    # Index maintenance and PK checks hoisted to compile time: only
    # indexes whose key overlaps the assigned positions can move, and
    # the duplicate-PK probe is needed only when the PK is assigned.
    positions = tuple(sorted(set(pos for pos, _ in plan.assignments)))
    touched_indexes = schema.indexes_touching(positions)
    pk_affected = bool(set(positions) & set(pk_positions))
    # Assignments evaluate in statement order but coerce in position
    # order, matching the full-row path's error sequencing.
    item_order = sorted(range(len(assignment_fns)),
                        key=lambda i: assignment_fns[i][0])

    def run(ctx: ExecContext) -> Generator:
        table = ctx.database.table(table_name)
        targets = []
        for item in source(ctx):
            if isinstance(item, LockRequest):
                yield item
            else:
                targets.append(item)
        params = ctx.params
        txn = ctx.txn
        history = ctx.history
        undo_append = txn.undo.append
        updated = 0
        # WAL records are buffered per statement and landed in one batch
        # append: the loop below never yields, so no other transaction's
        # records can interleave, and the finally guarantees records for
        # rows already changed survive a mid-statement error.
        wal_entries = []
        try:
            for rid, row in targets:
                if table.get(rid) is None:
                    continue
                values = [fn(row, params) for _, fn in assignment_fns]
                items = [(assignment_fns[i][0], values[i])
                         for i in item_order]
                before, after = table.update_columns(
                    rid, items, touched_indexes, pk_affected)
                wal_entries.append((db_name, table_name, rid, before,
                                    after))
                undo_append(UndoEntry(db_name, table_name, "update",
                                      rid, before, after))
                ctx.mark_dirty(table_name, rid, before)
                txn.wrote = True
                if history is not None:
                    key = (tuple(after[i] for i in pk_positions)
                           if pk_positions else (rid,))
                    history.record_write(txn.txn_id,
                                         (db_name, table_name, key))
                ctx.touch([table.heap_page(rid)])
                updated += 1
        finally:
            if wal_entries:
                ctx.wal.append_batch(txn.txn_id, RecordType.UPDATE,
                                     wal_entries)
        ctx.cost.rows_returned = updated
        return ExecResult(rowcount=updated, cost=ctx.cost)

    return run


def _compile_delete(plan: p.DeletePlan,
                    opts: CompileOptions) -> Callable[[ExecContext],
                                                      Generator]:
    table_name = plan.binding.table
    source = _compile_node(plan.source, True, opts)
    pk_positions = plan.binding.schema.pk_positions()
    db_name = plan.db

    def run(ctx: ExecContext) -> Generator:
        table = ctx.database.table(table_name)
        targets = []
        for item in source(ctx):
            if isinstance(item, LockRequest):
                yield item
            else:
                targets.append(item)
        txn = ctx.txn
        history = ctx.history
        undo_append = txn.undo.append
        deleted = 0
        wal_entries = []
        try:
            for rid, row in targets:
                if table.get(rid) is None:
                    continue
                before = table.delete(rid)
                wal_entries.append((db_name, table_name, rid, before,
                                    None))
                undo_append(UndoEntry(db_name, table_name, "delete",
                                      rid, before, None))
                ctx.mark_dirty(table_name, rid, before)
                txn.wrote = True
                if history is not None:
                    key = (tuple(before[i] for i in pk_positions)
                           if pk_positions else (rid,))
                    history.record_write(txn.txn_id,
                                         (db_name, table_name, key))
                ctx.touch([table.heap_page(rid)])
                deleted += 1
        finally:
            if wal_entries:
                ctx.wal.append_batch(txn.txn_id, RecordType.DELETE,
                                     wal_entries)
        ctx.cost.rows_returned = deleted
        return ExecResult(rowcount=deleted, cost=ctx.cost)

    return run


def compile_statement(plan: p.Plan, options: CompileOptions = None
                      ) -> Callable[[ExecContext], Generator]:
    """Compile a top-level statement plan to a ``ctx -> generator`` closure.

    The returned closure follows the executor protocol: it yields
    :class:`LockRequest` objects on waits and returns an
    :class:`ExecResult` via ``StopIteration``.
    """
    opts = options if options is not None else CompileOptions()
    if isinstance(plan, p.SelectPlan):
        return _compile_select(plan, opts)
    if isinstance(plan, p.InsertPlan):
        return _compile_insert(plan)
    if isinstance(plan, p.UpdatePlan):
        return _compile_update(plan, opts)
    if isinstance(plan, p.DeletePlan):
        return _compile_delete(plan, opts)
    raise SqlError(f"cannot compile statement {type(plan).__name__}")
