"""Throughput, rejection, and deadlock accounting.

The paper reports: transactions per second (Figures 2-4, 9, Table 2),
deadlock rate (Figures 5-7), and the number of proactively rejected
transactions (Figure 8 and the availability SLA of Section 4.1).
:class:`MetricsCollector` accumulates these per database plus a
:class:`TimeSeries` view for the "during recovery" plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.trace import LatencyHistogram


@dataclass
class DbCounters:
    """Per-database transaction outcome counters."""

    committed: int = 0
    deadlocks: int = 0
    rejected: int = 0          # proactive rejections (Algorithm 1 / failures)
    overload_rejected: int = 0  # subset of rejected: admission control
    rollbacks: int = 0         # voluntary client rollbacks
    other_aborts: int = 0      # platform-initiated failure aborts
    response_time_total: float = 0.0

    @property
    def total_finished(self) -> int:
        return (self.committed + self.deadlocks + self.rejected
                + self.rollbacks + self.other_aborts)

    @property
    def mean_response_time(self) -> float:
        return (self.response_time_total / self.committed
                if self.committed else 0.0)

    def rejected_fraction(self) -> float:
        """Fraction of proactively rejected transactions (the SLA metric)."""
        total = self.total_finished
        return self.rejected / total if total else 0.0

    def overload_rejected_fraction(self) -> float:
        """Fraction rejected by admission control specifically."""
        total = self.total_finished
        return self.overload_rejected / total if total else 0.0


@dataclass
class FanoutStats:
    """Scatter/gather accounting for one coordinator broadcast label."""

    count: int = 0          # fan-outs issued
    total_width: int = 0    # branches across all fan-outs
    max_width: int = 0

    @property
    def mean_width(self) -> float:
        return self.total_width / self.count if self.count else 0.0


@dataclass
class NetworkCounters:
    """Fabric-level delivery and failure-detector accounting."""

    messages_sent: int = 0
    messages_dropped: int = 0      # random loss
    messages_cut: int = 0          # lost to a partition
    rpc_timeouts: int = 0          # controller-side per-message timeouts
    rpc_retries: int = 0           # retransmissions after a timeout
    false_suspicions: int = 0      # suspected or declared, but alive
    elections: int = 0             # consensus campaigns started
    leader_changes: int = 0        # elections won by a different node

    @property
    def delivered(self) -> int:
        return self.messages_sent - self.messages_dropped - self.messages_cut


@dataclass
class DrCounters:
    """Cross-colo disaster-recovery accounting (the platform tier)."""

    shipped: int = 0               # log entries sequenced for shipping
    applied: int = 0               # log entries applied on a standby
    dropped: int = 0               # log entries dropped instead of applied
    promotions: int = 0            # standby colos promoted to primary
    failbacks: int = 0             # re-protections onto a repaired colo
    false_suspicions: int = 0      # colo suspected/declared but alive


@dataclass
class DrPromotion:
    """One colo failover for one database.

    ``rpo_commits`` counts acknowledged commits that had not reached the
    standby at promotion time — the data-loss window. ``rto_s`` is the
    time from the declare to the first successful statement on the new
    primary; ``None`` until a client lands one.
    """

    db: str
    old_primary: str
    new_primary: str
    epoch: int
    declared_at: float
    rpo_commits: int
    rto_s: Optional[float] = None


class TimeSeries:
    """Events bucketed into fixed windows of simulated time."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = window
        self._buckets: Dict[int, float] = {}

    def add(self, when: float, amount: float = 1.0) -> None:
        self._buckets[int(when // self.window)] = (
            self._buckets.get(int(when // self.window), 0.0) + amount
        )

    def series(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """(window start time, total) pairs, gaps filled with zero."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        if until is not None:
            last = max(last, int(until // self.window))
        return [
            (bucket * self.window, self._buckets.get(bucket, 0.0))
            for bucket in range(0, last + 1)
        ]

    def rate_series(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """Like :meth:`series` but values divided by the window length."""
        return [(t, v / self.window) for t, v in self.series(until)]


class MetricsCollector:
    """Cluster-wide metrics: per-database counters plus time series."""

    def __init__(self, window: float = 10.0, resident_tenants: int = 0):
        # Cap on tenants with a fully-resident latency histogram (the
        # one per-tenant structure that grows with traffic — it keeps
        # every sample). Past the cap the least-recently-committing
        # tenant's histogram is summarised (counts + percentile
        # snapshot) and its samples dropped. 0 = unbounded, the
        # replay-identical default. Counters stay exact and resident
        # either way — they are a handful of ints per tenant.
        self.resident_tenants = resident_tenants
        self.db_latency_summaries: Dict[str, Dict[str, float]] = {}
        self.db_latency_evictions = 0
        self.per_db: Dict[str, DbCounters] = {}
        self.commits_over_time = TimeSeries(window)
        self.rejections_over_time = TimeSeries(window)
        self.deadlocks_over_time = TimeSeries(window)
        # Per-phase latency distributions fed by the cluster controller
        # ("write" = replica write ack, "prepare" = 2PC phase 1,
        # "commit" = 2PC phase 2, "txn" = begin-to-commit; fan-out
        # branches land under "branch:<label>").
        self.phase_latencies: Dict[str, LatencyHistogram] = {}
        # Per-database committed-transaction latency distributions, fed
        # by record_commit's response time — the tail-latency view of
        # noisy-neighbour isolation (per_db_summary surfaces these).
        self.db_latencies: Dict[str, LatencyHistogram] = {}
        # Coordinator broadcast widths per label ("prepare", "commit",
        # "commit-ro", "abort").
        self.fanouts: Dict[str, FanoutStats] = {}
        # Statement-classification cache evictions (LRU bound).
        self.stmt_cache_evictions: int = 0
        # Network-fabric accounting (only populated when the simulated
        # unreliable fabric is enabled): delivery counters plus observed
        # one-way latency per directed link ("src->dst").
        self.network = NetworkCounters()
        self.link_latencies: Dict[str, LatencyHistogram] = {}
        # Disaster-recovery accounting (only populated by the platform
        # tier's system controller): ship/apply counters plus one
        # :class:`DrPromotion` record per colo failover.
        self.dr = DrCounters()
        self.dr_promotions: List[DrPromotion] = []

    def db(self, name: str) -> DbCounters:
        if name not in self.per_db:
            self.per_db[name] = DbCounters()
        return self.per_db[name]

    def record_commit(self, db: str, when: float,
                      response_time: float = 0.0) -> None:
        counters = self.db(db)
        counters.committed += 1
        counters.response_time_total += response_time
        self.commits_over_time.add(when)
        histogram = self.db_latencies.get(db)
        if histogram is None:
            histogram = self.db_latencies[db] = LatencyHistogram()
        elif self.resident_tenants > 0:
            # Refresh recency (dict order doubles as the LRU order).
            del self.db_latencies[db]
            self.db_latencies[db] = histogram
        histogram.observe(response_time)
        if 0 < self.resident_tenants < len(self.db_latencies):
            self._evict_cold_histogram()

    def _evict_cold_histogram(self) -> None:
        """Summarise and drop the least-recently-committing tenant's
        latency histogram. The snapshot (count/mean/percentiles at
        eviction time) stays addressable through
        :meth:`per_db_summary`; if the tenant heats up again a fresh
        histogram starts from its next commit."""
        cold_db = next(iter(self.db_latencies))
        histogram = self.db_latencies.pop(cold_db)
        self.db_latency_summaries[cold_db] = histogram.summary()
        self.db_latency_evictions += 1

    def record_deadlock(self, db: str, when: float) -> None:
        self.db(db).deadlocks += 1
        self.deadlocks_over_time.add(when)

    def record_rejection(self, db: str, when: float) -> None:
        self.db(db).rejected += 1
        self.rejections_over_time.add(when)

    def record_overload_rejection(self, db: str, when: float) -> None:
        """An admission-control rejection: a proactive rejection (it
        counts against the tenant's ``max_rejected_fraction``) that is
        also tallied separately, so overload throttling is
        distinguishable from failure- and copy-window rejections."""
        counters = self.db(db)
        counters.rejected += 1
        counters.overload_rejected += 1
        self.rejections_over_time.add(when)

    def record_rollback(self, db: str) -> None:
        """A voluntary client ROLLBACK (not a failure abort)."""
        self.db(db).rollbacks += 1

    def record_other_abort(self, db: str) -> None:
        self.db(db).other_aborts += 1

    def record_phase_latency(self, phase: str, seconds: float) -> None:
        histogram = self.phase_latencies.get(phase)
        if histogram is None:
            histogram = self.phase_latencies[phase] = LatencyHistogram()
        histogram.observe(seconds)

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """{phase: {count, mean, p50, p95, p99}} for every observed phase."""
        return {phase: histogram.summary()
                for phase, histogram in sorted(self.phase_latencies.items())}

    def per_db_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant outcome and latency breakdown, keyed by db name.

        One row per database that finished any transaction: the outcome
        counters, the SLA's rejected fraction (and the admission-only
        subset), and the committed-transaction latency percentiles —
        overload isolation made observable without trace parsing.
        """
        summary: Dict[str, Dict[str, object]] = {}
        for db, counters in sorted(self.per_db.items()):
            histogram = self.db_latencies.get(db)
            summary[db] = {
                "committed": counters.committed,
                "deadlocks": counters.deadlocks,
                "rejected": counters.rejected,
                "overload_rejected": counters.overload_rejected,
                "rollbacks": counters.rollbacks,
                "other_aborts": counters.other_aborts,
                "total_finished": counters.total_finished,
                "rejected_fraction": counters.rejected_fraction(),
                "overload_rejected_fraction":
                    counters.overload_rejected_fraction(),
                "latency": (histogram.summary() if histogram is not None
                            else self.db_latency_summaries.get(db)),
                "latency_summarised": (histogram is None
                                       and db in self.db_latency_summaries),
            }
        return summary

    def record_fanout(self, label: str, width: int,
                      branch_latency: Optional[float] = None) -> None:
        """One coordinator broadcast of ``width`` branches.

        Per-branch latencies arrive separately (one call per settled
        branch with ``width=0``) and feed the ``branch:<label>`` phase
        histogram.
        """
        stats = self.fanouts.get(label)
        if stats is None:
            stats = self.fanouts[label] = FanoutStats()
        if width > 0:
            stats.count += 1
            stats.total_width += width
            stats.max_width = max(stats.max_width, width)
        if branch_latency is not None:
            self.record_phase_latency(f"branch:{label}", branch_latency)

    def fanout_summary(self) -> Dict[str, Dict[str, float]]:
        """{label: {count, mean_width, max_width}} per broadcast label."""
        return {label: {"count": stats.count,
                        "mean_width": stats.mean_width,
                        "max_width": stats.max_width}
                for label, stats in sorted(self.fanouts.items())}

    def record_stmt_cache_eviction(self) -> None:
        self.stmt_cache_evictions += 1

    # -- network fabric --------------------------------------------------------

    def record_message_sent(self) -> None:
        self.network.messages_sent += 1

    def record_message_dropped(self, cut: bool = False) -> None:
        if cut:
            self.network.messages_cut += 1
        else:
            self.network.messages_dropped += 1

    def record_rpc_timeout(self, retry: bool = False) -> None:
        self.network.rpc_timeouts += 1
        if retry:
            self.network.rpc_retries += 1

    def record_false_suspicion(self) -> None:
        self.network.false_suspicions += 1

    def record_election(self) -> None:
        """A consensus controller replica started a leader campaign."""
        self.network.elections += 1

    def record_leader_change(self) -> None:
        """An election was won by a node other than the previous leader."""
        self.network.leader_changes += 1

    def record_link_latency(self, src: str, dst: str,
                            seconds: float) -> None:
        key = f"{src}->{dst}"
        histogram = self.link_latencies.get(key)
        if histogram is None:
            histogram = self.link_latencies[key] = LatencyHistogram()
        histogram.observe(seconds)

    def network_summary(self) -> Dict[str, object]:
        """Fabric counters plus per-link one-way latency percentiles."""
        return {
            "messages_sent": self.network.messages_sent,
            "messages_dropped": self.network.messages_dropped,
            "messages_cut": self.network.messages_cut,
            "delivered": self.network.delivered,
            "rpc_timeouts": self.network.rpc_timeouts,
            "rpc_retries": self.network.rpc_retries,
            "false_suspicions": self.network.false_suspicions,
            "elections": self.network.elections,
            "leader_changes": self.network.leader_changes,
            "links": {link: histogram.summary()
                      for link, histogram in
                      sorted(self.link_latencies.items())},
        }

    # -- disaster recovery -----------------------------------------------------

    def record_dr_ship(self) -> None:
        self.dr.shipped += 1

    def record_dr_apply(self) -> None:
        self.dr.applied += 1

    def record_dr_drop(self) -> None:
        self.dr.dropped += 1

    def record_dr_failback(self) -> None:
        self.dr.failbacks += 1

    def record_dr_false_suspicion(self) -> None:
        self.dr.false_suspicions += 1

    def record_dr_promotion(self, db: str, old_primary: str,
                            new_primary: str, epoch: int,
                            declared_at: float,
                            rpo_commits: int) -> DrPromotion:
        promotion = DrPromotion(db=db, old_primary=old_primary,
                                new_primary=new_primary, epoch=epoch,
                                declared_at=declared_at,
                                rpo_commits=rpo_commits)
        self.dr.promotions += 1
        self.dr_promotions.append(promotion)
        return promotion

    def record_dr_rto(self, db: str, seconds: float) -> None:
        """First successful statement on ``db``'s promoted primary."""
        for promotion in self.dr_promotions:
            if promotion.db == db and promotion.rto_s is None:
                promotion.rto_s = seconds
                return

    def dr_summary(self) -> Dict[str, object]:
        """RPO/RTO per failover plus ship/apply/drop totals.

        RPO is measured in acked commits lost at promotion (the paper's
        asynchronous cross-colo replication makes a bounded-loss window
        explicit); RTO is declare-to-first-successful-statement seconds
        on the new primary, ``None`` if no client reached it yet.
        """
        return {
            "shipped": self.dr.shipped,
            "applied": self.dr.applied,
            "dropped": self.dr.dropped,
            "promotions": [
                {"db": p.db, "old_primary": p.old_primary,
                 "new_primary": p.new_primary, "epoch": p.epoch,
                 "rpo_commits": p.rpo_commits, "rto_s": p.rto_s}
                for p in self.dr_promotions
            ],
            "rpo_commits": {p.db: p.rpo_commits
                            for p in self.dr_promotions},
            "rto_s": {p.db: p.rto_s for p in self.dr_promotions
                      if p.rto_s is not None},
            "failbacks": self.dr.failbacks,
            "false_suspicions": self.dr.false_suspicions,
        }

    # -- aggregates -----------------------------------------------------------

    def total_committed(self) -> int:
        return sum(c.committed for c in self.per_db.values())

    def total_rejected(self) -> int:
        return sum(c.rejected for c in self.per_db.values())

    def total_deadlocks(self) -> int:
        return sum(c.deadlocks for c in self.per_db.values())

    def throughput(self, elapsed: float) -> float:
        """Committed transactions per second over ``elapsed`` sim-seconds."""
        return self.total_committed() / elapsed if elapsed > 0 else 0.0

    def deadlock_rate(self, elapsed: float) -> float:
        return self.total_deadlocks() / elapsed if elapsed > 0 else 0.0
