"""Unit tests for the experiment harness and reporting."""

import pytest

from repro.harness import format_series, format_table, run_sla_placement
from repro.harness.runner import run_tpcw_cluster
from repro.cluster import ReadOption, WritePolicy
from repro.workloads.tpcw import TpcwScale


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 123.456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "123" in lines[3]

    def test_format_table_float_rendering(self):
        text = format_table(["x"], [[0.12345], [1234.5], [2.5], [0]])
        assert "0.1234" in text or "0.1235" in text
        assert "1235" in text or "1234" in text
        assert "2.50" in text

    def test_format_series(self):
        text = format_series("tps", [(0.0, 1.0), (10.0, 2.0)])
        lines = text.splitlines()
        assert lines[0] == "# tps"
        assert len(lines) == 3


class TestTpcwRunner:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tpcw_cluster(
            mix_name="shopping", machines=3, n_databases=2, replicas=2,
            clients_per_db=2, duration_s=5.0,
            scale=TpcwScale(items=150, emulated_browsers=2),
            think_time_s=0.05)

    def test_throughput_positive(self, result):
        assert result.committed > 0
        assert result.throughput_tps == pytest.approx(
            result.committed / result.sim_seconds)

    def test_buffer_hit_rate_sane(self, result):
        assert 0.0 < result.buffer_hit_rate <= 1.0

    def test_metrics_exposed(self, result):
        assert set(result.metrics.per_db) == {"tpcw0", "tpcw1"}

    def test_no_replication_variant(self):
        result = run_tpcw_cluster(
            mix_name="browsing", machines=2, n_databases=1, replicas=1,
            clients_per_db=1, duration_s=3.0,
            scale=TpcwScale(items=100, emulated_browsers=1),
            think_time_s=0.05)
        assert result.committed > 0
        assert result.controller.replica_map.replica_count("tpcw0") == 1


class TestSlaPlacementRunner:
    def test_runs_and_orders(self):
        low = run_sla_placement(0.4, n_databases=10, seed=1)
        high = run_sla_placement(2.0, n_databases=10, seed=1)
        assert low.avg_size_mb > high.avg_size_mb
        assert low.machines_first_fit >= low.machines_optimal
        assert high.machines_first_fit >= high.machines_optimal

    def test_deterministic(self):
        a = run_sla_placement(1.2, n_databases=8, seed=5)
        b = run_sla_placement(1.2, n_databases=8, seed=5)
        assert a == b
