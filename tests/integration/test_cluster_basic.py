"""Integration tests: basic cluster read/write/commit behaviour."""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.cluster.controller import TransactionAborted
from repro.errors import NoReplicaError
from tests.conftest import make_kv_cluster, read_table


def run_client(sim, gen):
    proc = sim.process(gen)
    sim.run()
    if not proc.ok:
        proc.defused = True
        raise proc.value
    return proc.value


class TestReadsAndWrites:
    def test_write_reaches_all_replicas(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 42 WHERE k = 1")
            yield conn.commit()

        run_client(sim, client())
        for machine in controller.replica_map.replicas("kv"):
            rows = read_table(controller, machine, "kv",
                              "SELECT v FROM kv WHERE k = 1")
            assert rows == [(42,)]

    def test_read_after_write_in_txn(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 5 WHERE k = 2")
            result = yield conn.execute("SELECT v FROM kv WHERE k = 2")
            yield conn.commit()
            return result.scalar()

        # Under Option 1 the read goes to the primary which already has
        # the write (ROWA), so the transaction sees its own update.
        assert run_client(sim, client()) == 5

    def test_insert_visible_to_next_txn(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("INSERT INTO kv VALUES (1000, 1)")
            yield conn.commit()
            result = yield conn.execute("SELECT COUNT(*) FROM kv")
            yield conn.commit()
            return result.scalar()

        assert run_client(sim, client()) == 21

    def test_rollback_undoes_on_all_replicas(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 9 WHERE k = 0")
            yield conn.rollback()

        run_client(sim, client())
        for machine in controller.replica_map.replicas("kv"):
            rows = read_table(controller, machine, "kv",
                              "SELECT v FROM kv WHERE k = 0")
            assert rows == [(0,)]

    def test_read_only_txn_skips_2pc(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("SELECT v FROM kv WHERE k = 1")
            yield conn.commit()

        run_client(sim, client())
        # No PREPARE record should exist on any engine.
        from repro.engine.wal import RecordType
        kinds = [r.kind
                 for m in controller.machines.values()
                 for r in m.engine.wal.all_records()]
        assert RecordType.PREPARE not in kinds
        assert controller.metrics.total_committed() == 1

    def test_write_txn_uses_2pc(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = 1")
            yield conn.commit()

        run_client(sim, client())
        from repro.engine.wal import RecordType
        for name in controller.replica_map.replicas("kv"):
            kinds = [r.kind for r in
                     controller.machines[name].engine.wal.all_records()]
            assert RecordType.PREPARE in kinds
            last_commit = len(kinds) - 1 - kinds[::-1].index(RecordType.COMMIT)
            assert kinds.index(RecordType.PREPARE) < last_commit

    def test_commit_without_txn_is_noop(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            result = yield conn.commit()
            return result

        assert run_client(sim, client()) is None

    def test_connect_unknown_db(self, sim):
        controller = make_kv_cluster(sim)
        with pytest.raises(NoReplicaError):
            controller.connect("missing")

    def test_sequential_transactions_reuse_connection(self, sim):
        controller = make_kv_cluster(sim)

        def client():
            conn = controller.connect("kv")
            for i in range(5):
                yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = 3")
                yield conn.commit()
            result = yield conn.execute("SELECT v FROM kv WHERE k = 3")
            yield conn.commit()
            return result.scalar()

        assert run_client(sim, client()) == 5


class TestConcurrency:
    def test_concurrent_increments_serialize(self, sim):
        controller = make_kv_cluster(sim, read_option=ReadOption.OPTION_1)

        def client(n):
            conn = controller.connect("kv")
            for _ in range(n):
                try:
                    yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = 5")
                    yield conn.commit()
                except TransactionAborted:
                    pass

        procs = [sim.process(client(10)) for _ in range(3)]
        sim.run()
        assert all(p.ok for p in procs)
        committed = controller.metrics.total_committed()
        for machine in controller.replica_map.replicas("kv"):
            rows = read_table(controller, machine, "kv",
                              "SELECT v FROM kv WHERE k = 5")
            assert rows == [(committed,)]

    def test_deadlock_aborts_one_and_other_commits(self, sim):
        controller = make_kv_cluster(sim, lock_wait_timeout_s=1.0)
        outcomes = []

        def client(first, second):
            conn = controller.connect("kv")
            try:
                yield conn.execute("UPDATE kv SET v = 1 WHERE k = ?", (first,))
                yield sim.timeout(0.01)
                yield conn.execute("UPDATE kv SET v = 1 WHERE k = ?", (second,))
                yield conn.commit()
                outcomes.append("commit")
            except TransactionAborted:
                outcomes.append("abort")

        sim.process(client(10, 11))
        sim.process(client(11, 10))
        sim.run()
        assert sorted(outcomes) == ["abort", "commit"]
        assert (controller.metrics.total_deadlocks() == 1)

    def test_aborted_txn_leaves_replicas_consistent(self, sim):
        controller = make_kv_cluster(sim, lock_wait_timeout_s=1.0)

        def client(first, second):
            conn = controller.connect("kv")
            try:
                yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                                   (first,))
                yield sim.timeout(0.01)
                yield conn.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                                   (second,))
                yield conn.commit()
            except TransactionAborted:
                pass

        sim.process(client(10, 11))
        sim.process(client(11, 10))
        sim.run()
        replicas = controller.replica_map.replicas("kv")
        states = [read_table(controller, m, "kv",
                             "SELECT k, v FROM kv ORDER BY k")
                  for m in replicas]
        assert states[0] == states[1]


class TestRoutingIntegration:
    @pytest.mark.parametrize("option", [ReadOption.OPTION_1,
                                        ReadOption.OPTION_2,
                                        ReadOption.OPTION_3])
    def test_reads_work_under_every_option(self, sim, option):
        controller = make_kv_cluster(sim, read_option=option)

        def client():
            conn = controller.connect("kv")
            total = 0
            for k in range(6):
                result = yield conn.execute("SELECT v FROM kv WHERE k = ?",
                                            (k,))
                total += result.scalar()
            yield conn.commit()
            return total

        assert run_client(sim, client()) == 0

    def test_option1_reads_hit_only_primary(self, sim):
        controller = make_kv_cluster(sim, read_option=ReadOption.OPTION_1)
        primary = controller.replica_map.replicas("kv")[0]

        def client():
            conn = controller.connect("kv")
            for k in range(8):
                yield conn.execute("SELECT v FROM kv WHERE k = ?", (k,))
                yield conn.commit()

        run_client(sim, client())
        # Secondary replicas saw no read traffic (no S locks acquired).
        for name in controller.replica_map.replicas("kv")[1:]:
            stats = controller.machines[name].engine.locks.stats
            assert stats.acquired == 0

    def test_option3_spreads_reads(self, sim):
        controller = make_kv_cluster(sim, read_option=ReadOption.OPTION_3)

        def client():
            conn = controller.connect("kv")
            for k in range(8):
                yield conn.execute("SELECT v FROM kv WHERE k = ?", (k,))
            yield conn.commit()

        run_client(sim, client())
        replicas = controller.replica_map.replicas("kv")
        acquired = [controller.machines[m].engine.locks.stats.acquired
                    for m in replicas]
        assert all(a > 0 for a in acquired)
