"""``python -m repro.harness`` — regenerate the paper's tables."""

from repro.harness.cli import main

raise SystemExit(main())
