"""Unit tests for non-locking consistent reads (read-committed mode)."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.errors import WouldBlockError


@pytest.fixture
def eng():
    engine = Engine(config=EngineConfig(nonlocking_reads=True))
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    for k in range(10):
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?)",
                            (k, k * 10))
    engine.commit(txn)
    return engine


class TestNonlockingReads:
    def test_read_does_not_block_on_writer(self, eng):
        writer = eng.begin()
        eng.execute_sync(writer, "db", "UPDATE t SET v = 999 WHERE k = 3")
        reader = eng.begin()
        result = eng.execute_sync(reader, "db",
                                  "SELECT v FROM t WHERE k = 3")
        # Sees the last COMMITTED image, not the uncommitted 999.
        assert result.scalar() == 30
        eng.commit(reader)
        eng.commit(writer)

    def test_committed_value_visible_after_commit(self, eng):
        writer = eng.begin()
        eng.execute_sync(writer, "db", "UPDATE t SET v = 999 WHERE k = 3")
        eng.commit(writer)
        reader = eng.begin()
        assert eng.execute_sync(reader, "db",
                                "SELECT v FROM t WHERE k = 3").scalar() == 999
        eng.commit(reader)

    def test_uncommitted_insert_invisible(self, eng):
        writer = eng.begin()
        eng.execute_sync(writer, "db", "INSERT INTO t VALUES (100, 1)")
        reader = eng.begin()
        assert eng.execute_sync(reader, "db",
                                "SELECT COUNT(*) FROM t").scalar() == 10
        eng.commit(reader)
        eng.abort(writer)
        reader2 = eng.begin()
        assert eng.execute_sync(reader2, "db",
                                "SELECT COUNT(*) FROM t").scalar() == 10
        eng.commit(reader2)

    def test_own_writes_visible(self, eng):
        txn = eng.begin()
        eng.execute_sync(txn, "db", "UPDATE t SET v = 5 WHERE k = 1")
        assert eng.execute_sync(txn, "db",
                                "SELECT v FROM t WHERE k = 1").scalar() == 5
        eng.execute_sync(txn, "db", "INSERT INTO t VALUES (50, 7)")
        assert eng.execute_sync(txn, "db",
                                "SELECT v FROM t WHERE k = 50").scalar() == 7
        eng.abort(txn)

    def test_seq_scan_sees_committed_images(self, eng):
        writer = eng.begin()
        eng.execute_sync(writer, "db", "UPDATE t SET v = 0")
        reader = eng.begin()
        total = eng.execute_sync(reader, "db",
                                 "SELECT SUM(v) FROM t").scalar()
        assert total == sum(k * 10 for k in range(10))
        eng.commit(reader)
        eng.abort(writer)

    def test_reads_take_no_locks(self, eng):
        reader = eng.begin()
        eng.execute_sync(reader, "db", "SELECT SUM(v) FROM t")
        assert eng.locks.held(reader.txn_id) == {}
        eng.commit(reader)

    def test_for_update_still_locks(self, eng):
        txn1 = eng.begin()
        eng.execute_sync(txn1, "db",
                         "SELECT v FROM t WHERE k = 2 FOR UPDATE")
        txn2 = eng.begin()
        with pytest.raises(WouldBlockError):
            eng.execute_sync(txn2, "db",
                             "SELECT v FROM t WHERE k = 2 FOR UPDATE")
        eng.abort(txn2)
        eng.commit(txn1)

    def test_writers_still_block_writers(self, eng):
        txn1 = eng.begin()
        eng.execute_sync(txn1, "db", "UPDATE t SET v = 1 WHERE k = 4")
        txn2 = eng.begin()
        with pytest.raises(WouldBlockError):
            eng.execute_sync(txn2, "db", "UPDATE t SET v = 2 WHERE k = 4")
        eng.abort(txn2)
        eng.commit(txn1)

    def test_dirty_map_cleared_on_finish(self, eng):
        writer = eng.begin()
        eng.execute_sync(writer, "db", "UPDATE t SET v = 1 WHERE k = 0")
        assert eng.dirty
        eng.commit(writer)
        assert not eng.dirty
        writer2 = eng.begin()
        eng.execute_sync(writer2, "db", "UPDATE t SET v = 2 WHERE k = 0")
        eng.abort(writer2)
        assert not eng.dirty

    def test_locking_mode_unchanged_by_default(self):
        engine = Engine()  # default: locking reads
        engine.create_database("db")
        txn = engine.begin()
        engine.execute_sync(txn, "db",
                            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (1, 1)")
        engine.commit(txn)
        writer = engine.begin()
        engine.execute_sync(writer, "db", "UPDATE t SET v = 2 WHERE k = 1")
        reader = engine.begin()
        with pytest.raises(WouldBlockError):
            engine.execute_sync(reader, "db", "SELECT v FROM t WHERE k = 1")
        engine.abort(reader)
        engine.commit(writer)
