"""Correctness checking and measurement tools.

* :mod:`repro.analysis.history` — per-site operation histories recorded by
  engine instances.
* :mod:`repro.analysis.serialization_graph` — the paper's formal tool: the
  global serialization graph over committed transactions, whose acyclicity
  is equivalent to one-copy serializability under read-one-write-all
  (Bernstein/Hadzilacos/Goodman, as cited in Section 3.1).
* :mod:`repro.analysis.metrics` — throughput/abort/rejection counters and
  time-windowed series used by the benchmark harness.
* :mod:`repro.analysis.trace` — ring-buffered, sim-time-stamped event
  trace of the cluster's replication/2PC machinery (JSONL exportable).
* :mod:`repro.analysis.invariants` — trace-driven checker for the 2PC and
  re-replication invariants the controller design promises.
"""

from repro.analysis.history import GlobalHistory, SiteHistory
from repro.analysis.invariants import (InvariantChecker, Violation,
                                       check_controller, check_trace)
from repro.analysis.metrics import MetricsCollector, TimeSeries
from repro.analysis.serialization_graph import (SerializationGraph,
                                                check_one_copy_serializable)
from repro.analysis.trace import (LatencyHistogram, TraceEvent, Tracer,
                                  load_jsonl)

__all__ = [
    "GlobalHistory",
    "InvariantChecker",
    "LatencyHistogram",
    "MetricsCollector",
    "SerializationGraph",
    "SiteHistory",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "Violation",
    "check_controller",
    "check_one_copy_serializable",
    "check_trace",
    "load_jsonl",
]
