"""Unit tests for the B+Tree index."""

import random

import pytest

from repro.engine.btree import BPlusTree


class TestBasics:
    def test_order_minimum(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search((1,)) == []
        assert not tree.contains((1,))
        assert list(tree.items()) == []

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert((5,), "r5")
        tree.insert((3,), "r3")
        assert tree.search((5,)) == ["r5"]
        assert tree.search((4,)) == []
        assert len(tree) == 2

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert sorted(tree.search((1,))) == ["a", "b"]
        assert len(tree) == 1  # one distinct key

    def test_delete_one_of_duplicates(self):
        tree = BPlusTree(order=4)
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert tree.delete((1,), "a")
        assert tree.search((1,)) == ["b"]

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert((1,), "a")
        assert not tree.delete((2,), "a")
        assert not tree.delete((1,), "zzz")

    def test_composite_keys_order(self):
        tree = BPlusTree(order=4)
        for key in [(2, 1), (1, 9), (1, 2), (2, 0)]:
            tree.insert(key, key)
        keys = [k for k, _ in tree.items()]
        assert keys == [(1, 2), (1, 9), (2, 0), (2, 1)]


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for k in range(0, 100, 2):  # evens 0..98
            tree.insert((k,), f"r{k}")
        return tree

    def test_full_scan_sorted(self, tree):
        keys = [k[0] for k, _ in tree.range_scan()]
        assert keys == list(range(0, 100, 2))

    def test_bounded_inclusive(self, tree):
        keys = [k[0] for k, _ in tree.range_scan((10,), (20,))]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_bounded_exclusive(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(
            (10,), (20,), lo_inclusive=False, hi_inclusive=False)]
        assert keys == [12, 14, 16, 18]

    def test_bounds_between_keys(self, tree):
        keys = [k[0] for k, _ in tree.range_scan((9,), (15,))]
        assert keys == [10, 12, 14]

    def test_open_low_bound(self, tree):
        keys = [k[0] for k, _ in tree.range_scan(None, (6,))]
        assert keys == [0, 2, 4, 6]

    def test_open_high_bound(self, tree):
        keys = [k[0] for k, _ in tree.range_scan((94,), None)]
        assert keys == [94, 96, 98]

    def test_empty_range(self, tree):
        assert list(tree.range_scan((200,), (300,))) == []


class TestStructure:
    @pytest.mark.parametrize("order", [4, 5, 7, 16])
    def test_invariants_random_workload(self, order):
        rng = random.Random(order)
        tree = BPlusTree(order=order)
        keys = list(range(300))
        rng.shuffle(keys)
        for i, k in enumerate(keys):
            tree.insert((k,), f"r{k}")
            if i % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert tree.height > 1
        rng.shuffle(keys)
        for i, k in enumerate(keys):
            assert tree.delete((k,), f"r{k}")
            if i % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 0

    def test_sequential_insert_then_reverse_delete(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert((k,), k)
        tree.check_invariants()
        for k in reversed(range(200)):
            assert tree.delete((k,), k)
        tree.check_invariants()
        assert len(tree) == 0

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=32)
        for k in range(2000):
            tree.insert((k,), k)
        assert tree.height <= 4
