"""Recursive-descent parser producing :mod:`repro.engine.sqlparse.nodes`."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.sqlparse import nodes as n
from repro.engine.sqlparse.lexer import Token, TokenType, tokenize
from repro.errors import SqlError

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_NOT_NULL_WORDS = ("NOT", "NULL")


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlError:
        token = self.peek()
        return SqlError(f"{message} at token {token.value!r} (pos {token.pos}) "
                        f"in: {self.sql}")

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if token.type is not TokenType.OPERATOR or token.value != op:
            raise self.error(f"expected {op!r}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == op:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise self.error("expected identifier")
        self.advance()
        return token.value

    # -- entry points ---------------------------------------------------------

    def parse_statement(self) -> n.Statement:
        token = self.peek()
        if token.is_keyword("SELECT"):
            stmt = self.select()
        elif token.is_keyword("INSERT"):
            stmt = self.insert()
        elif token.is_keyword("UPDATE"):
            stmt = self.update()
        elif token.is_keyword("DELETE"):
            stmt = self.delete()
        elif token.is_keyword("CREATE"):
            stmt = self.create()
        else:
            raise self.error("expected a statement")
        if self.peek().type is not TokenType.EOF:
            raise self.error("trailing tokens after statement")
        return stmt

    # -- SELECT -------------------------------------------------------------

    def select(self) -> n.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        star = False
        items: List[n.SelectItem] = []
        if self.accept_op("*"):
            star = True
        else:
            items.append(self.select_item())
            while self.accept_op(","):
                items.append(self.select_item())
        self.expect_keyword("FROM")
        tables = [self.table_ref()]
        joins: List[n.Join] = []
        while True:
            if self.accept_op(","):
                tables.append(self.table_ref())
                continue
            if self.peek().is_keyword("INNER") or self.peek().is_keyword("JOIN"):
                self.accept_keyword("INNER")
                self.expect_keyword("JOIN")
                ref = self.table_ref()
                self.expect_keyword("ON")
                cond = self.expression()
                joins.append(n.Join(ref, cond))
                continue
            break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        group_by: List[n.Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expression())
            while self.accept_op(","):
                group_by.append(self.expression())
        having = None
        if self.accept_keyword("HAVING"):
            if not group_by:
                raise self.error("HAVING requires GROUP BY")
            having = self.expression()
        order_by: List[n.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.order_item())
            while self.accept_op(","):
                order_by.append(self.order_item())
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.int_literal()
            if self.accept_keyword("OFFSET"):
                offset = self.int_literal()
        for_update = False
        if self.accept_keyword("FOR"):
            self.expect_keyword("UPDATE")
            for_update = True
        return n.Select(items=items, star=star, tables=tables, joins=joins,
                        where=where, group_by=group_by, having=having,
                        order_by=order_by, limit=limit, offset=offset,
                        distinct=distinct, for_update=for_update)

    def select_item(self) -> n.SelectItem:
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_ident()
        return n.SelectItem(expr, alias)

    def table_ref(self) -> n.TableRef:
        table = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().type is TokenType.IDENT:
            alias = self.expect_ident()
        return n.TableRef(table, alias)

    def order_item(self) -> n.OrderItem:
        expr = self.expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return n.OrderItem(expr, descending)

    def int_literal(self) -> int:
        token = self.peek()
        if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
            raise self.error("expected integer literal")
        self.advance()
        return token.value

    # -- DML ----------------------------------------------------------------

    def insert(self) -> n.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: List[str] = []
        if self.accept_op("("):
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("VALUES")
        rows: List[List[n.Expr]] = [self.value_row()]
        while self.accept_op(","):
            rows.append(self.value_row())
        return n.Insert(table, columns, rows)

    def value_row(self) -> List[n.Expr]:
        self.expect_op("(")
        exprs = [self.expression()]
        while self.accept_op(","):
            exprs.append(self.expression())
        self.expect_op(")")
        return exprs

    def update(self) -> n.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments: List[Tuple[str, n.Expr]] = []
        while True:
            col = self.expect_ident()
            # allow qualified assignment targets (t.col = ...)
            if self.accept_op("."):
                col = self.expect_ident()
            self.expect_op("=")
            assignments.append((col, self.expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return n.Update(table, assignments, where)

    def delete(self) -> n.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return n.Delete(table, where)

    # -- DDL ----------------------------------------------------------------

    def create(self) -> n.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.create_table()
        unique = self.accept_keyword("UNIQUE")
        if self.accept_keyword("INDEX"):
            return self.create_index(unique)
        raise self.error("expected TABLE or INDEX after CREATE")

    def create_table(self) -> n.CreateTable:
        table = self.expect_ident()
        self.expect_op("(")
        columns: List[n.ColumnDef] = []
        primary_key: List[str] = []
        while True:
            if self.peek().is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_op("(")
                primary_key.append(self.expect_ident())
                while self.accept_op(","):
                    primary_key.append(self.expect_ident())
                self.expect_op(")")
            else:
                columns.append(self.column_def())
            if not self.accept_op(","):
                break
        self.expect_op(")")
        inline_pk = [c.name for c in columns if c.primary_key]
        if inline_pk and primary_key:
            raise self.error("both inline and table-level PRIMARY KEY")
        return n.CreateTable(table, columns, primary_key or inline_pk)

    def column_def(self) -> n.ColumnDef:
        name = self.expect_ident()
        token = self.peek()
        if token.type is TokenType.IDENT:
            type_name = token.value
            self.advance()
        elif token.type is TokenType.KEYWORD:
            # e.g. none expected, but be strict
            raise self.error("expected column type")
        else:
            raise self.error("expected column type")
        # Optional (n) / (p, s) length spec, ignored.
        if self.accept_op("("):
            self.int_literal()
            if self.accept_op(","):
                self.int_literal()
            self.expect_op(")")
        nullable = True
        primary_key = False
        while True:
            if self.peek().is_keyword("NOT") and self.peek(1).is_keyword("NULL"):
                self.advance()
                self.advance()
                nullable = False
                continue
            if self.peek().is_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                primary_key = True
                nullable = False
                continue
            break
        return n.ColumnDef(name, type_name, nullable, primary_key)

    def create_index(self, unique: bool) -> n.CreateIndex:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self.expect_ident()]
        while self.accept_op(","):
            columns.append(self.expect_ident())
        self.expect_op(")")
        return n.CreateIndex(name, table, columns, unique)

    # -- expressions ----------------------------------------------------------
    # precedence: OR < AND < NOT < comparison < additive < multiplicative
    #             < unary < primary

    def expression(self) -> n.Expr:
        return self.or_expr()

    def or_expr(self) -> n.Expr:
        left = self.and_expr()
        while self.accept_keyword("OR"):
            right = self.and_expr()
            left = n.BinaryOp("OR", left, right)
        return left

    def and_expr(self) -> n.Expr:
        left = self.not_expr()
        while self.accept_keyword("AND"):
            right = self.not_expr()
            left = n.BinaryOp("AND", left, right)
        return left

    def not_expr(self) -> n.Expr:
        if self.accept_keyword("NOT"):
            return n.UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> n.Expr:
        left = self.additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">="
        ):
            op = "<>" if token.value == "!=" else token.value
            self.advance()
            return n.BinaryOp(op, left, self.additive())
        negated = False
        if token.is_keyword("NOT"):
            nxt = self.peek(1)
            if nxt.is_keyword("IN") or nxt.is_keyword("BETWEEN") or nxt.is_keyword("LIKE"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("LIKE"):
            self.advance()
            like = n.BinaryOp("LIKE", left, self.additive())
            return n.UnaryOp("NOT", like) if negated else like
        if token.is_keyword("IN"):
            self.advance()
            self.expect_op("(")
            items = [self.expression()]
            while self.accept_op(","):
                items.append(self.expression())
            self.expect_op(")")
            return n.InList(left, tuple(items), negated)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.additive()
            self.expect_keyword("AND")
            high = self.additive()
            return n.Between(left, low, high, negated)
        if token.is_keyword("IS"):
            self.advance()
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return n.IsNull(left, is_not)
        return left

    def additive(self) -> n.Expr:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self.advance()
                left = n.BinaryOp(token.value, left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> n.Expr:
        left = self.unary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/"):
                self.advance()
                left = n.BinaryOp(token.value, left, self.unary())
            else:
                return left

    def unary(self) -> n.Expr:
        if self.accept_op("-"):
            return n.UnaryOp("NEG", self.unary())
        return self.primary()

    def primary(self) -> n.Expr:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return n.Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return n.Literal(token.value)
        if token.type is TokenType.PARAM:
            self.advance()
            param = n.Param(self.param_count)
            self.param_count += 1
            return param
        if token.is_keyword("NULL"):
            self.advance()
            return n.Literal(None)
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            name = token.value
            self.advance()
            self.expect_op("(")
            if name == "COUNT" and self.accept_op("*"):
                self.expect_op(")")
                return n.FuncCall("COUNT", None, star=True)
            distinct = self.accept_keyword("DISTINCT")
            arg = self.expression()
            self.expect_op(")")
            return n.FuncCall(name, arg, distinct=distinct)
        if token.type is TokenType.IDENT:
            name = token.value
            self.advance()
            if self.accept_op("."):
                column = self.expect_ident()
                return n.ColumnRef(column, qualifier=name)
            return n.ColumnRef(name)
        if self.accept_op("("):
            expr = self.expression()
            self.expect_op(")")
            return expr
        raise self.error("expected an expression")


def parse(sql: str) -> n.Statement:
    """Parse one SQL statement."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> n.Expr:
    """Parse a standalone expression (used by tests)."""
    parser = _Parser(sql)
    expr = parser.expression()
    if parser.peek().type is not TokenType.EOF:
        raise parser.error("trailing tokens after expression")
    return expr
