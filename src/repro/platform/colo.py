"""The colo controller: clusters plus a pool of free machines.

"Each colo contains one or more machine clusters... The clusters are
coordinated by a fault-tolerant colo controller, which routes client
database connection requests to the appropriate cluster that hosts the
database. In addition, the colo controller manages a pool of free
machines and adds them to clusters as needed."

For disaster recovery the colo itself is a failure domain: it can
*crash* (go silent — only the system controller's heartbeat detector
notices), be *fenced* (declared dead under a new epoch; new connections
are refused and log shipping from it stops), and be *repaired* (wiped
back to blank clusters, rejoining as a re-protection target).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.controller import ClusterController, Connection
from repro.cluster.machine import Machine
from repro.errors import ColoFencedError, NoReplicaError, SlaViolationError
from repro.sim import Simulator
from repro.sla.model import ResourceVector
from repro.sla.placement import DatabaseLoad, MachineBin


class ColoController:
    """One physical location: clusters, free pool, connection routing."""

    def __init__(self, sim: Simulator, name: str,
                 cluster_config: Optional[ClusterConfig] = None,
                 free_machines: int = 10,
                 location: float = 0.0):
        self.sim = sim
        self.name = name
        self.cluster_config = cluster_config or ClusterConfig()
        self.clusters: Dict[str, ClusterController] = {}
        self.free_pool = free_machines
        # Abstract geographic coordinate used for proximity routing.
        self.location = location
        # Colo-level failure state. ``alive`` goes False on a silent
        # crash; ``fenced`` is set by the system controller's declare.
        self.alive = True
        self.fenced = False
        # True once the colo has ever been crashed/failed; a later
        # re-protection onto it is a failback.
        self.was_failed = False
        # db -> cluster name
        self._db_cluster: Dict[str, str] = {}
        # Placement bookkeeping: machine name -> bin (capacity/used),
        # plus each database's machines and per-replica requirement so
        # bins can be released when the database or machine goes away.
        self._bins: Dict[str, MachineBin] = {}
        self._db_machines: Dict[str, List[str]] = {}
        self._db_requirements: Dict[str, ResourceVector] = {}

    # -- cluster management -------------------------------------------------------

    def add_cluster(self, name: Optional[str] = None,
                    machines: int = 4) -> ClusterController:
        name = name or f"{self.name}-cluster{len(self.clusters) + 1}"
        if machines > self.free_pool:
            raise SlaViolationError(
                f"colo {self.name}: free pool has {self.free_pool} machines, "
                f"requested {machines}")
        cluster = ClusterController(self.sim, self.cluster_config, name=name)
        for _ in range(machines):
            self._provision(cluster)
        cluster.free_machine_hook = lambda c=cluster: self.provision_machine(c)
        cluster.machine_reset_hook = self._release_machine_bin
        cluster.machine_rejoin_hook = (
            lambda m, c=cluster: self._rebind_machine_bin(c, m))
        self.clusters[name] = cluster
        return cluster

    def _provision(self, cluster: ClusterController) -> Machine:
        if self.free_pool <= 0:
            raise SlaViolationError(f"colo {self.name}: free pool exhausted")
        self.free_pool -= 1
        machine = cluster.add_machine()
        self._bins[machine.name] = MachineBin(machine.name,
                                              machine.capacity_vector())
        return machine

    def provision_machine(self, cluster: ClusterController) -> Optional[Machine]:
        """Move one machine from the free pool into ``cluster``."""
        if self.free_pool <= 0:
            return None
        return self._provision(cluster)

    def _release_machine_bin(self, machine_name: str) -> None:
        """A machine left service with its data (failed/declared) or
        rejoined as a blank spare: whatever was packed on it is gone, so
        its bin must stop counting that load against colo capacity."""
        machine_bin = self._bins.get(machine_name)
        if machine_bin is None:
            return
        for db in list(machine_bin.hosted):
            machines = self._db_machines.get(db)
            if machines and machine_name in machines:
                machines.remove(machine_name)
        machine_bin.reset()

    def _rebind_machine_bin(self, cluster: ClusterController,
                            machine_name: str) -> None:
        """A declared machine rejoined *with its data* (delta catch-up):
        re-account the databases it now serves against its bin, which
        :meth:`_release_machine_bin` emptied at the declaration."""
        machine_bin = self._bins.get(machine_name)
        if machine_bin is None:
            return
        for db in cluster.replica_map.hosted_on(machine_name):
            machines = self._db_machines.get(db)
            requirement = self._db_requirements.get(db)
            if machines is None or requirement is None:
                continue  # not placed through this colo's bins
            if machine_name in machines:
                continue  # bin never released (already accounted)
            if not machine_bin.can_fit(requirement):
                continue  # packed over meanwhile; leave under-accounted
            machine_bin.place(DatabaseLoad(db, requirement, replicas=1))
            machines.append(machine_name)

    def cluster_of(self, db: str) -> ClusterController:
        if db not in self._db_cluster:
            raise NoReplicaError(f"colo {self.name} does not host {db!r}")
        return self.clusters[self._db_cluster[db]]

    def hosts(self, db: str) -> bool:
        return db in self._db_cluster

    # -- colo-level failure / repair ------------------------------------------------

    def crash(self) -> None:
        """Power the colo off silently (detection-only, like
        :meth:`ClusterController.crash_machine` one tier up). Cluster
        primaries crash so in-flight client work errors out; machines
        keep their state for a potential (stale, unused) restart."""
        if not self.alive:
            return
        self.alive = False
        self.was_failed = True
        for cluster in self.clusters.values():
            cluster.crash_primary()

    def fence(self) -> None:
        """Fence the colo after the system controller declares it.

        Models the colo-side lease expiring with the declaration: even
        if the colo is alive behind a partition, it refuses new
        connections (:class:`ColoFencedError`), its cluster primaries
        stop committing, and its shipper loops observe the flag and
        stop. Reversible only through :meth:`repair` (a blank rejoin).
        """
        if self.fenced:
            return
        self.fenced = True
        self.was_failed = True
        for cluster in self.clusters.values():
            cluster.crash_primary()

    def repair(self) -> None:
        """Wipe the colo back to blank clusters and rejoin service.

        The colo's databases were promoted away (or lost) when it was
        declared; its state is stale and must never be served. Every
        cluster resets to blank spares and the colo re-enters as an
        empty re-protection target — the failback path.
        """
        for cluster in self.clusters.values():
            cluster.reset_as_blank()
        self._db_cluster.clear()
        self._db_machines.clear()
        self._db_requirements.clear()
        self.alive = True
        self.fenced = False

    def drop_database(self, db: str) -> None:
        """Deregister ``db`` from this colo: drop the data off its
        cluster and give the placement load back to the bins."""
        requirement = self._db_requirements.pop(db, None)
        for machine_name in self._db_machines.pop(db, []):
            machine_bin = self._bins.get(machine_name)
            if machine_bin is not None and requirement is not None:
                machine_bin.release(db, requirement)
        cluster_name = self._db_cluster.pop(db, None)
        if cluster_name is not None:
            self.clusters[cluster_name].drop_database(db)

    # -- SLA-driven database placement ----------------------------------------------

    def place_database(self, db: str, ddl: List[str],
                       requirement: ResourceVector,
                       replicas: int, sla=None) -> ClusterController:
        """Choose machines with First-Fit (Algorithm 2) and create the db.

        Tries each cluster in order; extends a cluster from the free pool
        when the new database's replicas do not fit on its current
        machines (Algorithm 2 lines 12-14).
        """
        if not self.clusters:
            self.add_cluster(machines=min(4, self.free_pool))
        last_error: Optional[Exception] = None
        for cluster in self.clusters.values():
            try:
                machines = self._fit_in_cluster(cluster, db, requirement,
                                                replicas)
            except SlaViolationError as exc:
                last_error = exc
                continue
            cluster.create_database(db, ddl, machines=machines, sla=sla)
            for machine_name in machines:
                self._bins[machine_name].place(
                    DatabaseLoad(db, requirement, replicas=1))
            self._db_cluster[db] = cluster.name
            self._db_machines[db] = list(machines)
            self._db_requirements[db] = requirement
            return cluster
        raise last_error or SlaViolationError(
            f"colo {self.name}: no cluster can host {db!r}")

    def _fit_in_cluster(self, cluster: ClusterController, db: str,
                        requirement: ResourceVector,
                        replicas: int) -> List[str]:
        ordered_bins = [self._bins[name] for name in cluster.machines
                        if cluster.machines[name].alive]
        chosen: List[str] = []
        for _ in range(replicas):
            placed = False
            for machine_bin in ordered_bins:
                if machine_bin.name in chosen:
                    continue
                if machine_bin.can_fit(requirement):
                    chosen.append(machine_bin.name)
                    placed = True
                    break
            if not placed:
                machine = self.provision_machine(cluster)
                if machine is None:
                    raise SlaViolationError(
                        f"colo {self.name}: cannot fit replica of {db!r}")
                chosen.append(machine.name)
                ordered_bins.append(self._bins[machine.name])
        return chosen

    # -- connection routing -----------------------------------------------------------

    def connect(self, db: str) -> Connection:
        if self.fenced:
            raise ColoFencedError(f"colo {self.name} is fenced")
        if not self.alive:
            raise NoReplicaError(f"colo {self.name} is down")
        return self.cluster_of(db).connect(db)
