"""Command-line interface: regenerate the paper's evaluation tables.

Usage::

    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness fig2 | fig3 | fig4        # throughput figures
    python -m repro.harness fig8 | fig9               # recovery figures
    python -m repro.harness faults --trace t.jsonl    # fault soak + trace
    python -m repro.harness all                       # everything quick

``--trace PATH`` exports the cluster event trace of every run as JSONL
and audits it with the 2PC invariant checker; any violated invariant
makes the command exit non-zero. The figure benchmarks under
``benchmarks/`` are the authoritative regenerators (with shape
assertions); this CLI is the quick interactive way to eyeball a table
without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.invariants import check_controller, check_trace
from repro.cluster import CopyGranularity, ReadOption, WritePolicy
from repro.harness.reporting import format_table
from repro.harness.runner import (run_commit_latency_bench,
                                  run_controller_soak, run_dr_soak,
                                  run_fault_soak, run_many_tenants,
                                  run_partition_soak,
                                  run_recovery_experiment, run_sla_placement,
                                  run_stampede_soak, run_tpcw_cluster)
from repro.sla.model import ResourceVector
from repro.workloads.tpcw import TpcwScale


def _trace_path(base: str, label: str) -> str:
    """Insert a per-run label before the extension of ``base``."""
    if not label:
        return base
    if "." in base.rsplit("/", 1)[-1]:
        stem, ext = base.rsplit(".", 1)
        return f"{stem}.{label}.{ext}"
    return f"{base}.{label}"


def _export_trace(controller, args, label: str = "",
                  expect_recovery_complete: bool = False) -> int:
    """Dump one run's trace and audit it; returns the violation count."""
    if not getattr(args, "trace", None):
        return 0
    path = _trace_path(args.trace, label)
    count = controller.trace.dump_jsonl(path)
    violations = check_controller(
        controller, expect_recovery_complete=expect_recovery_complete)
    status = "OK" if not violations else f"{len(violations)} VIOLATED"
    print(f"trace: {count} events -> {path}; invariants: {status}")
    for violation in violations[:20]:
        print(f"  {violation}")
    return len(violations)


def cmd_table2(args) -> None:
    capacity = ResourceVector(cpu=2.0, memory_mb=1200.0, disk_io_mbps=60.0,
                              disk_mb=20000.0)
    rows = []
    for skew in (0.4, 0.8, 1.2, 1.6, 2.0):
        result = run_sla_placement(skew, n_databases=args.databases,
                                   seed=args.seed,
                                   machine_capacity=capacity,
                                   working_set_fraction=0.55)
        rows.append([result.skew, result.avg_size_mb,
                     result.avg_throughput_tps, result.machines_first_fit,
                     result.machines_optimal])
    print(format_table(
        ["Skew Factor", "Average Size (MB)", "Average Throughput (TPS)",
         "# of Machines Used", "Optimal Solution"], rows))


def cmd_throughput(mix: str, args) -> int:
    rows = []
    violations = 0
    configs = [("no-replication", 1, ReadOption.OPTION_1),
               ("option-1", 2, ReadOption.OPTION_1),
               ("option-2", 2, ReadOption.OPTION_2),
               ("option-3", 2, ReadOption.OPTION_3)]
    for label, replicas, option in configs:
        result = run_tpcw_cluster(
            mix_name=mix, read_option=option,
            write_policy=WritePolicy.CONSERVATIVE,
            machines=4, n_databases=4, replicas=replicas,
            clients_per_db=args.clients, duration_s=args.duration,
            scale=TpcwScale(items=1200, emulated_browsers=args.clients),
            think_time_s=0.02, buffer_pool_pages=256)
        rows.append([label, result.throughput_tps, result.buffer_hit_rate,
                     result.deadlocks])
        violations += _export_trace(result.controller, args,
                                    label=f"{mix}-{label}")
    print(format_table(["configuration", "throughput (tps)",
                        "buffer hit rate", "deadlocks"], rows))
    return violations


def cmd_recovery(args) -> int:
    rows = []
    violations = 0
    for granularity in (CopyGranularity.TABLE, CopyGranularity.DATABASE):
        for threads in (1, 2, 4):
            # Figures 8-9 measure the full-copy reference path: the
            # reject window *is* the quantity under study.
            result = run_recovery_experiment(
                granularity=granularity, recovery_threads=threads,
                machines=4, n_databases=4, clients_per_db=2,
                duration_s=args.duration, failure_time_s=20.0,
                copy_bytes_factor=2000.0, think_time_s=0.3,
                delta_recovery=False)
            rows.append([granularity.value, threads,
                         result.mean_rejections_per_db,
                         result.throughput_before_tps,
                         result.throughput_during_tps,
                         result.throughput_after_tps])
            violations += _export_trace(
                result.controller, args,
                label=f"{granularity.value}-{threads}")
    print(format_table(
        ["copy granularity", "recovery threads", "rejections/db",
         "tps before", "tps during", "tps after"], rows))
    return violations


def cmd_delta_recovery(args) -> int:
    """Log-structured delta recovery vs the full-copy reference."""
    rows = []
    violations = 0
    for label, delta in (("full-copy", False), ("delta", True)):
        # Enough recovery threads that every database affected by the
        # failure starts copying immediately, and a copy size small
        # enough that concurrent copies (which contend for disk I/O on
        # shared targets) all drain to full re-protection within the
        # run — the trace is audited with expect_recovery_complete.
        result = run_recovery_experiment(
            granularity=CopyGranularity.DATABASE, recovery_threads=4,
            machines=4, n_databases=4, clients_per_db=2,
            duration_s=args.duration * 2, failure_time_s=5.0,
            copy_bytes_factor=800.0, think_time_s=0.3,
            delta_recovery=delta)
        rows.append([label, result.rejections_total,
                     result.throughput_during_tps,
                     result.recovery_complete_time,
                     sum(1 for r in result.recovery_records
                         if r.succeeded)])
        violations += _export_trace(result.controller, args, label=label,
                                    expect_recovery_complete=True)
    print(format_table(
        ["pipeline", "rejections", "tps during", "recovered at (s)",
         "recoveries"], rows))
    return violations


def cmd_faults(args) -> int:
    """MTBF-driven failure soak; the flagship --trace demonstration."""
    result = run_fault_soak(duration_s=args.duration * 2,
                            drain_s=args.duration, mtbf_s=args.mtbf,
                            seed=args.seed)
    print(format_table(
        ["failures", "committed", "aborted", "rejected", "tps",
         "recoveries"],
        [[len(result.failures), result.committed, result.aborted,
          result.rejections, result.throughput_tps,
          sum(1 for r in result.recovery_records if r.succeeded)]]))
    latencies = result.metrics.latency_summary()
    if latencies:
        print(format_table(
            ["phase", "count", "mean (s)", "p50 (s)", "p95 (s)", "p99 (s)"],
            [[phase, int(stats["count"]), stats["mean"], stats["p50"],
              stats["p95"], stats["p99"]]
             for phase, stats in latencies.items()]))
    return _export_trace(result.controller, args,
                         expect_recovery_complete=True)


def cmd_stampede(args) -> int:
    """Noisy-neighbour stampede: admission control on vs off."""
    violations = 0
    for label, admission in (("admission-on", True), ("admission-off", False)):
        result = run_stampede_soak(
            admission=admission, duration_s=args.duration * 3,
            ramp_at_s=args.duration, mtbf_s=args.stampede_mtbf,
            drain_s=args.duration if args.stampede_mtbf else 0.0,
            seed=args.seed)
        print(f"-- {label} --")
        print(format_table(
            ["hot goodput (tps)", "provisioned (tps)", "admitted frac",
             "worst nbr rej frac", "worst nbr p99 ratio", "shed reads",
             "breaches", "failures"],
            [[result.hot_goodput_tps,
              "-" if result.hot_provisioned_tps is None
              else result.hot_provisioned_tps,
              result.hot_admitted_fraction,
              result.neighbour_max_rejected_fraction,
              result.neighbour_p99_ratio, result.shed_reads,
              len(result.breaches), len(result.failures)]]))
        summary = result.metrics.per_db_summary()
        print(format_table(
            ["db", "committed", "overload rejected", "rejected frac",
             "baseline p99 (s)", "stampede p99 (s)"],
            [[db, row["committed"], row["overload_rejected"],
              row["overload_rejected_fraction"],
              result.baseline_p99.get(db, 0.0),
              result.stampede_p99.get(db, 0.0)]
             for db, row in summary.items()]))
        violations += _export_trace(result.controller, args, label=label)
    return violations


def _print_network(metrics) -> None:
    """Fabric delivery counters and per-link latency percentiles."""
    summary = metrics.network_summary()
    print(format_table(
        ["sent", "delivered", "dropped", "cut", "rpc timeouts",
         "rpc retries", "false suspicions", "elections", "leader changes"],
        [[summary["messages_sent"], summary["delivered"],
          summary["messages_dropped"], summary["messages_cut"],
          summary["rpc_timeouts"], summary["rpc_retries"],
          summary["false_suspicions"], summary["elections"],
          summary["leader_changes"]]]))
    links = summary["links"]
    if links:
        # Busiest links only; a 6-machine soak has dozens of directions.
        busiest = sorted(links.items(), key=lambda kv: -kv[1]["count"])[:8]
        print(format_table(
            ["link", "messages", "mean (s)", "p50 (s)", "p99 (s)"],
            [[link, int(stats["count"]), stats["mean"], stats["p50"],
              stats["p99"]] for link, stats in busiest]))


def cmd_partitions(args) -> int:
    """Unreliable-fabric soak: partitions, silent crashes, takeover."""
    result = run_partition_soak(duration_s=args.duration * 2,
                                drain_s=max(args.duration, 30.0),
                                partition_mtbf_s=args.mtbf,
                                seed=args.seed)
    print(format_table(
        ["partitions", "crashes", "repairs", "committed", "aborted",
         "rejected", "tps", "recoveries"],
        [[len(result.partitions), len(result.failures),
          len(result.repairs), result.committed, result.aborted,
          result.rejections, result.throughput_tps,
          sum(1 for r in result.recovery_records if r.succeeded)]]))
    print(format_table(
        ["suspected", "declared", "readmitted", "takeover commits",
         "takeover aborts"],
        [[result.suspected_total, len(result.declared),
          len(result.readmitted), len(result.takeover_committed),
          len(result.takeover_aborted)]]))
    _print_network(result.metrics)
    return _export_trace(result.controller, args,
                         expect_recovery_complete=True)


def cmd_controllers(args) -> int:
    """Controller-churn soak: consensus group vs process-pair reference."""
    violations = 0
    for label, consensus in (("consensus", True), ("pair", False)):
        result = run_controller_soak(
            consensus=consensus, duration_s=args.duration * 2,
            drain_s=max(args.duration, 15.0), ctl_kill_mtbf_s=args.mtbf,
            seed=args.seed)
        mode = ("multi-Paxos group (consensus_enabled=True)" if consensus
                else "process pair (consensus_enabled=False)")
        print(f"-- {mode} --")
        print(format_table(
            ["ctl kills", "ctl partitions", "elections", "leader changes",
             "takeovers", "orphaned txns"],
            [[len(result.kills), len(result.ctl_partitions),
              result.elections, result.leader_changes, result.takeovers,
              result.orphaned]]))
        print(format_table(
            ["committed", "aborted", "reconnects", "recoveries"],
            [[result.committed, result.aborted, result.reconnects,
              sum(1 for r in result.recovery_records if r.succeeded)]]))
        _print_network(result.metrics)
        violations += _export_trace(result.controller, args, label=label,
                                    expect_recovery_complete=True)
    return violations


def cmd_disaster(args) -> int:
    """Cross-colo DR soak: lossy WAN, colo kill, fenced failover."""
    result = run_dr_soak(duration_s=args.duration * 2,
                         drain_s=max(args.duration, 20.0),
                         wan_partition_mtbf_s=args.mtbf,
                         seed=args.seed)
    print(format_table(
        ["wan partitions", "committed", "aborted", "colo killed",
         "suspected", "declared", "promotions", "failbacks"],
        [[len(result.partitions), result.committed, result.aborted,
          result.colo_killed, result.suspected_total,
          len(result.declared), result.promotions, result.failbacks]]))
    summary = result.dr
    print(format_table(
        ["shipped", "applied", "dropped", "false suspicions"],
        [[summary["shipped"], summary["applied"], summary["dropped"],
          summary["false_suspicions"]]]))
    if summary["promotions"]:
        print(format_table(
            ["db", "old primary", "new primary", "epoch", "RPO (commits)",
             "RTO (s)"],
            [[p["db"], p["old_primary"], p["new_primary"], p["epoch"],
              p["rpo_commits"],
              "-" if p["rto_s"] is None else p["rto_s"]]
             for p in summary["promotions"]]))
    print(format_table(
        ["db", "replication lag"],
        [[db, lag] for db, lag in sorted(result.replication_lag.items())]))
    _print_network(result.metrics)
    # The system tier has its own tracer; audit with the DR rules armed
    # (a drained soak must end with every live link caught up).
    system = result.system
    if not getattr(args, "trace", None):
        return 0
    path = _trace_path(args.trace, "")
    count = system.trace.dump_jsonl(path)
    violations = check_trace(system.trace.events(),
                             expect_lag_drained=True,
                             dropped=system.trace.dropped)
    status = "OK" if not violations else f"{len(violations)} VIOLATED"
    print(f"trace: {count} events -> {path}; invariants: {status}")
    for violation in violations[:20]:
        print(f"  {violation}")
    return len(violations)


def cmd_clustertxn(args) -> int:
    """2PC phase latency: parallel fan-out vs sequential reference."""
    rows = []
    for replicas in (2, 3, 5):
        for policy in (WritePolicy.AGGRESSIVE, WritePolicy.CONSERVATIVE):
            results = {}
            for parallel in (False, True):
                results[parallel] = run_commit_latency_bench(
                    replicas=replicas, write_policy=policy,
                    parallel_commit=parallel, seed=args.seed)
            seq, par = results[False], results[True]
            speedup = (seq.commit_path_p50 / par.commit_path_p50
                       if par.commit_path_p50 else 0.0)
            rows.append([replicas, policy.value,
                         seq.p50("prepare"), par.p50("prepare"),
                         seq.p50("commit"), par.p50("commit"),
                         f"{speedup:.2f}x", par.committed])
    print(format_table(
        ["rf", "policy", "seq prep p50", "par prep p50",
         "seq commit p50", "par commit p50", "2pc speedup", "committed"],
        rows))
    return 0


def cmd_many_tenants(args) -> int:
    """Tenant-scale soak: mostly-cold tenants on the lazy fast path."""
    result = run_many_tenants(n_databases=args.tenants,
                              duration_s=args.duration * 2,
                              flash_at_s=args.duration,
                              seed=args.seed)
    print(format_table(
        ["tenants", "hot", "committed", "tps", "churn +/-",
         "flash 1st commit (s)", "flash committed"],
        [[result.n_databases, result.hot_tenants, result.committed,
          result.throughput_tps,
          f"+{result.churn_creates}/-{result.churn_drops}",
          "-" if result.flash_first_commit_s is None
          else result.flash_first_commit_s,
          result.flash_committed]]))
    print(format_table(
        ["resident logs", "log entries", "lsn maps", "admission buckets",
         "latency histograms", "summarised", "cold engines", "paged out"],
        [[result.resident_db_logs, result.resident_log_entries,
          result.resident_replica_lsn_maps,
          result.resident_admission_buckets,
          result.resident_latency_histograms,
          result.summarised_latency_tenants, result.cold_engine_tenants,
          result.paged_out_logs]]))
    return _export_trace(result.controller, args)


def cmd_table1(args) -> None:
    # Import lazily: the benchmark module carries the implementation.
    sys.path.insert(0, "benchmarks")
    try:
        from bench_table1_serializability import regenerate_table1
    except ImportError:
        print("run from the repository root (needs benchmarks/ on path)")
        return
    table, _ = regenerate_table1()
    print(table)


EXPERIMENTS = [
    ("table1", "serializability matrix for the read/write policy options"),
    ("table2", "SLA-driven placement vs optimal bin packing"),
    ("fig2", "TPC-W shopping-mix throughput across replication options"),
    ("fig3", "TPC-W browsing-mix throughput across replication options"),
    ("fig4", "TPC-W ordering-mix throughput across replication options"),
    ("fig8-9", "recovery throughput/rejections by copy granularity"),
    ("delta", "log-structured delta recovery vs the full-copy reference"),
    ("faults", "MTBF failure soak with recovery (trace/invariant demo)"),
    ("stampede", "noisy-neighbour stampede soak: per-tenant admission "
                 "control, read shedding, SLA-bound rejections"),
    ("partitions", "unreliable-fabric soak: partitions, heartbeat "
                   "detection, fencing, process-pair takeover"),
    ("controllers", "controller-kill soak: multi-Paxos elections, leader "
                    "leases, take-over cleanup vs the process pair"),
    ("disaster", "cross-colo DR soak: lossy WAN log shipping, colo kill, "
                 "fenced failover, re-protection, RPO/RTO"),
    ("clustertxn", "2PC phase latency: parallel commit fan-out vs the "
                   "sequential reference coordinator"),
    ("manytenants", "tenant-scale soak: thousands of mostly-cold tenants "
                    "on the lazy fast path, with churn and a flash crowd"),
    ("all", "every experiment above, quick settings"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's evaluation tables")
    parser.add_argument("experiment", nargs="?",
                        choices=[name for name, _ in EXPERIMENTS])
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--duration", type=float, default=12.0,
                        help="simulated seconds per run")
    parser.add_argument("--clients", type=int, default=4,
                        help="emulated browsers per database")
    parser.add_argument("--databases", type=int, default=20,
                        help="tenant databases for placement experiments")
    parser.add_argument("--tenants", type=int, default=2000,
                        help="staged tenants for the manytenants soak")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--trace", metavar="PATH",
                        help="export each run's event trace as JSONL and "
                             "audit it with the 2PC invariant checker "
                             "(non-zero exit on violations)")
    parser.add_argument("--mtbf", type=float, default=8.0,
                        help="mean time between failures for the faults "
                             "experiment (simulated seconds)")
    parser.add_argument("--stampede-mtbf", type=float, default=None,
                        help="layer random machine failures (mean seconds "
                             "between) on the stampede soak; off by default")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(name) for name, _ in EXPERIMENTS)
        for name, description in EXPERIMENTS:
            print(f"{name:<{width}}  {description}")
        return 0
    if args.experiment is None:
        parser.error("the following arguments are required: experiment")

    chosen = args.experiment
    violations = 0
    if chosen in ("table1", "all"):
        print("== Table 1: serializability matrix ==")
        cmd_table1(args)
    if chosen in ("table2", "all"):
        print("\n== Table 2: SLA placement ==")
        cmd_table2(args)
    for fig, mix in (("fig2", "shopping"), ("fig3", "browsing"),
                     ("fig4", "ordering")):
        if chosen in (fig, "all"):
            print(f"\n== {fig.upper()}: throughput, {mix} mix ==")
            violations += cmd_throughput(mix, args)
    if chosen in ("fig8-9", "all"):
        print("\n== Figures 8-9: recovery ==")
        violations += cmd_recovery(args)
    if chosen in ("delta", "all"):
        print("\n== Delta recovery: log-structured vs full copy ==")
        violations += cmd_delta_recovery(args)
    if chosen in ("faults", "all"):
        print("\n== Fault soak: MTBF failures with recovery ==")
        violations += cmd_faults(args)
    if chosen in ("stampede", "all"):
        print("\n== Stampede soak: admission control vs noisy neighbour ==")
        violations += cmd_stampede(args)
    if chosen in ("partitions", "all"):
        print("\n== Partition soak: unreliable fabric, detection, "
              "takeover ==")
        violations += cmd_partitions(args)
    if chosen in ("controllers", "all"):
        print("\n== Controller soak: Paxos elections, leases, take-over ==")
        violations += cmd_controllers(args)
    if chosen in ("disaster", "all"):
        print("\n== Disaster soak: WAN shipping, colo failover, RPO/RTO ==")
        violations += cmd_disaster(args)
    if chosen in ("clustertxn", "all"):
        print("\n== Cluster commit: parallel fan-out vs sequential ==")
        violations += cmd_clustertxn(args)
    if chosen in ("manytenants", "all"):
        print("\n== Many tenants: lazy fast path at tenant scale ==")
        violations += cmd_many_tenants(args)
    if violations:
        print(f"\n{violations} invariant violation(s) detected")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
