"""Unit tests for seeded RNG helpers and the zipfian generator."""

import pytest

from repro.sim.rng import SeededRNG, ZipfGenerator


class TestSeededRNG:
    def test_determinism(self):
        a = SeededRNG(42)
        b = SeededRNG(42)
        assert [a.randint(0, 100) for _ in range(10)] == \
            [b.randint(0, 100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRNG(1)
        b = SeededRNG(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != \
            [b.randint(0, 10 ** 9) for _ in range(5)]

    def test_fork_is_deterministic_and_independent(self):
        base = SeededRNG(7)
        f1 = base.fork("stream-a")
        f2 = SeededRNG(7).fork("stream-a")
        assert f1.randint(0, 10 ** 9) == f2.randint(0, 10 ** 9)
        assert base.fork("x").randint(0, 10 ** 9) != \
            SeededRNG(7).fork("y").randint(0, 10 ** 9)

    def test_weighted_choice_respects_weights(self):
        rng = SeededRNG(3)
        picks = [rng.weighted_choice(["a", "b"], [0.95, 0.05])
                 for _ in range(500)]
        assert picks.count("a") > 400

    def test_string_length_and_alphabet(self):
        rng = SeededRNG(0)
        s = rng.string(12)
        assert len(s) == 12
        assert s.islower()


class TestZipf:
    def test_invalid_parameters(self):
        rng = SeededRNG(0)
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfGenerator(10, -0.5, rng)

    def test_ranks_in_support(self):
        z = ZipfGenerator(50, 1.0, SeededRNG(1))
        for _ in range(200):
            assert 1 <= z.sample_rank() <= 50

    def test_zero_skew_is_roughly_uniform(self):
        z = ZipfGenerator(10, 0.0, SeededRNG(2))
        mean = sum(z.sample_rank() for _ in range(5000)) / 5000
        assert 5.0 < mean < 6.0  # uniform over 1..10 has mean 5.5

    def test_higher_skew_concentrates_low_ranks(self):
        low = ZipfGenerator(100, 0.4, SeededRNG(3))
        high = ZipfGenerator(100, 2.0, SeededRNG(3))
        low_mean = sum(low.sample_rank() for _ in range(3000)) / 3000
        high_mean = sum(high.sample_rank() for _ in range(3000)) / 3000
        assert high_mean < low_mean

    def test_sample_in_range_bounds(self):
        z = ZipfGenerator(32, 1.2, SeededRNG(4))
        for _ in range(200):
            v = z.sample_in_range(200.0, 1000.0)
            assert 200.0 <= v <= 1000.0

    def test_sample_in_range_empty_range_rejected(self):
        z = ZipfGenerator(8, 1.0, SeededRNG(5))
        with pytest.raises(ValueError):
            z.sample_in_range(10, 5)

    def test_single_rank_maps_to_low(self):
        z = ZipfGenerator(1, 1.0, SeededRNG(6))
        assert z.sample_in_range(3.0, 9.0) == 3.0
