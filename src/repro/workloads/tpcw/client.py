"""Emulated browsers: the TPC-W client driver.

Each :class:`TpcwClient` is one emulated browser (EB) attached to one
database connection, looping: pick an interaction from the mix, run its
transaction, think, repeat. Aborted transactions (deadlocks, proactive
rejections, failures) are counted and the session continues — exactly how
the paper's load generator keeps running through machine failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.cluster.controller import ClusterController, TransactionAborted
from repro.errors import (DeadlockError, LockTimeoutError,
                          MachineFailedError, NoReplicaError,
                          ProactiveRejectionError)
from repro.sim.rng import SeededRNG
from repro.workloads.tpcw.datagen import TpcwDatabase
from repro.workloads.tpcw.mixes import Mix
from repro.workloads.tpcw.transactions import TpcwSession


@dataclass
class ClientStats:
    """Outcome counters for one emulated browser."""

    completed: int = 0
    deadlocks: int = 0
    rejections: int = 0
    other_aborts: int = 0
    backoffs: int = 0          # retryable rejections waited out with jitter
    by_interaction: Dict[str, int] = field(default_factory=dict)


class TpcwClient:
    """One emulated browser session against one tenant database."""

    def __init__(self, controller: ClusterController, db_name: str,
                 data: TpcwDatabase, mix: Mix, client_id: int,
                 seed: int = 0, think_time_s: float = 0.05,
                 backoff_s: float = 0.5):
        self.controller = controller
        self.db_name = db_name
        self.data = data
        self.mix = mix
        self.client_id = client_id
        self.rng = SeededRNG(seed).fork(f"client-{db_name}-{client_id}")
        self.think_time_s = think_time_s
        # Base wait after a retryable rejection (admission control's
        # "try again later"); jittered to avoid a synchronised retry
        # stampede. Zero disables the backoff.
        self.backoff_s = backoff_s
        self.stats = ClientStats()

    def run(self, until: Optional[float] = None,
            interactions: Optional[int] = None) -> Generator:
        """Sim process body: run until ``until`` sim-seconds or N interactions.

        At least one bound must be given.
        """
        if until is None and interactions is None:
            raise ValueError("need an 'until' time or an interaction count")
        sim = self.controller.sim
        conn = self.controller.connect(self.db_name)
        customer = self.rng.randint(1, self.data.scale.customers)
        cart = (self.client_id % (self.data.scale.emulated_browsers * 4)) + 1
        session = TpcwSession(conn, self.data, self.rng, customer, cart)
        done = 0
        while True:
            if until is not None and sim.now >= until:
                break
            if interactions is not None and done >= interactions:
                break
            name = self.mix.choose(self.rng)
            try:
                yield from getattr(session, name)()
            except TransactionAborted as exc:
                self._classify(exc)
                if (self.backoff_s > 0
                        and getattr(exc.cause, "retryable", False)):
                    # The platform said "over provisioned rate, retry
                    # later": back off with jitter instead of hammering
                    # the admission gate at full think-time speed.
                    self.stats.backoffs += 1
                    yield sim.timeout(self.backoff_s
                                      * (0.5 + self.rng.random()))
            else:
                self.stats.completed += 1
                self.stats.by_interaction[name] = (
                    self.stats.by_interaction.get(name, 0) + 1)
            done += 1
            if self.think_time_s > 0:
                yield sim.timeout(self.rng.expovariate(1.0 / self.think_time_s))
        conn.close()
        return self.stats

    def _classify(self, exc: TransactionAborted) -> None:
        cause = exc.cause
        if isinstance(cause, (DeadlockError, LockTimeoutError)):
            self.stats.deadlocks += 1
        elif isinstance(cause, (ProactiveRejectionError, MachineFailedError,
                                NoReplicaError)):
            self.stats.rejections += 1
        else:
            self.stats.other_aborts += 1
