"""Differential property tests for the cost-based optimizer stage.

Two families:

* cost-based compiled (batch execution on) vs cost-based interpreter —
  the full parity contract of ``test_compiled_executor_property``: same
  rows, rowcounts, CostReports, and lock footprints. Batch execution and
  top-N fusion must be invisible in every observable.
* cost-based vs the heuristic planner (``cost_based=False``) — the
  optimizer may pick different access paths and join orders, so physical
  observables (locks, scan counts) legitimately differ; the *answer* may
  not. Rows are compared as multisets (exact sequences when the query
  has a deterministic ORDER BY ... LIMIT shape would also hold, but the
  multiset check keeps the oracle independent of plan choice).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, EngineConfig

values = st.integers(min_value=-20, max_value=20)
rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60),
              st.one_of(st.none(), values),
              st.integers(min_value=-10, max_value=10),
              st.sampled_from(["alpha", "beta", "gamma", ""])),
    max_size=30,
    unique_by=lambda r: r[0],
)
dim_rows_strategy = st.lists(
    st.tuples(st.integers(min_value=-10, max_value=10),
              st.integers(min_value=0, max_value=3)),
    max_size=12,
    unique_by=lambda r: r[0],
)

QUERIES = [
    ("SELECT k, v FROM t WHERE k = ?", 1),
    ("SELECT k FROM t WHERE w = ?", 1),
    ("SELECT k FROM t WHERE w >= ? AND w <= ? AND v IS NOT NULL", 2),
    ("SELECT k, v, w FROM t WHERE v = ? OR w = ?", 2),
    ("SELECT COUNT(*), SUM(v), MIN(k), MAX(w) FROM t WHERE k < ?", 1),
    ("SELECT w, COUNT(*) FROM t GROUP BY w", 0),
    ("SELECT k, s FROM t WHERE v >= ? ORDER BY s DESC, k LIMIT 4", 1),
    ("SELECT k FROM t ORDER BY v, k LIMIT 3 OFFSET 1", 0),
    ("SELECT t.k, d.grp FROM t, d WHERE t.w = d.id", 0),
    ("SELECT t.k FROM t, d WHERE t.w = d.id AND d.grp = ?", 1),
    ("SELECT COUNT(*) FROM t, d WHERE t.w = d.id AND d.grp = ? "
     "AND t.v IS NOT NULL", 1),
]


def build_engine(rows, dim_rows, **overrides):
    engine = Engine(config=EngineConfig(**overrides))
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(
        txn, "db",
        "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER, "
        "w INTEGER, s VARCHAR(10))")
    engine.execute_sync(txn, "db", "CREATE INDEX t_w ON t (w)")
    engine.execute_sync(
        txn, "db",
        "CREATE TABLE d (id INTEGER PRIMARY KEY, grp INTEGER)")
    engine.execute_sync(txn, "db", "CREATE INDEX d_grp ON d (grp)")
    for row in rows:
        engine.execute_sync(txn, "db",
                            "INSERT INTO t VALUES (?, ?, ?, ?)", row)
    for row in dim_rows:
        engine.execute_sync(txn, "db", "INSERT INTO d VALUES (?, ?)", row)
    engine.commit(txn)
    return engine


def run_one(engine, sql, params):
    txn = engine.begin()
    try:
        result = engine.execute_sync(txn, "db", sql, params)
        held = dict(engine.locks.held(txn.txn_id))
        engine.commit(txn)
        return result, held, None
    except Exception as exc:  # noqa: BLE001 - compared across engines
        engine.abort(txn)
        return None, None, (type(exc).__name__, str(exc))


@settings(max_examples=50, deadline=None)
@given(rows_strategy, dim_rows_strategy,
       st.sampled_from(QUERIES), st.lists(values, min_size=2, max_size=2))
def test_compiled_batch_full_parity(rows, dim_rows, query, raw_params):
    """Cost-based compiled+batch vs cost-based interpreter: everything
    observable must be identical."""
    sql, arity = query
    params = tuple(raw_params[:arity])
    engines = [build_engine(rows, dim_rows, compile_plans=True),
               build_engine(rows, dim_rows, compile_plans=False)]
    (res_c, held_c, err_c), (res_i, held_i, err_i) = [
        run_one(engine, sql, params) for engine in engines]
    assert err_c == err_i, f"{sql}: errors diverge: {err_c} vs {err_i}"
    if err_c is not None:
        return
    assert held_c == held_i, f"{sql}: lock footprints diverge"
    assert res_c.columns == res_i.columns
    assert res_c.rows == res_i.rows, f"{sql}: rows diverge"
    assert res_c.rowcount == res_i.rowcount
    assert res_c.cost == res_i.cost, (
        f"{sql}: cost reports diverge: {res_c.cost} vs {res_i.cost}")


@settings(max_examples=50, deadline=None)
@given(rows_strategy, dim_rows_strategy,
       st.sampled_from(QUERIES), st.lists(values, min_size=2, max_size=2))
def test_cost_based_answers_match_heuristic(rows, dim_rows, query,
                                            raw_params):
    """Plan choice may differ; the answer may not."""
    sql, arity = query
    params = tuple(raw_params[:arity])
    engines = [build_engine(rows, dim_rows, cost_based=True),
               build_engine(rows, dim_rows, cost_based=False)]
    (res_c, _, err_c), (res_h, _, err_h) = [
        run_one(engine, sql, params) for engine in engines]
    assert err_c == err_h, f"{sql}: errors diverge: {err_c} vs {err_h}"
    if err_c is not None:
        return
    assert res_c.columns == res_h.columns
    assert res_c.rowcount == res_h.rowcount, f"{sql}: rowcount diverges"
    if " ORDER BY " in sql:
        # Deterministic output order (every ORDER BY here is a total
        # order thanks to the k tiebreaker or a LIMIT over one).
        assert res_c.rows == res_h.rows, f"{sql}: ordered rows diverge"
    else:
        assert Counter(res_c.rows) == Counter(res_h.rows), (
            f"{sql}: row multisets diverge")


@settings(max_examples=30, deadline=None)
@given(rows_strategy, dim_rows_strategy,
       st.lists(st.sampled_from([
           ("UPDATE t SET v = ? WHERE w = ?", 2),
           ("UPDATE t SET w = w + 1, s = 'x' WHERE k >= ?", 1),
           ("DELETE FROM t WHERE v = ?", 1),
           ("INSERT INTO t VALUES (?, 1, 2, 'n')", 1),
       ]), min_size=1, max_size=3),
       st.lists(values, min_size=2, max_size=2))
def test_dml_state_matches_heuristic(rows, dim_rows, stmts, raw_params):
    """After identical DML, both planners leave identical tables."""
    engines = [build_engine(rows, dim_rows, cost_based=True),
               build_engine(rows, dim_rows, cost_based=False)]
    for sql, arity in stmts:
        params = tuple(raw_params[:arity])
        if sql.startswith("INSERT"):
            params = (100 + params[0],)
        outcomes = [run_one(engine, sql, params) for engine in engines]
        assert outcomes[0][2] == outcomes[1][2]
    finals = [run_one(engine, "SELECT k, v, w, s FROM t ORDER BY k", ())
              for engine in engines]
    assert finals[0][2] is None
    assert finals[0][0].rows == finals[1][0].rows
