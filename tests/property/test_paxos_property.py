"""Property test: multi-Paxos safety under seeded message chaos.

Satellite 3. A chaos transport drops, duplicates, and reorders every
consensus message with seeded randomness while a driver keeps proposing
commands and the leader is crashed and repaired mid-run. Whatever the
schedule, the group must preserve:

* **single/multi-decree safety** — no two replicas ever choose
  different commands for the same log index;
* **log agreement** — once the chaos stops, every replica converges to
  the same applied prefix and the same replayed state;
* **determinism** — the same seed reproduces the identical outcome,
  message drops and all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.consensus import (ConsensusConfig, PaxosGroup,
                                     command_digest)
from repro.errors import NotLeaderError
from repro.sim import Simulator
from repro.sim.rng import SeededRNG


class ChaosTransport:
    """Seeded drop / duplication / random-delay (reordering) transport.

    Unlike the fabric there is no FIFO clamp: two messages on the same
    link can overtake each other, which is exactly the reordering the
    Paxos safety argument must survive.
    """

    def __init__(self, sim, seed, drop_p=0.1, dup_p=0.1, max_delay_s=0.05):
        self.sim = sim
        self.rng = SeededRNG(seed).fork("chaos-transport")
        self.drop_p = drop_p
        self.dup_p = dup_p
        self.max_delay_s = max_delay_s

    def send(self, group, src, dst, msg):
        if self.rng.uniform(0.0, 1.0) < self.drop_p:
            return
        copies = 2 if self.rng.uniform(0.0, 1.0) < self.dup_p else 1
        for _ in range(copies):
            delay = self.rng.uniform(0.0005, self.max_delay_s)
            proc = self.sim.process(self._deliver(group, dst, dict(msg),
                                                  delay))
            proc.defused = True

    def _deliver(self, group, dst, msg, delay):
        yield self.sim.timeout(delay)
        group.enqueue(dst, msg)


def run_chaos(seed, drop_p, n_nodes, commands=10, crash_leader=True):
    """One seeded chaos run; returns a canonical outcome fingerprint."""
    sim = Simulator()
    transport = ChaosTransport(sim, seed=seed, drop_p=drop_p,
                               dup_p=min(0.2, drop_p + 0.05))
    names = [f"ctl{i}" for i in range(n_nodes)]
    group = PaxosGroup(sim, names, config=ConsensusConfig(seed=seed),
                       transport=transport)
    group.start()

    proposed = []

    def driver():
        i = 0
        while i < commands:
            leader = group.leader()
            if leader is None:
                yield sim.timeout(0.2)
                continue
            cmd = ("placement", {"db": f"db{i}", "target": f"m{i}"})
            try:
                yield from group.propose(leader, cmd, timeout_s=2.0)
            except NotLeaderError:
                yield sim.timeout(0.2)
                continue
            proposed.append(i)
            i += 1

    def chaos_monkey():
        # Crash whoever leads mid-run, repair them a little later: the
        # proposals must span at least one leader change.
        yield sim.timeout(3.0)
        leader = group.leader()
        if leader is not None:
            group.crash(leader.name)
            yield sim.timeout(2.0)
            group.repair(leader.name)

    drv = sim.process(driver())
    drv.defused = True
    if crash_leader:
        monkey = sim.process(chaos_monkey())
        monkey.defused = True
    sim.run(until=30.0)

    # -- safety while the chaos was live --------------------------------------
    per_index = {}
    for node in group.nodes.values():
        for index, cmd in node.chosen.items():
            digest = command_digest(*cmd)
            prior = per_index.setdefault(index, (digest, node.name))
            assert prior[0] == digest, (
                f"seed={seed}: index {index} chosen as {digest} on "
                f"{node.name} but {prior[0]} on {prior[1]}")

    # -- convergence once the chaos stops -------------------------------------
    transport.drop_p = 0.0
    transport.dup_p = 0.0
    sim.run(until=45.0)
    applied = {node.name: node.applied_to for node in group.nodes.values()}
    assert len(set(applied.values())) == 1, f"seed={seed}: {applied}"
    states = [node.state.placements for node in group.nodes.values()]
    assert all(s == states[0] for s in states), f"seed={seed}: {states}"
    chosen_logs = [node.chosen for node in group.nodes.values()]
    assert all(log == chosen_logs[0] for log in chosen_logs)
    # Every driver-confirmed command is in the converged log.
    landed = {cmd[1]["db"] for cmd in chosen_logs[0].values()
              if cmd[0] == "placement"}
    assert {f"db{i}" for i in proposed} <= landed

    fingerprint = tuple(
        (index, command_digest(*chosen_logs[0][index]))
        for index in sorted(chosen_logs[0]))
    return (fingerprint, group.last_leader, max(applied.values()))


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       drop_p=st.sampled_from([0.0, 0.05, 0.15, 0.3]),
       n_nodes=st.sampled_from([3, 5]))
def test_multi_decree_safety_under_message_chaos(seed, drop_p, n_nodes):
    run_chaos(seed, drop_p, n_nodes)


@settings(deadline=None, max_examples=5)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_same_seed_reproduces_identical_outcome(seed):
    first = run_chaos(seed, drop_p=0.2, n_nodes=3)
    second = run_chaos(seed, drop_p=0.2, n_nodes=3)
    assert first == second


def test_single_decree_uniqueness_under_heavy_loss():
    """One command, brutal loss: it may take many retransmits, but the
    chosen value for index 1 is unique on every replica that has it."""
    for seed in range(5):
        run_chaos(seed, drop_p=0.4, n_nodes=3, commands=1,
                  crash_leader=False)
