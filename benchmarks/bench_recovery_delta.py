"""Log-structured delta re-replication vs the full-copy reference.

One database under steady write load loses a replica; re-replication
restores the factor. The full-copy pipeline rejects every write for the
copy's whole duration, so its rejected-write count and reject window
grow linearly with database size (``copy_bytes_factor``). The delta
pipeline dumps a snapshot at a pinned LSN without rejecting anything,
replays the retained commit log on the target, and rejects only during
the final log-drain handoff — a near-zero window independent of size.

Two modes:

* ``pytest benchmarks/bench_recovery_delta.py --benchmark-only`` — a
  pytest-benchmark wrapper timing one run per pipeline (deterministic
  simulation; tracks harness wall-clock);
* ``python benchmarks/bench_recovery_delta.py`` — plain mode: runs the
  size sweep for both pipelines, audits every run with the invariant
  checker, asserts the shape (full-copy rejections grow with size,
  delta stays near zero), and writes ``BENCH_recovery_delta.json`` at
  the repository root. ``--smoke`` shrinks the sweep for CI.
"""

import sys

import pytest

sys.path.insert(0, "src")

from repro.analysis.invariants import check_controller
from repro.harness.runner import run_delta_recovery_bench

#: Database-size scale points (bytes multiplier on the generated rows);
#: the largest lands the full copy in the paper's ~2-minutes-for-200MB
#: class.
FACTORS = (5_000.0, 20_000.0, 80_000.0)
SMOKE_FACTORS = (2_000.0, 10_000.0)


def run_point(delta, factor, duration_s=60.0):
    result = run_delta_recovery_bench(delta, copy_bytes_factor=factor,
                                      duration_s=duration_s)
    violations = check_controller(result.controller,
                                  expect_recovery_complete=True)
    assert not violations, \
        "invariant violation in bench run:\n" + \
        "\n".join(str(v) for v in violations)
    assert result.recovery_duration_s is not None, \
        f"recovery did not finish (delta={delta}, factor={factor})"
    return {
        "copy_bytes_factor": factor,
        "committed": result.committed,
        "rejections": result.rejections,
        "recovery_duration_s": round(result.recovery_duration_s, 4),
        "reject_window_s": round(result.reject_window_s, 4),
        "replayed": result.replayed,
    }


def sweep(factors, duration_s=60.0):
    """{pipeline: [row per size]} for both pipelines."""
    return {
        label: [run_point(delta, factor, duration_s=duration_s)
                for factor in factors]
        for label, delta in (("full", False), ("delta", True))
    }


def format_sweep(table):
    lines = [f"{'pipeline':<8}  {'size factor':>11}  {'rejected':>8}  "
             f"{'reject win (s)':>14}  {'recovery (s)':>12}"]
    for label, rows in table.items():
        for row in rows:
            lines.append(
                f"{label:<8}  {row['copy_bytes_factor']:>11.0f}  "
                f"{row['rejections']:>8}  {row['reject_window_s']:>14.4f}  "
                f"{row['recovery_duration_s']:>12.2f}")
    return "\n".join(lines)


def check_shape(table):
    """Delta's reject window must not scale with size; full-copy's must."""
    full, delta = table["full"], table["delta"]
    # Full copy: reject window and rejection count grow with size.
    assert full[-1]["reject_window_s"] > full[0]["reject_window_s"], \
        "full-copy reject window should grow with database size"
    assert full[-1]["rejections"] > full[0]["rejections"], \
        "full-copy rejections should grow with database size"
    # Delta: the drain window stays far below the smallest full copy
    # at every size (near-constant, near-zero).
    smallest_full = min(row["reject_window_s"] for row in full)
    for row in delta:
        assert row["reject_window_s"] < 0.25 * smallest_full, (
            f"delta reject window {row['reject_window_s']}s at factor "
            f"{row['copy_bytes_factor']} is not << full copy's "
            f"{smallest_full}s")
        assert row["rejections"] <= full[0]["rejections"], \
            "delta should reject no more than the smallest full copy"
    # Delta actually replayed the log (it did not just re-dump).
    assert all(row["replayed"] and row["replayed"] > 0 for row in delta)


# -- pytest-benchmark wrappers ------------------------------------------------


@pytest.mark.benchmark(group="recovery-delta")
@pytest.mark.parametrize("delta", [True, False], ids=["delta", "full"])
def test_bench_recovery_pipeline(benchmark, delta):
    result = benchmark(run_delta_recovery_bench, delta,
                       copy_bytes_factor=5_000.0, duration_s=30.0)
    assert result.committed > 0


# -- plain mode ---------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="Delta vs full-copy recovery benchmark (plain mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="two smaller size points, shorter runs (CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    factors = SMOKE_FACTORS if args.smoke else FACTORS
    duration_s = 30.0 if args.smoke else 60.0
    table = sweep(factors, duration_s=duration_s)
    check_shape(table)

    payload = {
        "benchmark": "recovery_delta",
        "unit": "seconds",
        "smoke": bool(args.smoke),
        "pipelines": table,
    }
    out = args.out or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_recovery_delta.json"))
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_sweep(table))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
