"""Unit tests for the cost-based optimizer stage.

Covers the acceptance contract of the optimizer PR: join orders picked
by estimated cost (not syntax), heuristic planning preserved exactly
behind ``cost_based=False``, conservative deferral on empty tables, and
the EXPLAIN surface (estimate suffixes, verbose rejected plans).
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.explain import explain


def populated_engine(**overrides):
    """t: 300 fact rows (t.v points into d.id, 40-ish rows per value);
    d: 50 dimension rows fanned 10 ways by the indexed d.grp."""
    engine = Engine(config=EngineConfig(**overrides))
    engine.create_database("db")
    txn = engine.begin()
    engine.execute_sync(txn, "db",
                        "CREATE TABLE t (k INTEGER PRIMARY KEY, "
                        "v INTEGER, s VARCHAR(10))")
    engine.execute_sync(txn, "db", "CREATE INDEX t_v ON t (v)")
    engine.execute_sync(txn, "db",
                        "CREATE TABLE d (id INTEGER PRIMARY KEY, "
                        "grp INTEGER, label VARCHAR(10))")
    engine.execute_sync(txn, "db", "CREATE INDEX d_grp ON d (grp)")
    for k in range(300):
        engine.execute_sync(txn, "db", "INSERT INTO t VALUES (?, ?, ?)",
                            (k, k % 50, f"s{k}"))
    for i in range(50):
        engine.execute_sync(txn, "db", "INSERT INTO d VALUES (?, ?, ?)",
                            (i, i % 10, f"d{i}"))
    engine.commit(txn)
    return engine


JOIN_SQL = "SELECT COUNT(*) FROM t, d WHERE t.v = d.id AND d.grp = ?"


class TestJoinOrder:
    def test_picks_non_syntactic_join_order(self):
        """t is listed first, but starting from the filtered d (5 rows
        via the d_grp index) and index-looking-up into t is cheaper —
        the optimizer must reorder."""
        engine = populated_engine()
        text = explain(engine.plan("db", JOIN_SQL))
        lines = text.splitlines()
        scans = [line for line in lines if "Scan" in line]
        # The first (outermost) access is d via its grp index, not t.
        assert "d.d_grp" in scans[0], text
        assert "IndexLookupJoin" in text
        # The inner side probes t through the t_v index.
        assert any("t.t_v" in line for line in scans[1:]), text

    def test_heuristic_keeps_syntactic_order(self):
        engine = populated_engine(cost_based=False)
        text = explain(engine.plan("db", JOIN_SQL))
        scans = [line for line in text.splitlines() if "Scan" in line]
        assert " t" in scans[0] or "t." in scans[0], text
        assert "d.d_grp" not in scans[0]

    def test_reordered_join_answers_match(self):
        answers = []
        for cost_based in (True, False):
            engine = populated_engine(cost_based=cost_based)
            txn = engine.begin()
            result = engine.execute_sync(txn, "db", JOIN_SQL, (3,))
            engine.commit(txn)
            answers.append(result.scalar())
        assert answers[0] == answers[1] == 30  # ids {3,13,23,33,43}∩[0,50)·6


class TestHeuristicPreserved:
    SQLS = [
        "SELECT k FROM t WHERE k = 7",
        "SELECT k, v FROM t WHERE v >= 10 AND v < 20 ORDER BY k",
        "SELECT t.k, d.label FROM t, d WHERE t.v = d.id",
        "SELECT v, COUNT(*) FROM t GROUP BY v",
        "UPDATE t SET s = 'x' WHERE k = 1",
        "DELETE FROM t WHERE v = 9",
    ]

    def test_cost_based_off_plans_have_no_estimates(self):
        engine = populated_engine(cost_based=False)
        for sql in self.SQLS:
            text = explain(engine.plan("db", sql))
            assert "rows, cost" not in text, sql

    def test_cost_based_off_matches_heuristic_structure(self):
        """The flag restores the documented heuristic choices: first
        table outermost, index picked syntactically."""
        engine = populated_engine(cost_based=False)
        text = explain(engine.plan(
            "db", "SELECT t.k, d.label FROM t, d WHERE t.v = d.id"))
        lines = text.splitlines()
        scans = [line for line in lines if "Scan" in line]
        assert "SeqScan t" in scans[0]

    def test_empty_tables_defer_to_heuristic(self):
        """No statistics yet → both modes produce structurally
        identical plans (the conservative fallback)."""
        for sql in ["SELECT k FROM t WHERE v = 3",
                    "SELECT t.k FROM t, d WHERE t.v = d.id AND d.grp = 1",
                    "SELECT k FROM t WHERE k > 5 ORDER BY k LIMIT 2"]:
            structures = []
            for cost_based in (True, False):
                engine = Engine(config=EngineConfig(cost_based=cost_based))
                engine.create_database("db")
                txn = engine.begin()
                engine.execute_sync(
                    txn, "db", "CREATE TABLE t (k INTEGER PRIMARY KEY, "
                               "v INTEGER, s VARCHAR(10))")
                engine.execute_sync(txn, "db", "CREATE INDEX t_v ON t (v)")
                engine.execute_sync(
                    txn, "db", "CREATE TABLE d (id INTEGER PRIMARY KEY, "
                               "grp INTEGER, label VARCHAR(10))")
                engine.execute_sync(txn, "db",
                                    "CREATE INDEX d_grp ON d (grp)")
                engine.commit(txn)
                text = explain(engine.plan("db", sql))
                # Strip the estimate suffix; shape must be identical.
                structures.append(
                    [line.split("  (~")[0] for line in text.splitlines()])
            assert structures[0] == structures[1], sql


class TestExplainEstimates:
    def test_estimate_suffix_on_annotated_nodes(self):
        engine = populated_engine()
        text = explain(engine.plan("db",
                                   "SELECT k FROM t WHERE v = 3"))
        assert "rows, cost" in text
        # v = 3 matches exactly 6 of 300 rows; the sketch is exact.
        assert "(~6 rows" in text, text

    def test_verbose_lists_rejected_plans(self):
        engine = populated_engine()
        terse = explain(engine.plan("db", JOIN_SQL))
        verbose = explain(engine.plan("db", JOIN_SQL), verbose=True)
        assert "rejected" not in terse
        assert "rejected plans:" in verbose
        assert "join order" in verbose
        assert "SeqScan" in verbose  # a priced, discarded alternative

    def test_access_path_rejection_noted(self):
        engine = populated_engine()
        verbose = explain(engine.plan("db", "SELECT k FROM t WHERE v = 3"),
                          verbose=True)
        assert "kept IndexEqScan(t_v)" in verbose
        assert "rejected" in verbose and "SeqScan" in verbose


class TestSelectivityDrivenAccessPath:
    def test_selective_literal_prefers_index(self):
        engine = populated_engine()
        text = explain(engine.plan("db", "SELECT k FROM t WHERE v = 3"))
        assert "IndexEqScan t.t_v" in text

    def test_wide_range_prefers_seq_scan(self):
        """A range covering every row costs more through the index
        (probe + per-row fetch) than one sequential pass. The bound must
        be a plain literal — a negative number parses as NEG(literal),
        which prices with the default selectivity instead."""
        engine = populated_engine()
        text = explain(engine.plan(
            "db", "SELECT k FROM t WHERE v >= 0"))
        assert "SeqScan t" in text, text

    def test_narrow_range_prefers_index(self):
        engine = populated_engine()
        text = explain(engine.plan(
            "db", "SELECT k FROM t WHERE v >= 10 AND v < 12"))
        assert "IndexRangeScan t.t_v" in text, text
