"""Disaster recovery across colos (Section 2's asynchronous replication).

A database lives in a primary colo with 2 synchronous replicas and ships
committed writes asynchronously to a standby colo. The script measures
replication lag under load, then destroys the primary colo and shows
clients failing over to the standby — with at most the in-flight suffix
of transactions lost, never a torn transaction.

Run:  python examples/disaster_recovery.py
"""

from repro.cluster.controller import TransactionAborted
from repro.platform import DataPlatform, DatabaseSpec
from repro.sla import Sla

DDL = [
    "CREATE TABLE accounts ("
    "  acct_id INTEGER PRIMARY KEY,"
    "  owner VARCHAR(20),"
    "  balance FLOAT)",
]

DISASTER_AT_S = 6.0


def main():
    platform = DataPlatform(wan_latency_s=0.08)
    platform.add_colo("primary-dc", free_machines=6, location=0.0)
    platform.add_colo("standby-dc", free_machines=6, location=50.0)

    platform.create_database(DatabaseSpec(
        name="bank",
        ddl=list(DDL),
        sla=Sla(min_throughput_tps=5.0, max_rejected_fraction=0.001),
        expected_size_mb=20.0,
        write_mix=0.8,
    ))
    platform.bulk_load("bank", "accounts",
                       [(i, f"user{i}", 100.0) for i in range(20)])
    sim = platform.sim
    committed_transfers = []

    def transfer_client():
        conn = platform.connect("bank")
        i = 0
        while sim.now < DISASTER_AT_S:
            src, dst = i % 20, (i + 7) % 20
            try:
                yield conn.execute(
                    "UPDATE accounts SET balance = balance - 10 "
                    "WHERE acct_id = ?", (src,))
                yield conn.execute(
                    "UPDATE accounts SET balance = balance + 10 "
                    "WHERE acct_id = ?", (dst,))
                yield conn.commit()
                committed_transfers.append((sim.now, src, dst))
            except TransactionAborted:
                pass
            i += 1
            yield sim.timeout(0.2)

    proc = sim.process(transfer_client())
    proc.defused = True
    sim.run(until=DISASTER_AT_S)

    lag = platform.system.replication_lag("bank")
    print(f"t={sim.now:.1f}s: {len(committed_transfers)} transfers "
          f"committed at the primary; standby lag = {lag} txns")

    primary, standby = platform.system.placements["bank"]
    print(f"\nDISASTER: colo {primary!r} is lost. Failing over to "
          f"{standby!r}...")
    platform.system.fail_colo(primary)

    def post_disaster_client():
        conn = platform.connect("bank")
        result = yield conn.execute(
            "SELECT COUNT(*), SUM(balance) FROM accounts")
        yield conn.commit()
        return result.rows[0]

    proc = sim.process(post_disaster_client())
    sim.run()
    count, total = proc.value
    print(f"\nstandby serves reads: {count} accounts, total balance "
          f"{total:.0f}")
    expected_total = 20 * 100.0
    print(f"balance conservation: {'OK' if abs(total - expected_total) < 1e-6 else 'VIOLATED'}"
          f" (every transfer applied atomically or not at all)")
    print(f"transactions lost to the disaster: <= {lag} "
          f"(the unshipped suffix — the paper's weaker cross-colo "
          f"guarantee)")


if __name__ == "__main__":
    main()
