"""Failure recovery: background re-replication with Algorithm 1.

When a machine fails, every database it hosted drops below its
replication factor. The :class:`RecoveryManager` runs a configurable
number of *recovery threads* (the x-axis of the paper's Figure 8); each
thread takes one under-replicated database at a time and copies it to a
new machine with the dump tool.

With ``ClusterConfig.delta_recovery`` on (the default), the copy is
*log-structured*: the dump snapshots the database at a pinned LSN of the
per-database commit log **without rejecting writes**, the snapshot
streams to the target while writes keep flowing, and the retained log
replays on the target from the pinned LSN. Algorithm 1's write-rejection
window shrinks to the final log-drain handoff — independent of database
size. The original full-copy reference path (``delta_recovery=False``)
rejects at either granularity:

* ``TABLE`` — tables are copied one at a time; only writes to the table
  *currently* being copied are rejected (Algorithm 1 line 11);
* ``DATABASE`` — the whole database is copied under one lock footprint;
  every write to the database is rejected for the copy's full duration.

The copy pipeline charges simulated time for the source read, the rack
network transfer, and the destination load, so recovery durations scale
with database size like the paper's ~2 minutes for 200 MB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Iterable, List, Optional

from repro.cluster.controller import ClusterController, CopyState
from repro.cluster.network import CONTROLLER
from repro.errors import NoReplicaError
from repro.sim import Process, Simulator, Store


class CopyGranularity(enum.Enum):
    TABLE = "table"
    DATABASE = "database"


class CopyInFlight(Exception):
    """Another copy pipeline (a rejoin catch-up) owns this database."""


@dataclass
class RecoveryRecord:
    """Outcome of one completed (or abandoned) re-replication."""

    db: str
    source: str
    target: str
    started_at: float
    finished_at: float
    bytes_copied: int
    succeeded: bool
    mode: str = "full"

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class RecoveryManager:
    """Re-replicates under-replicated databases in the background."""

    def __init__(self, controller: ClusterController,
                 granularity: CopyGranularity = CopyGranularity.TABLE,
                 threads: Optional[int] = None,
                 retry_delay_s: float = 5.0):
        self.controller = controller
        self.sim: Simulator = controller.sim
        self.granularity = granularity
        self.threads = threads or controller.config.recovery_threads
        # Wait this long before retrying a failed re-replication (e.g.
        # when no machine can host the new replica yet).
        self.retry_delay_s = retry_delay_s
        self.queue: Store = Store(self.sim)
        self.records: List[RecoveryRecord] = []
        self.in_progress: set = set()
        self._workers: List[Process] = []
        controller.recovery = self

    def start(self) -> None:
        """Launch the recovery worker processes."""
        if self._workers:
            return
        for idx in range(self.threads):
            proc = self.sim.process(self._worker(), name=f"recovery-{idx}")
            proc.defused = True  # workers run forever; failures logged
            self._workers.append(proc)

    # -- scheduling ------------------------------------------------------------

    def schedule_databases(self, dbs: Iterable[str]) -> None:
        """Queue databases that dropped below the replication factor."""
        want = self.controller.config.replication_factor
        for db in dbs:
            if db in self.in_progress:
                continue
            if self.controller.replica_map.replica_count(db) >= want:
                # A rejoin catch-up (or an earlier retry) restored the
                # factor between queue and re-schedule; resolve any
                # outstanding queue entry in the trace so the
                # rereplication-restores-factor audit sees closure.
                self.controller.trace.emit("rereplication_skipped", db=db,
                                           reason="already-replicated")
                continue
            self.in_progress.add(db)
            self.controller.trace.emit("rereplication_queued", db=db)
            self.queue.put(db)

    def _worker(self) -> Generator:
        while True:
            db = yield self.queue.get()
            try:
                yield from self._recover_database(db)
            except Exception:
                # Source or target died mid-copy, no machine can host
                # the replica yet, or another pipeline owns the copy:
                # back off, then retry if still needed. All partial-state
                # cleanup already happened inside _recover_database with
                # the copy's source/target still in hand; by the time
                # control returns here the copy state is gone, so a
                # second state-keyed cleanup pass would find nothing.
                self.in_progress.discard(db)
                yield self.sim.timeout(self.retry_delay_s)
                self.schedule_databases([db])
            else:
                self.in_progress.discard(db)
                # One copy restores one replica. If the database is
                # still short (e.g. the copy's *source* also died
                # mid-flight, and its failure's schedule call was
                # suppressed because this copy was in progress), go
                # again until the factor is met.
                want = self.controller.config.replication_factor
                if (self.controller.replica_map.has(db)
                        and self.controller.replica_map.replica_count(db)
                        < want):
                    self.schedule_databases([db])

    # -- placement of the new replica ----------------------------------------------

    def _choose_target(self, db: str) -> str:
        """Best-fit placement: the live machine not already hosting the
        database that currently hosts the *fewest* replicas.

        Mirrors Algorithm 2's greedy flavor at recovery time: packing
        the new replica onto the emptiest machine keeps the per-machine
        database counts level, so a later failure re-replicates a
        balanced share instead of a pile-up.
        """
        hosting = set(self.controller.replica_map.replicas(db))
        candidates = [
            m for m in self.controller.live_machines()
            if m.name not in hosting and not m.engine.hosts(db)
        ]
        if not candidates and self.controller.free_machine_hook is not None:
            fresh = self.controller.free_machine_hook()
            if fresh is not None:
                candidates = [fresh]
        if not candidates:
            raise NoReplicaError(f"no machine available to host {db!r}")
        candidates.sort(
            key=lambda m: self.controller.replica_map.hosted_count(m.name))
        return candidates[0].name

    # -- the copy pipeline -------------------------------------------------------------

    def _recover_database(self, db: str) -> Generator:
        controller = self.controller
        if db in controller.copy_states:
            # A rejoin catch-up (or another worker's copy) already owns
            # this database; retry after it settles rather than racing
            # two pipelines toward the same replica.
            controller.trace.emit("rereplication_skipped", db=db,
                                  reason="copy-in-flight")
            raise CopyInFlight(db)
        replicas = controller.live_replicas(db)
        if not replicas:
            # All replicas lost; nothing to copy from.
            controller.trace.emit("rereplication_skipped", db=db,
                                  reason="no-source")
            return
        if controller.replica_map.replica_count(db) >= \
                controller.config.replication_factor:
            controller.trace.emit("rereplication_skipped", db=db,
                                  reason="already-replicated")
            return
        source_name = replicas[-1]  # spare the Option-1 primary
        # A cold tenant (deferred engine DDL) must exist engine-side
        # before it can be dumped from the source.
        controller.ensure_materialised(db)
        target_name = self._choose_target(db)
        # Replicate the placement decision through the controller log
        # (consensus mode) so every replica knows where the new copy of
        # this database is headed.
        controller._propose_meta("placement", db=db, target=target_name)
        source = controller.machines[source_name]
        target = controller.machines[target_name]
        delta = controller.config.delta_recovery
        mode = "delta" if delta else self.granularity.value

        started = self.sim.now
        copied_bytes = 0
        applied_lsn = None

        # Register the copy state *before* touching the target: every
        # setup step from here on runs under the abandonment protocol
        # (fail_machine finds the state, the except arm below drops the
        # partial replica), so a failure mid-setup can no longer strand
        # an orphaned half-created database on the target.
        state = CopyState(db, target_name, source=source_name)
        controller.copy_states[db] = state
        controller.trace.emit("rereplication_start", db=db,
                              machine=target_name, source=source_name,
                              mode=mode)
        try:
            # Create the (empty) database on the target from the saved DDL.
            target.engine.create_database(db)
            setup = target.engine.begin()
            for statement in controller.ddl[db]:
                target.engine.execute_sync(setup, db, statement)
            target.engine.commit(setup)

            if delta:
                copied_bytes, applied_lsn = yield from self._copy_delta(
                    db, state, source, target)
            elif self.granularity is CopyGranularity.DATABASE:
                copied_bytes = yield from self._copy_database(
                    db, state, source, target)
            else:
                copied_bytes = yield from self._copy_tables(
                    db, state, source, target)
        except Exception as exc:
            # Clean the partial replica off a surviving target here, with
            # the target still in hand: when the *source* died,
            # fail_machine has already dropped the CopyState, so a
            # state-based cleanup could not find the target.
            partial_dropped = False
            if target.alive and target.engine.hosts(db):
                target.engine.drop_database(db)
                partial_dropped = True
            controller.trace.emit("rereplication_abandoned", db=db,
                                  machine=target_name,
                                  error=type(exc).__name__,
                                  partial_dropped=partial_dropped)
            self.records.append(RecoveryRecord(
                db, source_name, target_name, started, self.sim.now,
                copied_bytes, succeeded=False, mode=mode))
            raise
        finally:
            # Pop only our own state: a failure may have routed through
            # _abandon_copies already, and a rejoin catch-up could have
            # registered a fresh state for the same database since.
            if controller.copy_states.get(db) is state:
                del controller.copy_states[db]

        controller.replica_map.add_replica(db, target_name)
        if applied_lsn is not None:
            controller.note_replica_caught_up(db, target_name, applied_lsn)
        controller.trace.emit(
            "rereplication_done", db=db, machine=target_name,
            replicas=controller.replica_map.replica_count(db),
            bytes=copied_bytes, mode=mode)
        self.records.append(RecoveryRecord(
            db, source_name, target_name, started, self.sim.now,
            copied_bytes, succeeded=True, mode=mode))

    def _copy_delta(self, db: str, state: CopyState, source,
                    target) -> Generator:
        """Log-structured copy: snapshot at a pinned LSN, no rejection.

        The dump still takes its whole-database S-lock footprint, but
        only for the instant the rows are read (in-flight writers drain
        into it; the bulk I/O charge happens after release), and the
        copy state stays passive — Algorithm 1 rejects nothing while
        the snapshot streams and loads. ``on_snapshot`` pins the
        commit log at the dump instant: the S locks guarantee every
        commit with an assigned LSN has been applied on the source, so
        the snapshot contains exactly the commits with LSN <= pin and
        the retained tail after the pin is exactly what the target is
        missing. Replay then catches the target up live, and only the
        final drain handoff rejects writes.
        """
        controller = self.controller
        log = controller.database_log(db)
        fabric = controller.fabric
        holder = {}

        def on_snapshot(_dumps):
            holder["pin"] = log.pin()
            controller.trace.emit("delta_snapshot", db=db,
                                  machine=target.name,
                                  lsn=holder["pin"].lsn)

        try:
            if fabric.enabled:
                fabric.copy_gate(CONTROLLER, source.name)
            dumps = yield source.run_copy(
                source.dump_database_body(db, on_snapshot=on_snapshot),
                label=f"dump:{db}")
            total = 0
            for dump in dumps:
                yield from self._transfer(source.name, target.name,
                                          dump.bytes_estimate)
                if fabric.enabled:
                    fabric.copy_gate(CONTROLLER, target.name)
                yield target.run_copy(
                    target.load_rows_body(db, dump.table, dump.rows),
                    label=f"load:{db}.{dump.table}")
                total += dump.bytes_estimate
            applied, _reject_s, _replayed = (
                yield from controller.delta_replay_and_handoff(
                    db, target, holder["pin"].lsn, state))
            return total, applied
        finally:
            pin = holder.get("pin")
            if pin is not None:
                log.release(pin)

    def _copy_tables(self, db: str, state: CopyState, source,
                     target) -> Generator:
        """Table-granularity copy: reject window is one table at a time."""
        total = 0
        fabric = self.controller.fabric
        table_names = sorted(source.engine.database(db).tables)
        for table_name in table_names:
            state.copying_table = table_name
            if fabric.enabled:
                # The copy tool is driven from the controller: it must
                # reach the source to dump and the target to load.
                fabric.copy_gate(CONTROLLER, source.name)
            dump = yield source.run_copy(
                source.dump_table_body(db, table_name),
                label=f"dump:{db}.{table_name}")
            yield from self._transfer(source.name, target.name,
                                      dump.bytes_estimate)
            if fabric.enabled:
                fabric.copy_gate(CONTROLLER, target.name)
            yield target.run_copy(
                target.load_rows_body(db, table_name, dump.rows),
                label=f"load:{db}.{table_name}")
            state.copying_table = None
            state.copied_tables.add(table_name)
            total += dump.bytes_estimate
        return total

    def _copy_database(self, db: str, state: CopyState, source,
                       target) -> Generator:
        """Database-granularity copy: everything rejects for the duration."""
        state.copying_all = True
        fabric = self.controller.fabric
        if fabric.enabled:
            fabric.copy_gate(CONTROLLER, source.name)
        dumps = yield source.run_copy(source.dump_database_body(db),
                                      label=f"dump:{db}")
        total = 0
        for dump in dumps:
            yield from self._transfer(source.name, target.name,
                                      dump.bytes_estimate)
            if fabric.enabled:
                fabric.copy_gate(CONTROLLER, target.name)
            yield target.run_copy(
                target.load_rows_body(db, dump.table, dump.rows),
                label=f"load:{db}.{dump.table}")
            total += dump.bytes_estimate
        # Tables become visible to writes only when the whole copy is done.
        for dump in dumps:
            state.copied_tables.add(dump.table)
        state.copying_all = False
        return total

    def _transfer(self, src: str, dst: str, nbytes: int) -> Generator:
        """Rack-network transfer time between source and target.

        With the fabric enabled the stream is partition-checked at both
        ends of the transfer window, so a cut mid-copy abandons the
        re-replication (and its Algorithm 1 reject window) promptly.
        """
        machine_cfg = self.controller.config.machine
        scaled = nbytes * machine_cfg.copy_bytes_factor
        seconds = (scaled / (1024.0 * 1024.0)) / machine_cfg.network_mbps
        fabric = self.controller.fabric
        if fabric.enabled:
            yield from fabric.transfer(src, dst, seconds)
        elif seconds > 0:
            yield self.sim.timeout(seconds + machine_cfg.network_latency_s)
