"""Cross-colo disaster recovery: fenced failover, WAN shipping, RPO/RTO.

Covers the detection-driven failover path end to end (heartbeats →
suspect → declare → fence → promote → re-protect → failback), the
sequence-numbered resumable replication log over the WAN fabric, and
the DR invariant rules (no-dual-primary-colo, prefix-of-commit-order,
lag-eventually-drains).
"""

import pytest

from repro.analysis.invariants import InvariantChecker, check_trace
from repro.analysis.trace import TraceEvent
from repro.cluster.network import NetworkConfig
from repro.errors import ColoFencedError, NoReplicaError
from repro.harness.runner import run_dr_soak
from repro.platform import DataPlatform, DatabaseSpec
from repro.sla import Sla

DDL = ["CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)"]


def make_platform(colos=2, machines=8, wan=None, **system_kwargs):
    platform = DataPlatform(wan=wan, **system_kwargs)
    for i in range(colos):
        platform.add_colo(f"colo{i}", free_machines=machines,
                          location=float(i * 10))
    return platform


def spec(name, dr=True):
    return DatabaseSpec(name=name, ddl=list(DDL), sla=Sla(1.0, 0.001),
                        expected_size_mb=5.0, replicas=2,
                        disaster_recovery=dr)


def wan_config(seed=3, drop=0.0, latency=0.005, jitter=0.0):
    return NetworkConfig(enabled=True, latency_s=latency, jitter_s=jitter,
                         drop_probability=drop, seed=seed)


def commit_n(platform, db, n, key=1):
    """Run ``n`` sequential single-row update commits through the facade."""
    def client():
        for _ in range(n):
            conn = platform.connect(db)
            yield conn.execute(f"UPDATE t SET v = v + 1 WHERE k = {key}")
            yield conn.commit()
            conn.close()
    proc = platform.sim.process(client())
    proc.defused = True
    return proc


def standby_value(platform, db, key=1):
    """Read ``t.v`` directly off the standby colo's first replica."""
    _, standby = platform.system.placements[db]
    cluster = platform.system.colos[standby].cluster_of(db)
    machine = cluster.machines[cluster.replica_map.replicas(db)[0]]
    txn = machine.engine.begin()
    value = machine.engine.execute_sync(
        txn, db, f"SELECT v FROM t WHERE k = {key}").scalar()
    machine.engine.commit(txn)
    return value


class TestFencing:
    def test_fenced_colo_rejects_connections(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        primary, _ = platform.system.placements["app"]
        platform.system.colos[primary].fence()
        with pytest.raises(ColoFencedError):
            platform.system.colos[primary].connect("app")

    def test_fenced_primary_stops_shipping(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        primary, _ = platform.system.placements["app"]
        link = platform.system.links["app"]
        platform.system.colos[primary].fence()
        # Commits cannot happen on a fenced colo (primaries crashed), but
        # even a straggler hook invocation must not enqueue.
        platform.system._on_commit(link, "app", [("UPDATE ...", ())])
        assert link.shipped == 0

    def test_declare_fences_and_promotes_under_new_epoch(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        commit_n(platform, "app", 2)
        platform.sim.run()
        primary, standby = platform.system.placements["app"]
        affected = platform.system.declare_colo_dead(primary, reason="test")
        assert affected == ["app"]
        assert platform.system.epoch == 1
        assert platform.system.colos[primary].fenced
        new_primary, _ = platform.system.placements["app"]
        assert new_primary == standby
        # Declared again: idempotent, no second epoch bump.
        assert platform.system.declare_colo_dead(primary) == []
        assert platform.system.epoch == 1

    def test_route_skips_fenced_and_dead_colos(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        primary, standby = platform.system.placements["app"]
        platform.system.colos[primary].crash()
        assert platform.system.route("app").name == standby
        platform.system.colos[standby].fence()
        with pytest.raises(NoReplicaError):
            platform.system.route("app")


class TestWanShipping:
    def test_shipping_over_fabric_reaches_standby(self):
        platform = make_platform(wan=wan_config())
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        commit_n(platform, "app", 4)
        platform.sim.run()
        assert platform.system.replication_lag("app") == 0
        assert standby_value(platform, "app") == 4
        link = platform.system.links["app"]
        assert link.applied_seq == 4 and link.acked_seq == 4
        assert not link.log  # acked entries are released

    def test_cut_link_resumes_catchup_after_heal(self):
        platform = make_platform(wan=wan_config())
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        primary, standby = platform.system.placements["app"]
        platform.system.wan.cut(primary, standby)
        commit_n(platform, "app", 5)
        platform.sim.run(until=20.0)
        assert platform.system.replication_lag("app") == 5
        platform.system.wan.heal(primary, standby)
        platform.sim.run(until=60.0)
        assert platform.system.replication_lag("app") == 0
        # At-most-once: each commit applied exactly once despite the
        # retransmissions the cut forced.
        assert standby_value(platform, "app") == 5

    def test_lossy_wan_applies_each_entry_once(self):
        platform = make_platform(wan=wan_config(drop=0.3, jitter=0.002))
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        commit_n(platform, "app", 8)
        platform.sim.run(until=120.0)
        assert platform.system.replication_lag("app") == 0
        assert standby_value(platform, "app") == 8
        violations = check_trace(platform.system.trace.events(),
                                 expect_lag_drained=True)
        assert violations == []

    def test_lag_drains_under_load_legacy_path(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(5)])
        for key in range(3):
            commit_n(platform, "app", 6, key=key)
        platform.sim.run()
        assert platform.system.replication_lag("app") == 0
        link = platform.system.links["app"]
        assert link.shipped == 18 and link.applied == 18

    def test_unappliable_entries_counted_dropped_not_lagging(self):
        # Satellite: a dropped entry must count explicitly so lag
        # converges instead of overreporting forever.
        platform = make_platform()
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        _, standby = platform.system.placements["app"]
        # The standby colo silently dies: applies fail, entries drop.
        platform.system.colos[standby].crash()
        commit_n(platform, "app", 3)
        platform.sim.run()
        link = platform.system.links["app"]
        assert link.dropped == 3
        assert platform.system.replication_lag("app") == 0
        assert platform.system.metrics.dr.dropped == 3


class TestDetectionDrivenFailover:
    def run_failover(self, drop=0.0):
        platform = make_platform(
            colos=3, wan=wan_config(drop=drop, jitter=0.001),
            heartbeat_interval_s=0.5, suspect_after_misses=2,
            declare_after_misses=5)
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        commit_n(platform, "app", 3)
        platform.sim.run(until=5.0)
        platform.system.start_failure_detector()
        primary, standby = platform.system.placements["app"]
        platform.system.crash_colo(primary)
        platform.sim.run(until=60.0)
        return platform, primary, standby

    def test_detector_declares_fences_promotes(self):
        platform, primary, standby = self.run_failover()
        system = platform.system
        assert primary in system.declared_dead
        assert system.colos[primary].fenced
        new_primary, new_standby = system.placements["app"]
        assert new_primary == standby
        # Re-protection landed a fresh standby on the surviving colo.
        assert new_standby is not None and new_standby != primary
        assert system.colos[new_standby].hosts("app")
        kinds = [e.kind for e in system.trace.events()]
        for kind in ("colo_suspected", "colo_declared", "colo_fenced",
                     "dr_promote", "dr_reprotect_start",
                     "dr_reprotect_done"):
            assert kind in kinds

    def test_rpo_rto_finite_and_recorded(self):
        platform, _, _ = self.run_failover()
        # Clients reconnect through the system controller: the promoted
        # primary serves, stopping the RTO clock. (The detector keeps
        # heartbeating, so the run must be time-bounded.)
        proc = commit_n(platform, "app", 1)
        platform.sim.run(until=70.0)
        assert proc.ok
        summary = platform.system.dr_summary()
        assert len(summary["promotions"]) == 1
        promo = summary["promotions"][0]
        assert promo["rpo_commits"] >= 0
        assert promo["rto_s"] is not None and promo["rto_s"] > 0
        assert summary["rpo_commits"]["app"] == promo["rpo_commits"]

    def test_failover_trace_passes_dr_invariants(self):
        platform, _, _ = self.run_failover(drop=0.05)
        checker = InvariantChecker(expect_lag_drained=True,
                                   dropped=platform.system.trace.dropped)
        assert checker.check(platform.system.trace.events()) == []

    def test_new_standby_catches_up_after_reprotect(self):
        platform, _, _ = self.run_failover()
        proc = commit_n(platform, "app", 4)
        platform.sim.run(until=120.0)
        assert proc.ok
        assert platform.system.replication_lag("app") == 0
        # Snapshot + catch-up: the fresh standby holds the full history
        # the new primary has (3 pre-failover commits minus RPO, plus 4).
        rpo = platform.system.dr_summary()["promotions"][0]["rpo_commits"]
        assert standby_value(platform, "app") == 3 - rpo + 4


class TestReprotectAndFailback:
    def test_failback_onto_repaired_colo(self):
        platform = make_platform(colos=2, wan=wan_config())
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        commit_n(platform, "app", 2)
        platform.sim.run()
        primary, standby = platform.system.placements["app"]
        platform.system.fail_colo(primary)
        platform.sim.run(until=30.0)
        # Only one surviving colo: re-protection parks with no target.
        assert platform.system.placements["app"] == (standby, None)
        platform.system.repair_colo(primary)
        platform.sim.run(until=120.0)
        assert platform.system.placements["app"] == (standby, primary)
        assert platform.system.dr_summary()["failbacks"] == 1
        kinds = [e.kind for e in platform.system.trace.events()]
        assert "dr_failback" in kinds
        # The repaired colo rejoined blank and re-learned the data via
        # snapshot copy; shipping works again.
        proc = commit_n(platform, "app", 2)
        platform.sim.run(until=200.0)
        assert proc.ok
        assert platform.system.replication_lag("app") == 0
        assert standby_value(platform, "app") == 4

    def test_reprotect_copy_survives_wan_outage(self):
        platform = make_platform(colos=3, wan=wan_config(),
                                 reprotect_retry_s=2.0)
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(k, 0) for k in range(3)])
        primary, standby = platform.system.placements["app"]
        survivors = [c for c in platform.system.colos
                     if c not in (primary, standby)]
        target = survivors[0]
        platform.system.fail_colo(primary)
        # Cut the snapshot path: the first re-protect attempt fails and
        # must retry after the heal instead of giving up.
        platform.system.wan.cut(standby, target)
        platform.sim.run(until=10.0)
        assert platform.system.placements["app"] == (standby, None)
        platform.system.wan.heal(standby, target)
        platform.sim.run(until=120.0)
        assert platform.system.placements["app"] == (standby, target)

    def test_deregister_tears_link_and_drops_everywhere(self):
        platform = make_platform()
        platform.create_database(spec("app"))
        platform.bulk_load("app", "t", [(1, 0)])
        link = platform.system.links["app"]
        applier = link.applier
        colos = [platform.system.colos[name]
                 for name in platform.system.placements["app"] if name]
        platform.drop_database("app")
        platform.sim.run()
        assert "app" not in platform.system.links
        assert link.torn and not applier.is_alive
        assert "app" not in platform.system.placements
        for colo in colos:
            assert not colo.hosts("app")
        with pytest.raises(NoReplicaError):
            platform.connect("app")

    def test_fail_colo_tears_links_and_cancels_appliers(self):
        # Satellite: links whose primary or standby colo died must be
        # torn down, not leaked with appliers spinning forever.
        platform = make_platform(colos=3)
        platform.create_database(spec("a"))
        platform.create_database(spec("b"))
        system = platform.system
        victims = set()
        for db in ("a", "b"):
            primary, standby = system.placements[db]
            victims.add(primary)
        appliers = {db: system.links[db].applier for db in ("a", "b")}
        for name in victims:
            system.fail_colo(name)
        platform.sim.run()
        for db in ("a", "b"):
            primary, standby = system.placements.get(db, (None, None))
            link = system.links.get(db)
            if link is not None:       # re-established by re-protection
                assert not link.torn
                assert (link.primary, link.standby) == (primary, standby)
            old = appliers[db]
            if system.links.get(db) is None or \
                    system.links[db].applier is not old:
                assert not old.is_alive


class TestBinAccounting:
    def test_drop_database_releases_bins(self):
        # Satellite: placement load must be released on database drop.
        platform = make_platform(colos=1)
        platform.create_database(spec("app", dr=False))
        colo = platform.system.colos["colo0"]
        used_before = {name: b.used for name, b in colo._bins.items()
                       if b.hosted}
        assert used_before
        platform.drop_database("app")
        for name, machine_bin in colo._bins.items():
            assert not machine_bin.hosted
            assert machine_bin.used == type(machine_bin.used)()

    def test_machine_declaration_releases_bin(self):
        # Satellite: a declared machine's bin stops counting its load.
        platform = make_platform(colos=1)
        platform.create_database(spec("app", dr=False))
        colo = platform.system.colos["colo0"]
        cluster = colo.cluster_of("app")
        hosting = [name for name, b in colo._bins.items() if b.hosted]
        victim = hosting[0]
        cluster.fail_machine(victim)
        platform.sim.run(until=5.0)
        assert not colo._bins[victim].hosted
        assert victim not in colo._db_machines.get("app", [victim])


class TestDrInvariantRules:
    def _ev(self, seq, kind, db=None, machine=None, **extra):
        return TraceEvent(seq=seq, t=float(seq), kind=kind, db=db,
                          machine=machine, extra=extra)

    def test_promotion_without_fence_is_dual_primary(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "dr_promote", db="app", old="c0", new="c1",
                     epoch=1, rpo_commits=0),
        ]
        violations = check_trace(events)
        assert any(v.rule == "no-dual-primary-colo" for v in violations)

    def test_fenced_promotion_is_clean(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "colo_fenced", machine="c0", epoch=1),
            self._ev(3, "dr_promote", db="app", old="c0", new="c1",
                     epoch=1, rpo_commits=0),
        ]
        assert check_trace(events) == []

    def test_epoch_must_advance(self):
        events = [
            self._ev(1, "colo_fenced", machine="c0", epoch=1),
            self._ev(2, "colo_repaired", machine="c0"),
            self._ev(3, "colo_fenced", machine="c1", epoch=1),
        ]
        violations = check_trace(events)
        assert any("epoch" in v.message for v in violations)

    def test_apply_gap_breaks_prefix_order(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "dr_ship", db="app", rseq=1),
            self._ev(3, "dr_ship", db="app", rseq=2),
            self._ev(4, "dr_apply", db="app", rseq=2),
        ]
        violations = check_trace(events)
        assert any(v.rule == "standby-applies-a-prefix-of-commit-order"
                   for v in violations)

    def test_duplicate_apply_breaks_prefix_order(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "dr_ship", db="app", rseq=1),
            self._ev(3, "dr_apply", db="app", rseq=1),
            self._ev(4, "dr_apply", db="app", rseq=1),
        ]
        violations = check_trace(events)
        assert any(v.rule == "standby-applies-a-prefix-of-commit-order"
                   for v in violations)

    def test_undrained_lag_flagged_only_when_expected(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "dr_ship", db="app", rseq=1),
        ]
        assert check_trace(events) == []
        violations = check_trace(events, expect_lag_drained=True)
        assert any(v.rule == "lag-eventually-drains" for v in violations)

    def test_torn_link_lag_is_rpo_not_violation(self):
        events = [
            self._ev(1, "dr_protect", db="app", primary="c0", standby="c1",
                     base_seq=0),
            self._ev(2, "dr_ship", db="app", rseq=1),
            self._ev(3, "dr_link_torn", db="app", primary="c0",
                     standby="c1", lag=1),
        ]
        assert check_trace(events, expect_lag_drained=True) == []


class TestSeededDrSoak:
    def test_soak_zero_violations_finite_rpo_rto(self):
        result = run_dr_soak(duration_s=24.0, drain_s=20.0, seed=3)
        system = result.system
        assert result.declared == [result.colo_killed]
        assert result.promotions >= 1
        for promo in result.dr["promotions"]:
            assert promo["rpo_commits"] >= 0
            assert promo["rto_s"] is not None
        assert all(lag == 0 for lag in result.replication_lag.values())
        checker = InvariantChecker(expect_lag_drained=True,
                                   dropped=system.trace.dropped)
        assert checker.check(system.trace.events()) == []
