"""Tenant-scale fast path: flat latency and lazy state at 10k-100k tenants.

The paper's premise is "a large number of small applications": most
tenants are cold most of the time, so the platform must stage tenants
for the price of a routing-table entry and pay per-tenant costs only on
first touch. This benchmark stages 1k/10k/100k databases on one
controller and measures, at each scale:

* **create latency** — ``create_database`` placement + bookkeeping,
  which must stay O(machines), not O(tenants);
* **route latency** — ``connect`` (replica lookup + session set-up) on
  uniformly random tenants, mostly cold;
* **statement-entry latency** — full committed transactions against a
  small warm set driven through the simulator (admission, touch-check,
  classification, 2PC, engine execution per transaction);
* **resident memory** — tracemalloc bytes after staging, for the lazy
  fast path and (at the middle stage) the eager reference
  configuration as the contrast;
* **placement latency** — heat-indexed first-fit/best-fit over the same
  bin counts, with the linear reference timed at the smallest stage.

Two modes:

* ``pytest benchmarks/bench_many_tenants.py --benchmark-only`` — a
  pytest-benchmark wrapper timing one small soak (deterministic
  simulation; tracks harness wall-clock);
* ``python benchmarks/bench_many_tenants.py`` — plain mode: runs the
  staged measurements, asserts the scaling shape (near-flat route and
  statement-entry p99 from the smallest to the largest stage, indexed
  placement under a millisecond per database at the largest stage,
  sub-linear memory growth, lazy staging far under the eager
  reference), and writes ``BENCH_many_tenants.json`` at the repository
  root. ``--smoke`` shrinks the stages for CI.
"""

import gc
import sys
import time
import tracemalloc

import pytest

sys.path.insert(0, "src")

from repro.cluster import ClusterConfig, ClusterController
from repro.harness.runner import run_many_tenants
from repro.sim import Simulator
from repro.sla import (DatabaseLoad, MachineBin, PlacementIndex,
                       ResourceVector, first_fit)
from repro.workloads.microbench import KV_DDL, KeyValueWorkload, KvStats

FULL_STAGES = [1000, 10000, 100000]
SMOKE_STAGES = [500, 2000, 8000]

MACHINES = 20
REPLICAS = 2
WARM_SET = 8

#: Timer-noise floors added to both sides of every flatness ratio: the
#: operations under test sit in the microsecond range, where a single
#: scheduler hiccup would otherwise dominate a p99 ratio.
ROUTE_FLOOR_S = 2e-6
STMT_FLOOR_S = 50e-6


def percentile(values, p):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def _batched(op, count, batch):
    """Mean per-op seconds for ``count // batch`` timed batches.

    Individual ops are sub-microsecond; timing batches and dividing
    keeps the timer's own cost out of the distribution.
    """
    means = []
    for start in range(0, count, batch):
        t0 = time.perf_counter()
        for i in range(start, start + batch):
            op(i)
        means.append((time.perf_counter() - t0) / batch)
    return means


def _stage_controller(n_databases, lazy=True):
    sim = Simulator()
    config = ClusterConfig(
        replication_factor=REPLICAS,
        trace_capacity=4096,
        lazy_tenant_state=lazy,
        lazy_engine_ddl=lazy,
        max_resident_tenant_logs=64 if lazy else 0,
        metrics_resident_tenants=64 if lazy else 0,
    )
    controller = ClusterController(sim, config)
    controller.add_machines(MACHINES)
    return sim, controller


def run_latency_stage(n_databases, seed=3):
    """Create/route/statement-entry wall-clock at one tenant count."""
    sim, controller = _stage_controller(n_databases)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Creates: every tenant, timed in batches.
        create_batch = max(50, n_databases // 200)

        def create(i):
            controller.create_database(f"t{i:06d}", KV_DDL,
                                       replicas=REPLICAS)

        create_means = _batched(create, n_databases, create_batch)

        # Routes: uniformly random (mostly cold) tenants.
        route_samples = 5000
        step = max(1, n_databases // route_samples)

        def route(i):
            db = f"t{(i * step) % n_databases:06d}"
            controller.connect(db).close()

        route_means = _batched(route, route_samples, 100)
    finally:
        if gc_was_enabled:
            gc.enable()

    # Statement entry: committed transactions on a small warm set,
    # driven through the simulator in timed rounds. Collector pauses
    # scale with total heap size (the 100k-tenant routing table), which
    # would swamp a per-transaction p99 — keep gc off while timing.
    warm = [f"t{i:06d}" for i in range(0, n_databases,
                                       n_databases // WARM_SET)][:WARM_SET]
    for db in warm:
        controller.bulk_load(db, "kv", [(k, 0) for k in range(8)])
    stmt_means = []
    committed_total = 0
    gc.collect()
    gc.disable()
    try:
        for round_no in range(30):
            stats = [KvStats() for _ in warm]
            for idx, db in enumerate(warm):
                workload = KeyValueWorkload(controller, db_name=db, keys=8,
                                            seed=seed + round_no * 100 + idx)
                proc = sim.process(workload.client(
                    round_no, transactions=5, think_time_s=0.0,
                    stats=stats[idx]))
                proc.defused = True
            t0 = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - t0
            committed = sum(s.committed for s in stats)
            committed_total += committed
            if committed:
                stmt_means.append(elapsed / committed)
    finally:
        if gc_was_enabled:
            gc.enable()

    return {
        "tenants": n_databases,
        "create_p50_us": round(percentile(create_means, 50) * 1e6, 3),
        "create_p99_us": round(percentile(create_means, 99) * 1e6, 3),
        "route_p50_us": round(percentile(route_means, 50) * 1e6, 3),
        "route_p99_us": round(percentile(route_means, 99) * 1e6, 3),
        "stmt_p50_us": round(percentile(stmt_means, 50) * 1e6, 3),
        "stmt_p99_us": round(percentile(stmt_means, 99) * 1e6, 3),
        "stmt_committed": committed_total,
        "resident_db_logs": len(controller.db_logs),
        "resident_histograms": len(controller.metrics.db_latencies),
    }


def run_memory_stage(n_databases, lazy=True):
    """Traced bytes attributable to staging ``n_databases`` tenants."""
    tracemalloc.start()
    try:
        base, _ = tracemalloc.get_traced_memory()
        sim, controller = _stage_controller(n_databases, lazy=lazy)
        for i in range(n_databases):
            controller.create_database(f"t{i:06d}", KV_DDL,
                                       replicas=REPLICAS)
        current, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    staged = max(0, current - base)
    return {
        "tenants": n_databases,
        "lazy": bool(lazy),
        "staged_bytes": staged,
        "bytes_per_tenant": round(staged / n_databases, 1),
    }


def run_placement_stage(n_bins, queries=100, linear_reference=False,
                        seed=3):
    """Indexed placement latency at one bin count."""
    capacity = ResourceVector(cpu=8.0, memory_mb=16000.0,
                              disk_io_mbps=400.0, disk_mb=400000.0)
    requirement = ResourceVector(cpu=0.02, memory_mb=40.0,
                                 disk_io_mbps=1.0, disk_mb=500.0)

    def build_bins():
        bins = [MachineBin(f"m{i:06d}", capacity) for i in range(n_bins)]
        # Pre-load every bin unevenly so the index has real structure.
        for i, machine_bin in enumerate(bins):
            machine_bin.place(DatabaseLoad(
                f"seed{i}", ResourceVector(
                    cpu=0.01 * (i % 7), memory_mb=20.0 * (i % 11),
                    disk_io_mbps=0.5 * (i % 5), disk_mb=250.0 * (i % 13)),
                replicas=1))
        return bins

    bins = build_bins()
    t0 = time.perf_counter()
    index = PlacementIndex(bins)
    build_s = time.perf_counter() - t0

    place_means = []
    for q in range(queries):
        load = DatabaseLoad(f"q{q}", requirement, replicas=3)
        t0 = time.perf_counter()
        first_fit([load], index=index)
        place_means.append(time.perf_counter() - t0)

    row = {
        "bins": n_bins,
        "index_build_ms": round(build_s * 1e3, 3),
        "indexed_place_p50_us":
            round(percentile(place_means, 50) * 1e6, 3),
        "indexed_place_p99_us":
            round(percentile(place_means, 99) * 1e6, 3),
        "indexed_place_mean_us":
            round(sum(place_means) / len(place_means) * 1e6, 3),
    }
    if linear_reference:
        bins = build_bins()
        linear_means = []
        for q in range(min(queries, 20)):
            load = DatabaseLoad(f"q{q}", requirement, replicas=3)
            t0 = time.perf_counter()
            first_fit([load], bins=bins, use_index=False)
            linear_means.append(time.perf_counter() - t0)
        row["linear_place_mean_us"] = round(
            sum(linear_means) / len(linear_means) * 1e6, 3)
    return row


def run_soak_point(n_databases, duration_s, seed=11):
    """One end-to-end soak: churn, flash crowd, resident-state gauges."""
    result = run_many_tenants(n_databases=n_databases,
                              duration_s=duration_s,
                              flash_at_s=duration_s / 2.0, seed=seed)
    return {
        "tenants": result.n_databases,
        "hot_tenants": result.hot_tenants,
        "committed": result.committed,
        "throughput_tps": round(result.throughput_tps, 2),
        "churn_creates": result.churn_creates,
        "churn_drops": result.churn_drops,
        "flash_first_commit_s": result.flash_first_commit_s,
        "flash_committed": result.flash_committed,
        "resident_db_logs": result.resident_db_logs,
        "resident_replica_lsn_maps": result.resident_replica_lsn_maps,
        "resident_admission_buckets": result.resident_admission_buckets,
        "resident_latency_histograms": result.resident_latency_histograms,
        "cold_engine_tenants": result.cold_engine_tenants,
        "paged_out_logs": result.paged_out_logs,
    }


def check_shape(stages, memory, placement, soak):
    """The acceptance assertions: flat latency, lazy memory, fast index."""
    small, large = stages[0], stages[-1]
    scale = large["tenants"] / small["tenants"]

    # Route and statement-entry p99 must be near-flat (< 2x) while the
    # tenant count grows ~100x; floors absorb scheduler noise on
    # microsecond-scale measurements.
    route_ratio = ((large["route_p99_us"] + ROUTE_FLOOR_S * 1e6) /
                   (small["route_p99_us"] + ROUTE_FLOOR_S * 1e6))
    assert route_ratio < 2.0, \
        f"route p99 grew {route_ratio:.2f}x over a {scale:.0f}x tenant " \
        f"increase: {small['route_p99_us']} -> {large['route_p99_us']} us"
    stmt_ratio = ((large["stmt_p99_us"] + STMT_FLOOR_S * 1e6) /
                  (small["stmt_p99_us"] + STMT_FLOOR_S * 1e6))
    assert stmt_ratio < 2.0, \
        f"statement-entry p99 grew {stmt_ratio:.2f}x over a " \
        f"{scale:.0f}x tenant increase: " \
        f"{small['stmt_p99_us']} -> {large['stmt_p99_us']} us"
    # Creates stay O(machines): p50 near-flat across the same growth.
    create_ratio = ((large["create_p50_us"] + ROUTE_FLOOR_S * 1e6) /
                    (small["create_p50_us"] + ROUTE_FLOOR_S * 1e6))
    assert create_ratio < 3.0, \
        f"create p50 grew {create_ratio:.2f}x over a {scale:.0f}x " \
        f"tenant increase"

    # Resident per-tenant state tracks the warm set, not the population.
    assert large["resident_db_logs"] <= 2 * WARM_SET + 64, \
        f"{large['resident_db_logs']} delta logs resident after " \
        f"touching {WARM_SET} tenants"

    # Memory: marginal bytes/tenant at the largest lazy stage must not
    # exceed the smallest stage's average (sub-linear growth: no
    # superlinear per-tenant state), and lazy staging must be far
    # cheaper than the eager reference at the same tenant count.
    lazy = [m for m in memory if m["lazy"]]
    marginal = ((lazy[-1]["staged_bytes"] - lazy[0]["staged_bytes"]) /
                (lazy[-1]["tenants"] - lazy[0]["tenants"]))
    assert marginal <= lazy[0]["bytes_per_tenant"] * 1.25, \
        f"marginal bytes/tenant {marginal:.0f} exceeds the smallest " \
        f"stage's average {lazy[0]['bytes_per_tenant']}"
    eager = [m for m in memory if not m["lazy"]]
    if eager:
        paired = next(m for m in lazy
                      if m["tenants"] == eager[0]["tenants"])
        assert paired["staged_bytes"] < eager[0]["staged_bytes"] * 0.5, \
            f"lazy staging ({paired['staged_bytes']} B) not under half " \
            f"the eager reference ({eager[0]['staged_bytes']} B)"

    # Placement: indexed first-fit stays under a millisecond per
    # database (3 replicas) at the largest bin count.
    largest = placement[-1]
    assert largest["indexed_place_mean_us"] < 1000.0, \
        f"indexed placement {largest['indexed_place_mean_us']} us " \
        f"per database at {largest['bins']} bins"

    # The soak exercised churn and the flash crowd, and the cold
    # tenant's first commit landed promptly.
    assert soak["churn_creates"] > 0 and soak["churn_drops"] > 0
    assert soak["flash_first_commit_s"] is not None \
        and soak["flash_first_commit_s"] < 1.0, \
        f"flash-crowd first commit took {soak['flash_first_commit_s']}s"
    assert soak["resident_db_logs"] <= soak["hot_tenants"] + 64 + 1, \
        "soak resident logs exceed the hot set"


def format_rows(stages, memory, placement):
    lines = [f"{'tenants':>8}  {'create p50':>10}  {'route p50':>9}  "
             f"{'route p99':>9}  {'stmt p50':>9}  {'stmt p99':>9}  "
             f"{'logs':>5}"]
    for row in stages:
        lines.append(
            f"{row['tenants']:>8}  {row['create_p50_us']:>9.1f}u  "
            f"{row['route_p50_us']:>8.2f}u  {row['route_p99_us']:>8.2f}u  "
            f"{row['stmt_p50_us']:>8.1f}u  {row['stmt_p99_us']:>8.1f}u  "
            f"{row['resident_db_logs']:>5}")
    lines.append(f"{'tenants':>8}  {'mode':>6}  {'staged MB':>9}  "
                 f"{'B/tenant':>8}")
    for row in memory:
        lines.append(f"{row['tenants']:>8}  "
                     f"{'lazy' if row['lazy'] else 'eager':>6}  "
                     f"{row['staged_bytes'] / 1e6:>9.2f}  "
                     f"{row['bytes_per_tenant']:>8.1f}")
    lines.append(f"{'bins':>8}  {'build ms':>8}  {'place p50':>9}  "
                 f"{'place p99':>9}  {'linear mean':>11}")
    for row in placement:
        linear = row.get("linear_place_mean_us")
        lines.append(
            f"{row['bins']:>8}  {row['index_build_ms']:>8.1f}  "
            f"{row['indexed_place_p50_us']:>8.1f}u  "
            f"{row['indexed_place_p99_us']:>8.1f}u  "
            f"{'-' if linear is None else f'{linear:.1f}u':>11}")
    return "\n".join(lines)


# -- pytest-benchmark wrappers ------------------------------------------------


@pytest.mark.benchmark(group="many_tenants")
def test_bench_many_tenants_soak(benchmark):
    result = benchmark(run_many_tenants, n_databases=1000, duration_s=8.0,
                       flash_at_s=4.0)
    assert result.committed > 0
    assert result.resident_db_logs <= result.hot_tenants + 65


@pytest.mark.benchmark(group="many_tenants")
def test_bench_placement_index(benchmark):
    row = benchmark(run_placement_stage, 5000, queries=50)
    assert row["indexed_place_mean_us"] < 1000.0


# -- plain mode ---------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="Tenant-scale fast-path benchmark (plain mode)")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller stages (CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    stage_counts = SMOKE_STAGES if args.smoke else FULL_STAGES
    stages = []
    for n in stage_counts:
        stages.append(run_latency_stage(n))
        print(f"latency stage {n}: route p99 "
              f"{stages[-1]['route_p99_us']}us, stmt p99 "
              f"{stages[-1]['stmt_p99_us']}us")
    memory = []
    for n in stage_counts:
        memory.append(run_memory_stage(n, lazy=True))
    memory.append(run_memory_stage(stage_counts[1], lazy=False))
    placement = [run_placement_stage(n, linear_reference=(i == 0))
                 for i, n in enumerate(stage_counts)]
    soak = run_soak_point(stage_counts[1],
                          duration_s=8.0 if args.smoke else 20.0)
    check_shape(stages, memory, placement, soak)

    payload = {
        "benchmark": "many_tenants",
        "smoke": bool(args.smoke),
        "machines": MACHINES,
        "replicas": REPLICAS,
        "stages": stages,
        "memory": memory,
        "placement": placement,
        "soak": soak,
    }
    out = args.out or os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..",
        "BENCH_many_tenants.json"))
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(format_rows(stages, memory, placement))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
