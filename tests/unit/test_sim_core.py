"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Event, Interrupt, Simulator,
                       SimulationError, Timeout)


class TestEvent:
    def test_event_starts_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callback_after_processed_still_runs(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["x"]


class TestTimeoutAndClock:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(5)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_timeouts_fire_in_order(self, sim):
        order = []

        def waiter(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(waiter(3, "c"))
        sim.process(waiter(1, "a"))
        sim.process(waiter(2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []

        def waiter(tag):
            yield sim.timeout(1)
            order.append(tag)

        for tag in "abc":
            sim.process(waiter(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(100)

        sim.process(proc())
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_past_raises(self, sim):
        sim.now = 5
        with pytest.raises(SimulationError):
            sim.run(until=1)


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sim.run_process(proc())

    def test_yield_non_event_fails(self, sim):
        def proc():
            yield 42

        with pytest.raises(SimulationError):
            sim.run_process(proc())

    def test_wait_on_another_process(self, sim):
        def inner():
            yield sim.timeout(3)
            return "inner-result"

        def outer():
            value = yield sim.process(inner())
            return value, sim.now

        assert sim.run_process(outer()) == ("inner-result", 3.0)

    def test_failed_event_throws_into_waiter(self, sim):
        event = sim.event()

        def failer():
            yield sim.timeout(1)
            event.fail(RuntimeError("bad"))

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught:{exc}"

        sim.process(failer())
        assert sim.run_process(waiter()) == "caught:bad"

    def test_interrupt_cancels_wait(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
                return "slept"
            except Interrupt as exc:
                return f"interrupted:{exc.cause}"

        proc = sim.process(sleeper())

        def killer():
            yield sim.timeout(2)
            proc.interrupt("reason")

        sim.process(killer())
        sim.run()
        assert proc.value == "interrupted:reason"

    def test_interrupt_dead_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run()
        proc.interrupt("late")  # must not raise
        sim.run()

    def test_unhandled_interrupt_fails_quietly(self, sim):
        def sleeper():
            yield sim.timeout(100)

        proc = sim.process(sleeper())

        def killer():
            yield sim.timeout(1)
            proc.interrupt("kill")

        sim.process(killer())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, Interrupt)

    def test_unobserved_process_failure_raises_at_step(self, sim):
        def bad():
            yield sim.timeout(1)
            raise KeyError("unobserved")

        sim.process(bad())
        with pytest.raises(KeyError):
            sim.run()

    def test_defused_failure_does_not_crash(self, sim):
        def bad():
            yield sim.timeout(1)
            raise KeyError("defused")

        proc = sim.process(bad())
        proc.defused = True
        sim.run()
        assert not proc.ok

    def test_starved_process_detected(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="starved"):
            sim.run_process(stuck())


class TestConditions:
    def test_any_of_first_wins(self, sim):
        def proc():
            yield sim.any_of([sim.timeout(5), sim.timeout(2)])
            return sim.now

        assert sim.run_process(proc()) == 2.0

    def test_all_of_waits_for_all(self, sim):
        def proc():
            result = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(2, "b")])
            return sorted(result.values()), sim.now

        assert sim.run_process(proc()) == (["a", "b"], 5.0)

    def test_empty_all_of_succeeds_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_any_of_fails_on_first_failure(self, sim):
        event = sim.event()

        def failer():
            yield sim.timeout(1)
            event.fail(ValueError("first"))

        def proc():
            try:
                yield sim.any_of([event, sim.timeout(10)])
            except ValueError:
                return "failed"

        sim.process(failer())
        assert sim.run_process(proc()) == "failed"

    def test_all_of_with_already_processed_member(self, sim):
        t1 = sim.timeout(1, "early")

        def proc():
            yield t1
            result = yield sim.all_of([t1, sim.timeout(4, "late")])
            return sim.now, len(result)

        assert sim.run_process(proc()) == (5.0, 2)
