"""Exact minimum machine count for a placement instance (Table 2 baseline).

The paper compares First-Fit against "the optimal number of machines...
computed exhaustively offline". This module does the same with a
branch-and-bound search over identical machines:

* lower bound — the max over resource dimensions of
  ceil(total demand / machine capacity), and the count of replicas too
  big to share any machine pairwise;
* upper bound — First-Fit-Decreasing;
* feasibility for a candidate k — depth-first packing of replicas in
  decreasing size order with symmetry breaking (a replica may open at
  most one *new* empty bin) and memoized failure states.

Exponential in the worst case, as NP-hardness demands, but instances of
the paper's scale (tens of databases) solve in milliseconds-to-seconds.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.sla.model import ResourceVector
from repro.sla.placement import DatabaseLoad

_DIMS = ("cpu", "memory_mb", "disk_io_mbps", "disk_mb")


def _vector_tuple(vector: ResourceVector) -> Tuple[float, ...]:
    return tuple(getattr(vector, dim) for dim in _DIMS)


def lower_bound(databases: Sequence[DatabaseLoad],
                capacity: ResourceVector) -> int:
    """A valid lower bound on the number of machines needed."""
    cap = _vector_tuple(capacity)
    totals = [0.0] * len(_DIMS)
    max_replicas = 0
    for db in databases:
        req = _vector_tuple(db.requirement)
        for i, value in enumerate(req):
            totals[i] += value * db.replicas
        # Anti-affinity: one database's replicas need distinct machines.
        max_replicas = max(max_replicas, db.replicas)
    bound = max_replicas
    for i, total in enumerate(totals):
        if cap[i] > 0:
            bound = max(bound, math.ceil(total / cap[i] - 1e-9))
        elif total > 0:
            raise ValueError(f"demand in zero-capacity dimension {_DIMS[i]}")
    return max(bound, 1 if databases else 0)


def _feasible(items: List[Tuple[Tuple[float, ...], str]],
              capacity: Tuple[float, ...], k: int,
              node_budget: int) -> Optional[bool]:
    """Can ``items`` (replica vectors tagged with db name) fit in k bins?

    Replicas of the same database must land in different bins. Returns
    True/False, or None if the node budget ran out (treat as unknown).
    """
    bins = [list(capacity) for _ in range(k)]
    bin_dbs: List[set] = [set() for _ in range(k)]
    seen_failures = set()
    budget = [node_budget]

    def key() -> Tuple:
        return tuple(sorted(tuple(b) for b in bins))

    def place(idx: int) -> Optional[bool]:
        if idx == len(items):
            return True
        if budget[0] <= 0:
            return None
        budget[0] -= 1
        state = (idx, key())
        if state in seen_failures:
            return False
        vector, db_name = items[idx]
        opened_empty = False
        unknown = False
        for b in range(k):
            if db_name in bin_dbs[b]:
                continue
            is_empty = all(abs(bins[b][i] - capacity[i]) < 1e-12
                           for i in range(len(capacity)))
            if is_empty:
                if opened_empty:
                    continue  # symmetry: empty bins are interchangeable
                opened_empty = True
            if all(vector[i] <= bins[b][i] + 1e-9
                   for i in range(len(vector))):
                for i in range(len(vector)):
                    bins[b][i] -= vector[i]
                bin_dbs[b].add(db_name)
                result = place(idx + 1)
                for i in range(len(vector)):
                    bins[b][i] += vector[i]
                bin_dbs[b].discard(db_name)
                if result:
                    return True
                if result is None:
                    unknown = True
        if unknown:
            return None
        seen_failures.add(state)
        return False

    return place(0)


def optimal_machine_count(databases: Sequence[DatabaseLoad],
                          capacity: ResourceVector,
                          node_budget: int = 2_000_000) -> int:
    """Exact minimum number of identical machines (branch and bound).

    ``node_budget`` caps the search; if exhausted, the best proven bound
    is returned (an upper bound, still >= the true optimum's neighbors —
    for paper-scale instances the budget is never reached).
    """
    if not databases:
        return 0
    cap = _vector_tuple(capacity)
    items: List[Tuple[Tuple[float, ...], str]] = []
    for db in databases:
        vector = _vector_tuple(db.requirement)
        if any(vector[i] > cap[i] + 1e-9 for i in range(len(cap))):
            raise ValueError(
                f"database {db.name} exceeds one machine's capacity")
        for _ in range(db.replicas):
            items.append((vector, db.name))
    # Decreasing dominant-fraction order makes infeasibility show early.
    items.sort(key=lambda item: max(
        item[0][i] / cap[i] for i in range(len(cap)) if cap[i] > 0),
        reverse=True)

    from repro.sla.placement import MachineBin, first_fit

    counter = [0]

    def new_bin() -> MachineBin:
        counter[0] += 1
        return MachineBin(f"opt-{counter[0]}", capacity)

    ffd = first_fit(
        sorted(databases,
               key=lambda d: d.requirement.dominant_fraction(capacity),
               reverse=True),
        bins=[], new_bin=new_bin)
    upper = ffd.machines_used
    lower = lower_bound(databases, capacity)

    for k in range(lower, upper):
        verdict = _feasible(items, cap, k, node_budget)
        if verdict:
            return k
        if verdict is None:
            return upper  # budget exhausted; fall back to the FFD bound
    return upper
