"""Unit tests for the failure injector's victim selection."""

import pytest

from repro.harness.faults import FailureInjector
from tests.conftest import make_kv_cluster


class TestVictimSelection:
    def test_candidates_exclude_last_replicas(self, sim):
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=1)
        replicas = controller.replica_map.replicas("kv")
        controller.fail_machine(replicas[0])
        # The surviving replica must be spared.
        survivor = controller.live_replicas("kv")[0]
        assert survivor not in injector._candidates()

    def test_candidates_respect_min_live(self, sim):
        controller = make_kv_cluster(sim, machines=2)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=2)
        assert injector._candidates() == []

    def test_spare_disabled_allows_all(self, sim):
        controller = make_kv_cluster(sim, machines=3)
        injector = FailureInjector(controller, mtbf_s=10.0,
                                   min_live_machines=1,
                                   spare_last_replicas=False)
        assert len(injector._candidates()) == 3

    def test_stop_before_start_is_noop(self, sim):
        controller = make_kv_cluster(sim, machines=2)
        injector = FailureInjector(controller, mtbf_s=10.0)
        injector.stop()

    def test_deterministic_for_seed(self):
        from repro.sim import Simulator
        events = []
        for _ in range(2):
            sim = Simulator()
            controller = make_kv_cluster(sim, machines=5)
            injector = FailureInjector(controller, mtbf_s=3.0, seed=11,
                                       min_live_machines=2)
            injector.start()
            sim.run(until=30.0)
            injector.stop()
            events.append([(e.when, e.machine) for e in injector.events])
        assert events[0] == events[1]
        assert events[0], "expected at least one failure in 30 s"
