"""Integration tests specific to the aggressive write policy."""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.cluster.controller import TransactionAborted
from repro.workloads.microbench import KeyValueWorkload, KvStats
from tests.conftest import (assert_no_violations, make_kv_cluster,
                            read_table)


class TestAggressiveWrites:
    def test_writes_still_reach_all_replicas(self, sim):
        controller = make_kv_cluster(sim,
                                     write_policy=WritePolicy.AGGRESSIVE)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
            yield conn.commit()

        proc = sim.process(client())
        sim.run()
        assert proc.ok
        for machine in controller.replica_map.replicas("kv"):
            assert read_table(controller, machine, "kv",
                              "SELECT v FROM kv WHERE k = 1") == [(5,)]

    def test_ack_can_arrive_before_all_replicas_finish(self, sim):
        """The defining behaviour: the client resumes after the first ack.

        We slow one replica's disk by loading it with other work, then
        check the client's write latency is below the loaded replica's.
        """
        controller = make_kv_cluster(sim,
                                     write_policy=WritePolicy.AGGRESSIVE)
        replicas = controller.replica_map.replicas("kv")
        slow = controller.machines[replicas[1]]

        # Saturate the slow machine's disk with a background hold.
        def hog():
            yield from slow.disk.use(0.5)

        sim.process(hog())
        timestamps = {}

        def client():
            conn = controller.connect("kv")
            timestamps["start"] = sim.now
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = 0")
            timestamps["acked"] = sim.now
            yield conn.commit()
            timestamps["committed"] = sim.now

        proc = sim.process(client())
        sim.run()
        assert proc.ok
        # The write ack arrived while the slow disk was still busy...
        assert timestamps["acked"] - timestamps["start"] < 0.4
        # ...but commit (2PC) had to wait for the slow replica.
        assert timestamps["committed"] - timestamps["start"] >= 0.4

    def test_poisoned_txn_aborts_on_next_operation(self, sim):
        controller = make_kv_cluster(sim,
                                     write_policy=WritePolicy.AGGRESSIVE,
                                     lock_wait_timeout_s=0.2)
        replicas = controller.replica_map.replicas("kv")
        blocker_machine = controller.machines[replicas[1]]

        # A direct engine transaction holds an X lock on k=7 on ONE
        # replica only, so the cluster write acks on the other replica
        # and the blocked one times out in the background.
        blocker = blocker_machine.engine.begin()
        blocker_machine.engine.execute_sync(
            blocker, "kv", "UPDATE kv SET v = 99 WHERE k = 7")

        outcome = {}

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = 7")
            # First ack arrived; now give the background failure time to
            # surface, then try to commit.
            yield sim.timeout(1.0)
            try:
                yield conn.commit()
                outcome["result"] = "committed"
            except TransactionAborted:
                outcome["result"] = "aborted"

        proc = sim.process(client())
        sim.run()
        assert proc.ok
        assert outcome["result"] == "aborted"
        blocker_machine.engine.abort(blocker)
        # No replica kept the poisoned write.
        for machine in replicas:
            assert read_table(controller, machine, "kv",
                              "SELECT v FROM kv WHERE k = 7") == [(0,)]

    def test_aggressive_storm_keeps_replicas_consistent(self, sim):
        controller = make_kv_cluster(sim, keys=10,
                                     write_policy=WritePolicy.AGGRESSIVE,
                                     read_option=ReadOption.OPTION_1,
                                     lock_wait_timeout_s=0.5)
        workload = KeyValueWorkload(controller, db_name="kv2", keys=10,
                                    seed=3)
        workload.install(replicas=2)
        stats = [KvStats() for _ in range(6)]
        for cid in range(6):
            proc = sim.process(workload.client(cid, transactions=15,
                                               stats=stats[cid]))
            proc.defused = True
        sim.run()
        assert sum(s.committed for s in stats) > 0
        replicas = controller.replica_map.replicas("kv2")
        states = [read_table(controller, m, "kv2",
                             "SELECT k, v FROM kv ORDER BY k")
                  for m in replicas]
        assert states[0] == states[1]
        assert_no_violations(controller, strict=True)
