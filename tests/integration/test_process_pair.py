"""Integration tests for cluster-controller process-pair failover."""

from repro.cluster.process_pair import ProcessPairBackup
from repro.engine.transactions import TxnState
from tests.conftest import make_kv_cluster, read_table


class TestProcessPair:
    def test_clean_commits_leave_no_decisions(self, sim):
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)

        def client():
            conn = controller.connect("kv")
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = 1")
            yield conn.commit()

        proc = sim.process(client())
        sim.run()
        assert proc.ok
        assert backup.decisions == {}

    def test_takeover_completes_decided_commit(self, sim):
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")

        # Drive a transaction manually up to the decision point: all
        # participants PREPARED and the decision mirrored, but no COMMIT
        # messages sent (the primary dies exactly there).
        txn_id = 4242
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 99 WHERE k = 5")
            machine.engine.prepare(txn)
        backup.log_decision(txn_id, "commit", list(replicas))

        committed, aborted = backup.take_over()
        assert committed == [txn_id]
        assert txn_id not in aborted
        for name in replicas:
            assert read_table(controller, name, "kv",
                              "SELECT v FROM kv WHERE k = 5") == [(99,)]

    def test_takeover_aborts_undecided_transactions(self, sim):
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")

        txn_id = 777
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 5 WHERE k = 3")
        # No prepare, no decision: in transit when the primary dies.
        committed, aborted = backup.take_over()
        assert committed == []
        assert txn_id in aborted
        for name in replicas:
            assert read_table(controller, name, "kv",
                              "SELECT v FROM kv WHERE k = 3") == [(0,)]
            engine_txn = controller.machines[name].engine.transactions[txn_id]
            assert engine_txn.state is TxnState.ABORTED

    def test_takeover_aborts_prepared_but_undecided(self, sim):
        # Prepared everywhere but the decision never reached the backup:
        # presumed abort.
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")
        txn_id = 888
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 8 WHERE k = 8")
            machine.engine.prepare(txn)
        committed, aborted = backup.take_over()
        assert txn_id in aborted
        for name in replicas:
            assert read_table(controller, name, "kv",
                              "SELECT v FROM kv WHERE k = 8") == [(0,)]

    def test_takeover_skips_dead_machines(self, sim):
        controller = make_kv_cluster(sim, machines=3)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")
        txn_id = 999
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 9 WHERE k = 9")
            machine.engine.prepare(txn)
        backup.log_decision(txn_id, "commit", list(replicas))
        controller.fail_machine(replicas[1])
        committed, _ = backup.take_over()
        assert committed == [txn_id]
        assert read_table(controller, replicas[0], "kv",
                          "SELECT v FROM kv WHERE k = 9") == [(9,)]


class TestMonitorRestart:
    def test_monitor_rearms_after_reform_and_handles_second_crash(self, sim):
        """Satellite 1: ``start_monitor`` must be restartable.

        After a detection-driven take-over the pair re-forms; arming the
        monitor again must yield a *fresh* detection loop (not the
        spent handle), and that loop must drive a second take-over when
        the primary crashes again.
        """
        from repro.cluster.network import NetworkConfig

        controller = make_kv_cluster(
            sim, machines=3,
            network=NetworkConfig(enabled=True, latency_s=0.01, seed=3))
        backup = ProcessPairBackup(controller)
        first = backup.start_monitor(interval_s=0.1, misses=2)
        # Re-arming while the pair is healthy returns the same loop.
        assert backup.start_monitor(interval_s=0.1, misses=2) is first

        controller.crash_primary()
        sim.run(until=2.0)
        assert backup.took_over
        assert not first.is_alive

        backup.reform()
        assert controller.primary_alive
        assert not backup.took_over
        second = backup.start_monitor(interval_s=0.1, misses=2)
        assert second is not first
        assert second.is_alive

        controller.crash_primary()
        sim.run(until=4.0)
        assert backup.took_over, "re-armed monitor missed the second crash"

    def test_start_monitor_replaces_zombie_loop_after_oracle_takeover(self, sim):
        """An oracle-invoked take-over leaves the old loop a zombie; a
        subsequent ``start_monitor`` must replace it, not return it."""
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        first = backup.start_monitor(interval_s=0.1, misses=2)
        backup.take_over(reason="oracle")
        # The loop has not woken up yet, so it is alive but spent.
        replacement = backup.start_monitor(interval_s=0.1, misses=2)
        assert replacement is not first
        sim.run(until=1.0)
        assert not first.is_alive


class TestTakeoverSweepsFencedMachines:
    def test_undecided_txn_on_fenced_participant_is_aborted(self, sim):
        """Satellite 2: take-over Phase 2 must reach alive-but-fenced
        machines.

        A participant fenced mid-PREPARE still holds the transaction's
        write locks in its engine; nothing else will ever release them,
        so the presumed-abort sweep must cover it.
        """
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")

        txn_id = 555
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 55 WHERE k = 4")
            machine.engine.prepare(txn)
        # The detector fences one participant between its PREPARE and
        # any decision: alive, engine intact, locks held.
        fenced = controller.machines[replicas[1]]
        fenced.fence()
        assert fenced.alive and fenced.fenced

        committed, aborted = backup.take_over()
        assert committed == []
        assert aborted == [txn_id]
        for name in replicas:
            engine_txn = controller.machines[name].engine.transactions[txn_id]
            assert engine_txn.state is TxnState.ABORTED, name
        # The un-fenced replica shows the rollback; the fenced one holds
        # no lock that would block its eventual wipe-and-readmit.
        assert read_table(controller, replicas[0], "kv",
                          "SELECT v FROM kv WHERE k = 4") == [(0,)]

    def test_decided_commit_skips_fenced_participant_but_lands_elsewhere(
            self, sim):
        """Phase 1 must not commit onto a fenced machine (its replica is
        stale by definition and will be wiped on readmission) while
        still completing the decision on the healthy participants."""
        controller = make_kv_cluster(sim)
        backup = ProcessPairBackup(controller)
        replicas = controller.replica_map.replicas("kv")
        txn_id = 556
        for name in replicas:
            machine = controller.machines[name]
            txn = machine.engine.begin(txn_id)
            machine.engine.execute_sync(
                txn, "kv", "UPDATE kv SET v = 56 WHERE k = 6")
            machine.engine.prepare(txn)
        backup.log_decision(txn_id, "commit", list(replicas))
        controller.machines[replicas[1]].fence()

        committed, aborted = backup.take_over()
        assert committed == [txn_id]
        assert aborted == []
        assert read_table(controller, replicas[0], "kv",
                          "SELECT v FROM kv WHERE k = 6") == [(56,)]


class TestTakeoverRacesInflightPrepares:
    def test_mid_phase1_txn_presumed_aborted_everywhere(self, sim):
        """The primary dies while PREPAREs are on the wire.

        The participants keep PREPARE-ing (they cannot know the primary
        died), but no decision was mirrored, so the backup's detection-
        driven take-over must presumed-abort the transaction on every
        participant — and the trace must satisfy the no-split-brain and
        decision invariants.
        """
        from repro.analysis.invariants import check_controller
        from repro.cluster.controller import TransactionAborted
        from repro.cluster.network import NetworkConfig
        from repro.errors import ControllerFailedError

        # One-way latency of 0.2 s makes the 2PC phases slow enough to
        # crash the primary deterministically in the middle of phase 1.
        controller = make_kv_cluster(
            sim, machines=3,
            network=NetworkConfig(enabled=True, latency_s=0.2, seed=1))
        backup = ProcessPairBackup(controller)
        backup.start_monitor(interval_s=0.1, misses=2)
        replicas = controller.replica_map.replicas("kv")
        outcome = {}

        def client():
            conn = controller.connect("kv")
            try:
                yield conn.execute("UPDATE kv SET v = 42 WHERE k = 2")
                yield conn.commit()
            except (TransactionAborted, ControllerFailedError) as exc:
                outcome["error"] = exc
            else:
                outcome["committed"] = True

        def crasher():
            # Writes are acked ~0.4 s in; the first PREPARE is on the
            # wire until ~0.8 s. Crash squarely inside phase 1.
            yield sim.timeout(0.5)
            controller.crash_primary()

        sim.process(client())
        crash = sim.process(crasher())
        sim.run(until=10.0)

        assert crash.ok
        assert backup.took_over
        assert "committed" not in outcome
        assert isinstance(outcome["error"],
                          (TransactionAborted, ControllerFailedError))
        # Presumed abort landed on every participant: no replica kept
        # the write, no replica still holds the transaction open.
        assert backup.aborted_on_takeover
        txn_id = backup.aborted_on_takeover[0]
        for name in replicas:
            engine = controller.machines[name].engine
            txn = engine.transactions.get(txn_id)
            assert txn is None or txn.state is not TxnState.COMMITTED
            assert read_table(controller, name, "kv",
                              "SELECT v FROM kv WHERE k = 2") == [(0,)]
        assert backup.completed_on_takeover == []
        violations = check_controller(controller)
        assert not violations, "\n".join(str(v) for v in violations)
