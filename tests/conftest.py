"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ClusterController, ReadOption, WritePolicy
from repro.engine import Engine
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def engine():
    """A standalone engine with a simple kv database."""
    eng = Engine("test-engine")
    eng.create_database("db")
    txn = eng.begin()
    eng.execute_sync(txn, "db",
                     "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    for k in range(20):
        eng.execute_sync(txn, "db", "INSERT INTO kv VALUES (?, ?)", (k, k * 10))
    eng.commit(txn)
    return eng


def make_cluster(sim: Simulator, machines: int = 3,
                 read_option: ReadOption = ReadOption.OPTION_1,
                 write_policy: WritePolicy = WritePolicy.CONSERVATIVE,
                 record_history: bool = False,
                 lock_wait_timeout_s: float = 2.0,
                 **config_kwargs) -> ClusterController:
    config = ClusterConfig(read_option=read_option,
                           write_policy=write_policy,
                           record_history=record_history,
                           lock_wait_timeout_s=lock_wait_timeout_s,
                           **config_kwargs)
    controller = ClusterController(sim, config)
    controller.add_machines(machines)
    return controller


def make_kv_cluster(sim: Simulator, keys: int = 20, machines: int = 3,
                    replicas: int = 2, **kwargs) -> ClusterController:
    controller = make_cluster(sim, machines=machines, **kwargs)
    controller.create_database(
        "kv", ["CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"],
        replicas=replicas)
    controller.bulk_load("kv", "kv", [(k, 0) for k in range(keys)])
    return controller


def read_table(controller: ClusterController, machine_name: str, db: str,
               sql: str):
    """Directly query one machine's engine (verification helper)."""
    engine = controller.machines[machine_name].engine
    txn = engine.begin()
    try:
        return engine.execute_sync(txn, db, sql).rows
    finally:
        engine.commit(txn)


def assert_no_violations(controller: ClusterController, **kwargs) -> None:
    """Run the 2PC invariant checker over the controller's trace."""
    from repro.analysis.invariants import check_controller

    violations = check_controller(controller, **kwargs)
    assert not violations, "\n".join(str(v) for v in violations)
