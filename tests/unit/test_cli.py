"""Unit tests for the harness CLI."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_table2_prints_table(self, capsys):
        code = main(["table2", "--databases", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Skew Factor" in out
        assert "Optimal Solution" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_duration_flag_parsed(self, capsys):
        code = main(["table2", "--databases", "6", "--seed", "9"])
        assert code == 0
