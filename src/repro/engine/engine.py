"""The MiniSQL engine facade: one instance per simulated machine.

An :class:`Engine` owns the storage, lock manager, WAL, and buffer pool of
one "mysqld". Transactions carry *global* ids supplied by the cluster
controller (the same logical transaction executes on every replica
machine), or engine-local ids for standalone use.

``execute`` is a generator (see :mod:`repro.engine.executor` for the
protocol); ``execute_sync`` is the convenience driver for single-session
use that raises :class:`WouldBlockError` on any lock wait.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.engine import compile as comp
from repro.engine import executor as ex
from repro.engine import planner as pl
from repro.engine.config import EngineConfig
from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, LockMode
from repro.engine.schema import Column, DatabaseSchema, IndexDef, TableSchema
from repro.engine.sqlparse import nodes as n
from repro.engine.sqlparse.parser import parse
from repro.engine.storage import StoredDatabase
from repro.engine.transactions import Transaction, TxnState
from repro.engine.types import SqlType
from repro.engine.wal import (LogRecord, RecordType, WriteAheadLog, analyze)
from repro.errors import (SchemaError, SqlError, TransactionError,
                          WouldBlockError)

ExecResult = ex.ExecResult


class Engine:
    """A single-node DBMS instance."""

    _ids = itertools.count(1)

    def __init__(self, name: str = "", config: Optional[EngineConfig] = None,
                 history=None):
        self.name = name or f"engine-{next(self._ids)}"
        self.config = config or EngineConfig()
        self.locks = LockManager()
        self.wal = WriteAheadLog()
        self.buffer_pool = BufferPool(self.config.buffer_pool_pages)
        self.databases: Dict[str, StoredDatabase] = {}
        self.history = history
        self._planners: Dict[str, pl.Planner] = {}
        self._plan_cache: Dict[Tuple[str, str], Any] = {}
        # Compiled executors, keyed and invalidated exactly like plans.
        self._compiled_cache: Dict[Tuple[str, str], Any] = {}
        self._local_txn_ids = itertools.count(1_000_000_000)
        self.transactions: Dict[int, Transaction] = {}
        # Uncommitted row changes, for non-locking consistent reads:
        # (db, table, rid) -> (owner txn id, committed before-image).
        self.dirty: Dict[Tuple[str, str, int], Tuple[int, Any]] = {}

    # -- database lifecycle -------------------------------------------------

    def create_database(self, name: str) -> StoredDatabase:
        if name in self.databases:
            raise SchemaError(f"database {name!r} already exists on {self.name}")
        database = StoredDatabase(DatabaseSchema(name), self.config)
        self.databases[name] = database
        self._planners[name] = pl.Planner(database.schema, database,
                                          self.config)
        return database

    def attach_database(self, database: StoredDatabase) -> None:
        """Host an existing database object (replica copy landing)."""
        if database.name in self.databases:
            raise SchemaError(f"database {database.name!r} already on {self.name}")
        self.databases[database.name] = database
        self._planners[database.name] = pl.Planner(database.schema,
                                                   database, self.config)

    def drop_database(self, name: str) -> None:
        self.databases.pop(name, None)
        self._planners.pop(name, None)
        self._plan_cache = {
            key: plan for key, plan in self._plan_cache.items()
            if key[0] != name
        }
        self._compiled_cache = {
            key: fn for key, fn in self._compiled_cache.items()
            if key[0] != name
        }
        self.buffer_pool.invalidate_prefix((name,))

    def database(self, name: str) -> StoredDatabase:
        if name not in self.databases:
            raise SchemaError(f"no database {name!r} on engine {self.name}")
        return self.databases[name]

    def hosts(self, name: str) -> bool:
        return name in self.databases

    # -- transactions ------------------------------------------------------

    def begin(self, txn_id: Optional[int] = None) -> Transaction:
        if txn_id is None:
            txn_id = next(self._local_txn_ids)
        if txn_id in self.transactions and not self.transactions[txn_id].finished:
            raise TransactionError(f"txn {txn_id} already active on {self.name}")
        txn = Transaction(txn_id)
        self.transactions[txn_id] = txn
        self.wal.append(txn_id, RecordType.BEGIN)
        return txn

    def prepare(self, txn: Transaction) -> None:
        """2PC phase one: force the log, optionally shed read locks."""
        txn.require(TxnState.ACTIVE)
        self.wal.append(txn.txn_id, RecordType.PREPARE)
        self.wal.flush()
        if self.config.release_read_locks_at_prepare:
            self.locks.release_shared(txn.txn_id)
        txn.state = TxnState.PREPARED
        if self.history is not None:
            self.history.record_prepare(txn.txn_id)

    def commit(self, txn: Transaction) -> None:
        txn.require(TxnState.ACTIVE, TxnState.PREPARED)
        self.wal.append(txn.txn_id, RecordType.COMMIT)
        self.wal.flush()
        self._apply_stats_deltas(txn)
        self._clear_dirty(txn)
        self.locks.release_all(txn.txn_id)
        txn.state = TxnState.COMMITTED
        if self.history is not None:
            self.history.record_commit(txn.txn_id)

    def abort(self, txn: Transaction) -> None:
        if txn.state is TxnState.COMMITTED:
            raise TransactionError(f"txn {txn.txn_id} already committed")
        if txn.state is TxnState.ABORTED:
            return
        for entry in reversed(txn.undo):
            table = self.database(entry.db).table(entry.table)
            if entry.kind == "insert":
                if table.get(entry.rid) is not None:
                    table.delete(entry.rid)
            elif entry.kind == "update":
                table.update(entry.rid, entry.before)
            elif entry.kind == "delete":
                table.insert_at(entry.rid, entry.before)
        txn.undo.clear()
        self.wal.append(txn.txn_id, RecordType.ABORT)
        self._clear_dirty(txn)
        self.locks.release_all(txn.txn_id)
        txn.state = TxnState.ABORTED
        if self.history is not None:
            self.history.record_abort(txn.txn_id)

    def _apply_stats_deltas(self, txn: Transaction) -> None:
        """Fold a committing transaction's row changes into the
        catalogue statistics.

        The undo log already carries exact before/after images for every
        change, so statistics maintenance is a pure replay of it — no
        rescans, and aborted transactions (whose physical changes are
        rolled back) never touch the sketches.
        """
        if not txn.undo:
            return
        for entry in txn.undo:
            database = self.databases.get(entry.db)
            if database is None:
                continue
            stats = database.stats.get(entry.table)
            if stats is None:
                continue
            stats.apply_delta(entry.kind, entry.before, entry.after)

    def table_stats(self, db_name: str, table_name: str):
        """Catalogue statistics for one table (the live object)."""
        database = self.database(db_name)
        database.table(table_name)  # raises SchemaError when unknown
        return database.stats[table_name]

    def _clear_dirty(self, txn: Transaction) -> None:
        for key in txn.dirty_keys:
            entry = self.dirty.get(key)
            if entry is not None and entry[0] == txn.txn_id:
                del self.dirty[key]
        txn.dirty_keys.clear()

    # -- statement execution ------------------------------------------------

    def plan(self, db_name: str, sql: str):
        """Parse and plan a statement, with caching keyed by SQL text."""
        key = (db_name, sql)
        if key in self._plan_cache:
            return self._plan_cache[key]
        stmt = parse(sql)
        planner = self._planner(db_name)
        if isinstance(stmt, n.Select):
            plan = planner.plan_select(stmt)
        elif isinstance(stmt, n.Insert):
            plan = planner.plan_insert(stmt)
        elif isinstance(stmt, n.Update):
            plan = planner.plan_update(stmt)
        elif isinstance(stmt, n.Delete):
            plan = planner.plan_delete(stmt)
        elif isinstance(stmt, (n.CreateTable, n.CreateIndex)):
            return stmt  # DDL executes directly, uncached
        else:
            raise SqlError(f"unsupported statement {type(stmt).__name__}")
        self._plan_cache[key] = plan
        return plan

    def compiled(self, db_name: str, sql: str):
        """Compiled executor for a statement, or None when interpreting.

        Compilation happens once per cached plan; the artifact is
        invalidated together with the plan on DDL. Returns None when
        ``compile_plans`` is off or the plan has no compiled form (DDL).
        """
        if not self.config.compile_plans:
            return None
        key = (db_name, sql)
        if key in self._compiled_cache:
            return self._compiled_cache[key]
        plan = self.plan(db_name, sql)
        if isinstance(plan, (pl.SelectPlan, pl.InsertPlan, pl.UpdatePlan,
                             pl.DeletePlan)):
            compiled = comp.compile_statement(
                plan, comp.CompileOptions(
                    batch=self.config.batch_execution,
                    batch_size=self.config.batch_size))
        else:
            compiled = None
        self._compiled_cache[key] = compiled
        return compiled

    def _planner(self, db_name: str) -> pl.Planner:
        if db_name not in self._planners:
            raise SchemaError(f"no database {db_name!r} on engine {self.name}")
        return self._planners[db_name]

    def execute(self, txn: Transaction, db_name: str, sql: str,
                params: Sequence[Any] = ()) -> Generator:
        """Run one statement inside ``txn``; generator protocol.

        Yields :class:`LockRequest` on waits; returns :class:`ExecResult`.
        """
        txn.require(TxnState.ACTIVE)
        # Compiled fast path: one cache lookup covers parse + plan +
        # compile for every statement after the first.
        compiled = (self._compiled_cache.get((db_name, sql))
                    if self.config.compile_plans else None)
        if compiled is not None:
            txn.databases.add(db_name)
            ctx = ex.ExecContext(txn, self.database(db_name), self.locks,
                                 self.buffer_pool, self.wal, tuple(params),
                                 history=self.history, dirty=self.dirty)
            result = yield from compiled(ctx)
            return result
        plan = self.plan(db_name, sql)
        txn.databases.add(db_name)
        if isinstance(plan, (n.CreateTable, n.CreateIndex)):
            result = self._execute_ddl(db_name, plan)
            return result
            yield  # pragma: no cover - makes this function a generator
        ctx = ex.ExecContext(txn, self.database(db_name), self.locks,
                             self.buffer_pool, self.wal, tuple(params),
                             history=self.history, dirty=self.dirty)
        compiled = self.compiled(db_name, sql)
        if compiled is not None:
            result = yield from compiled(ctx)
        elif isinstance(plan, pl.SelectPlan):
            result = yield from ex.execute_select(plan, ctx)
        elif isinstance(plan, pl.InsertPlan):
            result = yield from ex.execute_insert(plan, ctx)
        elif isinstance(plan, pl.UpdatePlan):
            result = yield from ex.execute_update(plan, ctx)
        elif isinstance(plan, pl.DeletePlan):
            result = yield from ex.execute_delete(plan, ctx)
        else:
            raise SqlError(f"unsupported plan {type(plan).__name__}")
        return result

    def execute_sync(self, txn: Transaction, db_name: str, sql: str,
                     params: Sequence[Any] = ()) -> ExecResult:
        """Single-session driver: any lock wait raises WouldBlockError."""
        gen = self.execute(txn, db_name, sql, params)
        try:
            request = next(gen)
        except StopIteration as stop:
            return stop.value
        gen.close()
        raise WouldBlockError(
            f"statement blocked on {request.resource} "
            f"(held by another transaction)"
        )

    def _execute_ddl(self, db_name: str, stmt) -> ExecResult:
        database = self.database(db_name)
        if isinstance(stmt, n.CreateTable):
            columns = [
                Column(c.name, SqlType.from_name(c.type_name), c.nullable)
                for c in stmt.columns
            ]
            database.add_table(TableSchema(stmt.table, columns,
                                           stmt.primary_key))
        else:
            schema = database.schema.table(stmt.table)
            schema.add_index(IndexDef(stmt.name, tuple(stmt.columns),
                                      stmt.unique))
            table = database.table(stmt.table)
            from repro.engine.btree import BPlusTree
            tree = BPlusTree(order=self.config.btree_order)
            index = schema.indexes[stmt.name]
            for rid, row in table.scan():
                tree.insert(table.index_key(index, row), rid)
            table.indexes[stmt.name] = tree
        self._plan_cache = {
            key: plan for key, plan in self._plan_cache.items()
            if key[0] != db_name
        }
        self._compiled_cache = {
            key: fn for key, fn in self._compiled_cache.items()
            if key[0] != db_name
        }
        return ExecResult(rowcount=0)

    # -- copy support (dump tool backend) ---------------------------------------

    def snapshot_table(self, db_name: str, table_name: str) -> List[Tuple]:
        """Raw rows of one table; caller must hold the table read lock."""
        table = self.database(db_name).table(table_name)
        return [row for _, row in table.scan()]

    def load_table_rows(self, db_name: str, table_name: str,
                        rows: List[Tuple]) -> None:
        """Bulk-load snapshot rows into an (empty) table on this engine."""
        database = self.database(db_name)
        table = database.table(table_name)
        stats = database.stats.get(table_name)
        for row in rows:
            rid = table.insert(row)
            if stats is not None:
                stats.add_row(table.get(rid))


# -- restart recovery -------------------------------------------------------------


def recover_engine(name: str, config: EngineConfig,
                   db_schemas: List[DatabaseSchema],
                   records: List[LogRecord],
                   history=None) -> Tuple[Engine, List[Transaction]]:
    """Rebuild an engine from durable WAL records after a crash.

    Storage is reconstructed by replaying, in LSN order, the row changes
    of every transaction that reached COMMIT or PREPARE in the durable
    log. In-doubt (PREPARED) transactions are returned with their
    exclusive row locks re-taken so the 2PC coordinator can still decide
    them; all other transactions are presumed aborted and their changes
    discarded.
    """
    engine = Engine(name, config, history=history)
    for schema in db_schemas:
        fresh = DatabaseSchema(schema.name)
        engine.databases[schema.name] = StoredDatabase(fresh, config)
        engine._planners[schema.name] = pl.Planner(
            fresh, engine.databases[schema.name], config)
        for tschema in schema.tables.values():
            engine.databases[schema.name].add_table(
                TableSchema(tschema.name, list(tschema.columns),
                            tschema.primary_key)
            )
            for index in tschema.indexes.values():
                if index.name != "__pk__":
                    engine.databases[schema.name].schema.table(
                        tschema.name
                    ).add_index(IndexDef(index.name, index.columns,
                                         index.unique))
                    from repro.engine.btree import BPlusTree
                    engine.databases[schema.name].table(tschema.name).indexes[
                        index.name
                    ] = BPlusTree(order=config.btree_order)

    state = analyze(records)
    keep = set(state.committed) | set(state.in_doubt)
    replayed_committed = set()
    in_doubt_changes: Dict[int, List[LogRecord]] = {
        txn_id: [] for txn_id in state.in_doubt
    }
    for record in records:
        if record.txn_id not in keep:
            continue
        if record.kind in (RecordType.INSERT, RecordType.UPDATE,
                           RecordType.DELETE):
            if record.db not in engine.databases:
                continue
            table = engine.database(record.db).table(record.table)
            if record.kind is RecordType.INSERT:
                table.insert_at(record.rid, record.after)
            elif record.kind is RecordType.UPDATE:
                table.update(record.rid, record.after)
            else:
                table.delete(record.rid)
            if record.txn_id in in_doubt_changes:
                in_doubt_changes[record.txn_id].append(record)
            else:
                replayed_committed.add(record.txn_id)
            # Recovered engine's WAL must reflect the surviving state.
            engine.wal.append(record.txn_id, record.kind, db=record.db,
                              table=record.table, rid=record.rid,
                              before=record.before, after=record.after)

    # Close out the replayed committed transactions in the new log, so a
    # second crash-recovery keeps them (recovery is idempotent).
    for txn_id in sorted(replayed_committed):
        engine.wal.append(txn_id, RecordType.COMMIT)

    in_doubt_txns: List[Transaction] = []
    for txn_id in state.in_doubt:
        txn = Transaction(txn_id, state=TxnState.PREPARED)
        txn.wrote = bool(in_doubt_changes[txn_id])
        engine.transactions[txn_id] = txn
        for record in in_doubt_changes[txn_id]:
            # Rebuild the undo information and re-take row X locks.
            from repro.engine.transactions import UndoEntry
            kind = {RecordType.INSERT: "insert", RecordType.UPDATE: "update",
                    RecordType.DELETE: "delete"}[record.kind]
            txn.undo.append(UndoEntry(record.db, record.table, kind,
                                      record.rid, record.before,
                                      record.after))
            request = engine.locks.acquire(
                txn_id, ("row", record.db, record.table, record.rid),
                LockMode.X)
            assert request.granted, "lock conflict during recovery"
        engine.wal.append(txn_id, RecordType.PREPARE)
        in_doubt_txns.append(txn)
    engine.wal.flush()

    # Catalogue statistics: rebuild from the replayed storage state,
    # then back out the in-doubt transactions' deltas so the sketches
    # reflect committed state only. When an in-doubt transaction is
    # later decided, commit() re-applies its deltas and abort() rolls
    # back its rows — either way the stats stay exact.
    from repro.engine.stats import TableStats
    for database in engine.databases.values():
        for tname, table in database.tables.items():
            database.stats[tname] = TableStats.rebuild(
                len(table.schema.columns),
                (row for _, row in table.scan()))
    for txn in in_doubt_txns:
        for entry in txn.undo:
            database = engine.databases.get(entry.db)
            if database is None:
                continue
            stats = database.stats.get(entry.table)
            if stats is not None:
                stats.revert_delta(entry.kind, entry.before, entry.after)
    return engine, in_doubt_txns
