"""The platform tier: system controller, colos, and the public facade.

Implements the Section 2 architecture above the cluster: geographically
distributed colos, asynchronous cross-colo replication for disaster
recovery, free machine pools, and a :class:`DataPlatform` that exposes
exactly the paper's two-call API — create a database with an SLA, then
connect to it.
"""

from repro.platform.colo import ColoController
from repro.platform.platform import DataPlatform, DatabaseSpec
from repro.platform.system_controller import SystemController

__all__ = [
    "ColoController",
    "DataPlatform",
    "DatabaseSpec",
    "SystemController",
]
