"""Global serialization graph and one-copy-serializability checking.

Following Section 3.1 of the paper (and Bernstein et al.): with
read-one-write-all replication, one-copy serializability holds exactly
when the *global* serialization graph — the union of every site's
conflict edges over committed transactions — is acyclic. The experiments
for Table 1 run adversarial and randomized workloads through the cluster
controller and hand the recorded histories to this checker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.history import GlobalHistory


class SerializationGraph:
    """A directed graph over transaction ids."""

    def __init__(self, edges: Iterable[Tuple[int, int]] = ()):
        self.adj: Dict[int, Set[int]] = {}
        for src, dst in edges:
            self.add_edge(src, dst)

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.adj.setdefault(src, set()).add(dst)
        self.adj.setdefault(dst, set())

    @property
    def nodes(self) -> Set[int]:
        return set(self.adj)

    @property
    def edge_count(self) -> int:
        return sum(len(v) for v in self.adj.values())

    def find_cycle(self) -> Optional[List[int]]:
        """Some cycle as a node list, or None if the graph is acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {node: WHITE for node in self.adj}
        stack: List[int] = []

        def dfs(node: int) -> Optional[List[int]]:
            color[node] = GRAY
            stack.append(node)
            for nxt in self.adj.get(node, ()):
                if color[nxt] == GRAY:
                    idx = stack.index(nxt)
                    return stack[idx:] + [nxt]
                if color[nxt] == WHITE:
                    found = dfs(nxt)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in list(self.adj):
            if color[node] == WHITE:
                found = dfs(node)
                if found is not None:
                    return found
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_order(self) -> List[int]:
        """A serialization order (raises ValueError if cyclic)."""
        indegree: Dict[int, int] = {node: 0 for node in self.adj}
        for src in self.adj:
            for dst in self.adj[src]:
                indegree[dst] += 1
        frontier = sorted(n for n, d in indegree.items() if d == 0)
        order: List[int] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for nxt in sorted(self.adj[node]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(self.adj):
            raise ValueError("graph has a cycle; no serialization order")
        return order


def check_one_copy_serializable(
    history: GlobalHistory,
) -> Tuple[bool, Optional[List[int]]]:
    """Check a cluster execution for one-copy serializability.

    Returns ``(ok, cycle)`` where ``cycle`` names the offending
    transactions when the global serialization graph is cyclic.
    """
    graph = SerializationGraph(history.global_edges())
    cycle = graph.find_cycle()
    return cycle is None, cycle
