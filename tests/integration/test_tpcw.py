"""Integration tests for the TPC-W workload implementation."""

import pytest

from repro.cluster import ReadOption, WritePolicy
from repro.sim import Simulator
from repro.sim.rng import SeededRNG
from repro.workloads.tpcw import MIXES, TpcwClient, TpcwDatabase, TpcwScale
from repro.workloads.tpcw.mixes import INTERACTIONS, WRITE_INTERACTIONS
from repro.workloads.tpcw.schema import TPCW_DDL, TPCW_TABLES
from tests.conftest import make_cluster, read_table


@pytest.fixture(scope="module")
def data():
    return TpcwDatabase(TpcwScale(items=200, emulated_browsers=4), seed=5)


def build_tpcw_cluster(sim, data, **kwargs):
    controller = make_cluster(sim, machines=3, **kwargs)
    controller.create_database("shop", TPCW_DDL, replicas=2)
    data.load_into(controller, "shop")
    return controller


class TestDatagen:
    def test_cardinalities_follow_ratios(self, data):
        scale = data.scale
        assert len(data.rows["item"]) == scale.items
        assert len(data.rows["author"]) == scale.authors
        assert len(data.rows["customer"]) == scale.customers
        assert len(data.rows["orders"]) == scale.orders
        assert len(data.rows["address"]) == 2 * scale.customers

    def test_every_schema_table_generated(self, data):
        assert set(data.rows) == set(TPCW_TABLES)

    def test_referential_integrity(self, data):
        scale = data.scale
        author_ids = {r[0] for r in data.rows["author"]}
        for item in data.rows["item"]:
            assert item[2] in author_ids
        customer_ids = {r[0] for r in data.rows["customer"]}
        for order in data.rows["orders"]:
            assert order[1] in customer_ids
        order_ids = {r[0] for r in data.rows["orders"]}
        for line in data.rows["order_line"]:
            assert line[0] in order_ids
            assert 1 <= line[2] <= scale.items

    def test_deterministic_given_seed(self):
        a = TpcwDatabase(TpcwScale(items=50), seed=9)
        b = TpcwDatabase(TpcwScale(items=50), seed=9)
        assert a.rows["item"] == b.rows["item"]

    def test_id_allocator_starts_after_data(self, data):
        assert data.ids.next_customer == data.scale.customers + 1
        assert data.ids.next_order == data.scale.orders + 1

    def test_estimated_mb_positive(self, data):
        assert data.estimated_mb() > 0


class TestMixes:
    def test_weights_normalized(self):
        for mix in MIXES.values():
            assert sum(w for _, w in mix.weights) == pytest.approx(1.0)

    def test_all_interactions_present(self):
        for mix in MIXES.values():
            assert {k for k, _ in mix.weights} == set(INTERACTIONS)

    def test_write_fraction_ordering(self):
        browsing = MIXES["browsing"].write_fraction()
        shopping = MIXES["shopping"].write_fraction()
        ordering = MIXES["ordering"].write_fraction()
        assert browsing < shopping < ordering
        assert browsing == pytest.approx(0.044, abs=0.01)
        assert ordering == pytest.approx(0.494, abs=0.02)

    def test_choose_follows_weights(self):
        rng = SeededRNG(1)
        picks = [MIXES["browsing"].choose(rng) for _ in range(2000)]
        # Home is 29 % of the browsing mix.
        assert 0.24 < picks.count("home") / 2000 < 0.34


class TestInteractions:
    def test_every_interaction_runs(self, sim, data):
        """Each of the 14 interactions completes against the cluster."""
        controller = build_tpcw_cluster(sim, data)
        from repro.workloads.tpcw.transactions import TpcwSession

        conn = controller.connect("shop")
        session = TpcwSession(conn, data, SeededRNG(3), customer_id=1,
                              cart_id=1)
        completed = []

        def run_all():
            for name in INTERACTIONS:
                yield from getattr(session, name)()
                completed.append(name)

        proc = sim.process(run_all())
        sim.run()
        assert proc.ok, proc.value
        assert completed == INTERACTIONS

    def test_buy_confirm_creates_order(self, sim, data):
        controller = build_tpcw_cluster(sim, data)
        from repro.workloads.tpcw.transactions import TpcwSession

        conn = controller.connect("shop")
        session = TpcwSession(conn, data, SeededRNG(4), customer_id=2,
                              cart_id=2)
        before = data.ids.next_order

        def scenario():
            yield from session.shopping_cart()
            yield from session.buy_confirm()

        proc = sim.process(scenario())
        sim.run()
        assert proc.ok, proc.value
        primary = controller.replica_map.replicas("shop")[0]
        rows = read_table(controller, primary, "shop",
                          f"SELECT o_id FROM orders WHERE o_id = {before}")
        assert rows == [(before,)]
        # Cart emptied afterwards.
        cart = read_table(controller, primary, "shop",
                          "SELECT COUNT(*) FROM shopping_cart_line "
                          "WHERE scl_sc_id = 2")
        assert cart == [(0,)]

    def test_customer_registration_switches_identity(self, sim, data):
        controller = build_tpcw_cluster(sim, data)
        from repro.workloads.tpcw.transactions import TpcwSession

        conn = controller.connect("shop")
        session = TpcwSession(conn, data, SeededRNG(5), customer_id=1,
                              cart_id=3)

        def scenario():
            yield from session.customer_registration()

        proc = sim.process(scenario())
        sim.run()
        assert proc.ok
        assert session.customer_id > data.scale.customers


class TestClientLoop:
    def test_client_runs_interaction_budget(self, sim, data):
        controller = build_tpcw_cluster(sim, data)
        client = TpcwClient(controller, "shop", data, MIXES["shopping"],
                            client_id=0, seed=1, think_time_s=0.01)
        proc = sim.process(client.run(interactions=25))
        sim.run()
        assert proc.ok
        stats = proc.value
        assert stats.completed + stats.deadlocks + stats.rejections + \
            stats.other_aborts == 25

    def test_concurrent_clients_keep_replicas_consistent(self, sim, data):
        controller = build_tpcw_cluster(
            sim, data, read_option=ReadOption.OPTION_2,
            write_policy=WritePolicy.CONSERVATIVE)
        clients = [TpcwClient(controller, "shop", data, MIXES["ordering"],
                              client_id=i, seed=20 + i, think_time_s=0.005)
                   for i in range(4)]
        for client in clients:
            sim.process(client.run(interactions=20))
        sim.run()
        replicas = controller.replica_map.replicas("shop")
        for table in ("orders", "order_line", "item", "customer",
                      "shopping_cart_line", "cc_xacts"):
            counts = {read_table(controller, m, "shop",
                                 f"SELECT COUNT(*) FROM {table}")[0][0]
                      for m in replicas}
            assert len(counts) == 1, f"{table} diverged: {counts}"

    def test_run_requires_bound(self, sim, data):
        controller = build_tpcw_cluster(sim, data)
        client = TpcwClient(controller, "shop", data, MIXES["shopping"],
                            client_id=0)
        with pytest.raises(ValueError):
            next(client.run())
