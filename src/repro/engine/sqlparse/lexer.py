"""Tokenizer for the MiniSQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from repro.errors import SqlError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "BETWEEN", "JOIN", "INNER", "ON", "INSERT", "INTO", "VALUES", "UPDATE",
    "SET", "DELETE", "CREATE", "TABLE", "INDEX", "PRIMARY", "KEY", "UNIQUE",
    "ASC", "DESC", "COUNT", "SUM", "AVG", "MIN", "MAX", "FOR",
}


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    PARAM = "PARAM"          # ?
    OPERATOR = "OPERATOR"    # = <> != < <= > >= + - * / ( ) , .
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/",
              "(", ")", ",", ".")


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; raises :class:`SqlError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SqlError(f"unterminated string at {i}: {sql!r}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            saw_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not saw_dot)):
                if sql[j] == ".":
                    # a trailing '.' followed by non-digit is a qualifier dot
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    saw_dot = True
                j += 1
            text = sql[i:j]
            value: Any = float(text) if "." in text else int(text)
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlError(f"unexpected character {ch!r} at {i} in {sql!r}")
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens
