"""Unit tests for histories, the serialization graph, and metrics."""

import pytest

from repro.analysis import (GlobalHistory, MetricsCollector,
                            SerializationGraph, SiteHistory, TimeSeries,
                            check_one_copy_serializable)


class TestSiteHistory:
    def test_conflict_edges_rw(self):
        site = SiteHistory("m1")
        site.record_read(1, ("db", "t", (1,)))
        site.record_write(2, ("db", "t", (1,)))
        site.record_commit(1)
        site.record_commit(2)
        assert site.conflict_edges() == {(1, 2)}

    def test_no_edge_for_read_read(self):
        site = SiteHistory("m1")
        site.record_read(1, ("db", "t", (1,)))
        site.record_read(2, ("db", "t", (1,)))
        site.record_commit(1)
        site.record_commit(2)
        assert site.conflict_edges() == set()

    def test_no_edge_for_different_objects(self):
        site = SiteHistory("m1")
        site.record_write(1, ("db", "t", (1,)))
        site.record_write(2, ("db", "t", (2,)))
        site.record_commit(1)
        site.record_commit(2)
        assert site.conflict_edges() == set()

    def test_aborted_txn_excluded(self):
        site = SiteHistory("m1")
        site.record_write(1, ("db", "t", (1,)))
        site.record_write(2, ("db", "t", (1,)))
        site.record_abort(1)
        site.record_commit(2)
        assert site.conflict_edges() == set()

    def test_ww_edge_direction(self):
        site = SiteHistory("m1")
        site.record_write(3, ("db", "t", (9,)))
        site.record_write(5, ("db", "t", (9,)))
        site.record_commit(3)
        site.record_commit(5)
        assert site.conflict_edges() == {(3, 5)}


class TestGlobalHistory:
    def test_cross_site_cycle_detected(self):
        history = GlobalHistory()
        m1, m2 = history.site("m1"), history.site("m2")
        # The paper's anomaly history.
        m1.record_read(1, ("db", "kv", ("x",)))
        m1.record_write(1, ("db", "kv", ("y",)))
        m1.record_write(2, ("db", "kv", ("x",)))
        m2.record_read(2, ("db", "kv", ("y",)))
        m2.record_write(2, ("db", "kv", ("x",)))
        m2.record_write(1, ("db", "kv", ("y",)))
        m1.record_commit(1)
        m1.record_commit(2)
        m2.record_commit(1)
        m2.record_commit(2)
        ok, cycle = check_one_copy_serializable(history)
        assert not ok
        assert set(cycle) >= {1, 2}

    def test_commit_on_one_site_counts(self):
        history = GlobalHistory()
        m1 = history.site("m1")
        m1.record_write(1, ("db", "t", (1,)))
        m1.record_commit(1)
        assert history.committed_everywhere() == {1}

    def test_serializable_history(self):
        history = GlobalHistory()
        m1, m2 = history.site("m1"), history.site("m2")
        m1.record_write(1, ("db", "t", (1,)))
        m2.record_write(1, ("db", "t", (1,)))
        m1.record_write(2, ("db", "t", (1,)))
        m2.record_write(2, ("db", "t", (1,)))
        for site in (m1, m2):
            site.record_commit(1)
            site.record_commit(2)
        ok, cycle = check_one_copy_serializable(history)
        assert ok and cycle is None


class TestSerializationGraph:
    def test_acyclic(self):
        graph = SerializationGraph([(1, 2), (2, 3)])
        assert graph.is_acyclic()
        assert graph.topological_order() == [1, 2, 3]

    def test_cycle_found(self):
        graph = SerializationGraph([(1, 2), (2, 3), (3, 1)])
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) >= {1, 2, 3}

    def test_self_edge_ignored(self):
        graph = SerializationGraph([(1, 1)])
        assert graph.is_acyclic()

    def test_topological_order_rejects_cycle(self):
        graph = SerializationGraph([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_edge_count(self):
        graph = SerializationGraph([(1, 2), (1, 2), (2, 3)])
        assert graph.edge_count == 2


class TestTimeSeries:
    def test_bucketing(self):
        series = TimeSeries(window=10.0)
        series.add(1.0)
        series.add(5.0)
        series.add(15.0)
        assert series.series() == [(0.0, 2.0), (10.0, 1.0)]

    def test_gaps_filled(self):
        series = TimeSeries(window=10.0)
        series.add(0.0)
        series.add(35.0)
        values = dict(series.series())
        assert values[10.0] == 0.0 and values[20.0] == 0.0

    def test_rate_series(self):
        series = TimeSeries(window=10.0)
        series.add(1.0)
        series.add(2.0)
        assert series.rate_series()[0] == (0.0, 0.2)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            TimeSeries(0)

    def test_until_extends(self):
        series = TimeSeries(window=10.0)
        series.add(5.0)
        assert len(series.series(until=35.0)) == 4


class TestMetricsCollector:
    def test_counters_and_rates(self):
        metrics = MetricsCollector()
        metrics.record_commit("db1", 1.0, response_time=0.5)
        metrics.record_commit("db1", 2.0, response_time=1.5)
        metrics.record_deadlock("db1", 3.0)
        metrics.record_rejection("db2", 4.0)
        metrics.record_other_abort("db1")
        assert metrics.total_committed() == 2
        assert metrics.total_deadlocks() == 1
        assert metrics.total_rejected() == 1
        assert metrics.throughput(10.0) == pytest.approx(0.2)
        assert metrics.db("db1").mean_response_time == pytest.approx(1.0)

    def test_rejected_fraction(self):
        metrics = MetricsCollector()
        for _ in range(9):
            metrics.record_commit("db", 0.0)
        metrics.record_rejection("db", 0.0)
        assert metrics.db("db").rejected_fraction() == pytest.approx(0.1)

    def test_rejected_fraction_empty(self):
        assert MetricsCollector().db("x").rejected_fraction() == 0.0
