"""Simulated unreliable network fabric between cluster endpoints.

Every controller↔machine interaction — statement RPCs, 2PC PREPARE /
COMMIT / abort messages, heartbeats, and the dump/load copy streams of
recovery — crosses this fabric as a message over a directed per-link
channel. Each link has a configurable one-way latency distribution
(mean ± uniform jitter), an independent drop probability, and can be
*cut* (partitioned) and *healed* at runtime. Links deliver in FIFO
order (a later message never overtakes an earlier one on the same
link), matching TCP-like transports; drops and cuts are how messages
are lost, not reordering.

The fabric is deterministic: all randomness comes from one
:class:`~repro.sim.rng.SeededRNG` stream, so a partition experiment
replays exactly for a given seed.

``NetworkConfig.enabled`` gates the whole layer. When disabled
(the default), the cluster controller uses its original direct
submission paths — zero extra simulation events — so every experiment
that predates the fabric behaves identically. Enabling it routes all
messages here and activates per-message timeouts, retries with
exponential backoff, and the heartbeat failure detector's transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.errors import PlatformError
from repro.sim import Simulator
from repro.sim.rng import SeededRNG

#: Well-known fabric endpoints that are not machines.
CONTROLLER = "controller"
BACKUP = "backup"
#: The system controller's endpoint on the cross-colo WAN fabric; colo
#: endpoints are the colo names themselves.
SYSTEM = "system"


class NetworkPartitionedError(PlatformError):
    """A message could not cross the fabric: the link is cut."""


@dataclass
class NetworkConfig:
    """Knobs of the simulated network fabric.

    ``latency_s`` is the *mean one-way* message latency (the historical
    ``MachineConfig.network_latency_s`` round trip moved here); jitter is
    uniform in ``[-jitter_s, +jitter_s]``. ``drop_probability`` applies
    independently to every message on every link. RPC knobs govern the
    controller's per-message timeout and exponential-backoff retries.
    """

    enabled: bool = False
    latency_s: float = 0.0001          # mean one-way latency
    jitter_s: float = 0.0              # uniform +/- jitter on latency
    drop_probability: float = 0.0      # per-message loss rate
    seed: int = 0
    # Per-message RPC timeout and retry policy (controller side).
    rpc_timeout_s: float = 0.5
    rpc_max_retries: int = 4
    rpc_backoff_base_s: float = 0.05   # doubles each retry, plus jitter
    rpc_backoff_max_s: float = 1.0
    # Phase-2 COMMIT messages are idempotent and must eventually land on
    # every surviving participant; they retry harder than ordinary RPCs.
    commit_max_retries: int = 8


@dataclass
class LinkStats:
    """Per-directed-link delivery counters."""

    sent: int = 0
    dropped: int = 0       # random loss
    cut_dropped: int = 0   # lost to a partition


class NetworkFabric:
    """All messages between cluster endpoints flow through here."""

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None,
                 metrics=None, trace=None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.metrics = metrics
        self.trace = trace
        self.rng = SeededRNG(self.config.seed).fork("network-fabric")
        # Directed cuts: (src, dst) pairs that currently drop everything.
        self._cuts: Set[Tuple[str, str]] = set()
        # FIFO clamp: earliest time the next message on a link may arrive.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        self.link_stats: Dict[Tuple[str, str], LinkStats] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- partition control -----------------------------------------------------

    def connected(self, src: str, dst: str) -> bool:
        """True when messages from ``src`` can currently reach ``dst``."""
        return (src, dst) not in self._cuts

    def cut(self, a: str, b: str, symmetric: bool = True) -> None:
        """Cut the link ``a -> b`` (and ``b -> a`` unless asymmetric)."""
        self._cuts.add((a, b))
        if symmetric:
            self._cuts.add((b, a))
        if self.trace is not None:
            self.trace.emit("link_cut", a=a, b=b, symmetric=symmetric)

    def heal(self, a: str, b: str, symmetric: bool = True) -> None:
        """Heal the link ``a -> b`` (and ``b -> a`` unless asymmetric)."""
        self._cuts.discard((a, b))
        if symmetric:
            self._cuts.discard((b, a))
        if self.trace is not None:
            self.trace.emit("link_healed", a=a, b=b, symmetric=symmetric)

    def split(self, groups: Sequence[Sequence[str]]) -> None:
        """Partition the endpoints into isolated groups.

        Every link between endpoints of *different* groups is cut in
        both directions; links within a group are left untouched.
        """
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        self._cuts.add((a, b))
                        self._cuts.add((b, a))
        if self.trace is not None:
            self.trace.emit("net_partition",
                            groups=[sorted(g) for g in groups])

    def heal_all(self) -> None:
        """Remove every cut; the fabric is fully connected again."""
        self._cuts.clear()
        if self.trace is not None:
            self.trace.emit("net_heal_all")

    def cut_links(self) -> List[Tuple[str, str]]:
        """The currently cut directed links (sorted, for reporting)."""
        return sorted(self._cuts)

    # -- message delivery ------------------------------------------------------

    def _stats(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        stats = self.link_stats.get(key)
        if stats is None:
            stats = self.link_stats[key] = LinkStats()
        return stats

    def sample_latency(self) -> float:
        """One-way latency draw: mean ± uniform jitter, never negative."""
        cfg = self.config
        latency = cfg.latency_s
        if cfg.jitter_s > 0:
            latency += self.rng.uniform(-cfg.jitter_s, cfg.jitter_s)
        return max(0.0, latency)

    def deliver(self, src: str, dst: str) -> Generator:
        """Send one message ``src -> dst``; returns True if it arrived.

        The generator consumes the sampled one-way latency in simulated
        time (clamped so deliveries on one link stay FIFO), then reports
        whether the message survived cuts and random loss. A lost
        message still consumes the latency — the sender only learns of
        the loss through its own timeout.
        """
        stats = self._stats(src, dst)
        stats.sent += 1
        if self.metrics is not None:
            self.metrics.record_message_sent()
        latency = self.sample_latency()
        dropped = (self.config.drop_probability > 0
                   and self.rng.random() < self.config.drop_probability)
        key = (src, dst)
        # Reserve the arrival slot at *send* time so a fast later message
        # can never overtake a slow earlier one on the same link.
        sent_at = self.sim.now
        arrival = max(sent_at + latency, self._last_arrival.get(key, 0.0))
        self._last_arrival[key] = arrival
        if arrival > sent_at:
            yield self.sim.timeout(arrival - sent_at)
        if not self.connected(src, dst):
            stats.cut_dropped += 1
            if self.metrics is not None:
                self.metrics.record_message_dropped(cut=True)
            return False
        if dropped:
            stats.dropped += 1
            if self.metrics is not None:
                self.metrics.record_message_dropped(cut=False)
            return False
        if self.metrics is not None:
            self.metrics.record_link_latency(src, dst, arrival - sent_at)
        return True

    def backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with jitter for RPC retry ``attempt``."""
        cfg = self.config
        base = min(cfg.rpc_backoff_max_s,
                   cfg.rpc_backoff_base_s * (2 ** max(0, attempt - 1)))
        # Full jitter: uniform in (0, base]; avoids retry synchronization.
        return base * (0.5 + 0.5 * self.rng.random())

    # -- copy streams (recovery / migration) -----------------------------------

    def copy_gate(self, src: str, dst: str) -> None:
        """Raise unless ``src`` can currently reach ``dst``.

        Copy streams (dump/load) are long-lived bulk transfers rather
        than individual messages; they are gated on connectivity at each
        step instead of being broken into per-page messages.
        """
        if not self.connected(src, dst):
            raise NetworkPartitionedError(
                f"link {src} -> {dst} is cut")

    def transfer(self, src: str, dst: str, seconds: float) -> Generator:
        """A bulk stream ``src -> dst`` taking ``seconds``.

        Partition-checked at both ends of the window: a stream that was
        cut mid-flight fails when it completes (the receiving side never
        sees the tail of the stream).
        """
        self.copy_gate(src, dst)
        if seconds > 0:
            yield self.sim.timeout(seconds + self.sample_latency())
        self.copy_gate(src, dst)
