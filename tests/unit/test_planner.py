"""Unit tests for binding and physical plan selection."""

import pytest

from repro.engine import planner as p
from repro.engine.schema import Column, DatabaseSchema, IndexDef, TableSchema
from repro.engine.sqlparse.parser import parse
from repro.engine.types import SqlType
from repro.errors import SqlError


@pytest.fixture
def db():
    schema = DatabaseSchema("shop")
    item = TableSchema("item", [
        Column("i_id", SqlType.INTEGER, nullable=False),
        Column("i_title", SqlType.VARCHAR),
        Column("i_a_id", SqlType.INTEGER),
        Column("i_cost", SqlType.FLOAT),
    ], primary_key=["i_id"])
    item.add_index(IndexDef("item_a", ("i_a_id",)))
    author = TableSchema("author", [
        Column("a_id", SqlType.INTEGER, nullable=False),
        Column("a_name", SqlType.VARCHAR),
    ], primary_key=["a_id"])
    schema.add_table(item)
    schema.add_table(author)
    return schema


@pytest.fixture
def planner(db):
    return p.Planner(db)


def plan_of(planner, sql):
    return planner.plan_select(parse(sql))


def unwrap(plan):
    """Strip Project/Limit/Sort/Filter wrappers to the access path."""
    while isinstance(plan, (p.Project, p.Limit, p.Sort, p.Filter,
                            p.Distinct, p.Aggregate)):
        plan = plan.child
    return plan


class TestAccessPaths:
    def test_pk_point_lookup_uses_index(self, planner):
        plan = plan_of(planner, "SELECT i_title FROM item WHERE i_id = 7")
        access = unwrap(plan.root)
        assert isinstance(access, p.IndexEqScan)
        assert access.index.name == "__pk__"

    def test_secondary_index_eq(self, planner):
        plan = plan_of(planner, "SELECT i_title FROM item WHERE i_a_id = ?")
        access = unwrap(plan.root)
        assert isinstance(access, p.IndexEqScan)
        assert access.index.name == "item_a"

    def test_range_uses_index(self, planner):
        plan = plan_of(planner, "SELECT i_id FROM item WHERE i_id > 5 AND i_id <= 10")
        access = unwrap(plan.root)
        assert isinstance(access, p.IndexRangeScan)
        assert not access.lo_inclusive and access.hi_inclusive

    def test_no_predicate_seq_scan(self, planner):
        plan = plan_of(planner, "SELECT i_id FROM item")
        assert isinstance(unwrap(plan.root), p.SeqScan)

    def test_unindexed_predicate_filters_seq_scan(self, planner):
        plan = plan_of(planner, "SELECT i_id FROM item WHERE i_cost > 5")
        root = plan.root
        assert isinstance(root, p.Project)
        assert isinstance(root.child, p.Filter)
        assert isinstance(root.child.child, p.SeqScan)

    def test_eq_beats_range(self, planner):
        plan = plan_of(planner,
                       "SELECT i_id FROM item WHERE i_a_id = 1 AND i_id > 5")
        access = unwrap(plan.root)
        assert isinstance(access, p.IndexEqScan)


class TestJoins:
    def test_index_lookup_join(self, planner):
        plan = plan_of(planner,
                       "SELECT i_title, a_name FROM item, author "
                       "WHERE i_a_id = a_id AND i_id = 3")
        join = unwrap(plan.root)
        assert isinstance(join, p.IndexLookupJoin)
        assert isinstance(join.inner, p.IndexEqScan)
        assert join.inner.index.name == "__pk__"

    def test_explicit_join_syntax(self, planner):
        plan = plan_of(planner,
                       "SELECT i_title FROM item JOIN author ON i_a_id = a_id")
        join = unwrap(plan.root)
        assert isinstance(join, p.IndexLookupJoin)

    def test_hash_join_without_inner_index(self, planner):
        # join on a non-indexed inner column
        plan = plan_of(planner,
                       "SELECT a_name FROM author, item WHERE a_name = i_title")
        join = unwrap(plan.root)
        assert isinstance(join, p.HashJoin)

    def test_cross_join_fallback(self, planner):
        plan = plan_of(planner, "SELECT a_name, i_title FROM author, item")
        join = unwrap(plan.root)
        assert isinstance(join, p.CrossJoin)


class TestBinding:
    def test_unknown_column(self, planner):
        with pytest.raises(SqlError, match="unknown column"):
            plan_of(planner, "SELECT nope FROM item")

    def test_unknown_table(self, planner):
        with pytest.raises(Exception):
            plan_of(planner, "SELECT 1 FROM missing")

    def test_ambiguous_column(self, planner, db):
        dup = TableSchema("item2", [Column("i_id", SqlType.INTEGER)])
        db.add_table(dup)
        with pytest.raises(SqlError, match="ambiguous"):
            p.Planner(db).plan_select(
                parse("SELECT i_id FROM item, item2"))

    def test_qualified_resolution(self, planner):
        plan = plan_of(planner, "SELECT i.i_id FROM item i")
        assert plan.column_names == ["i_id"]

    def test_select_star_column_names(self, planner):
        plan = plan_of(planner, "SELECT * FROM author")
        assert plan.column_names == ["a_id", "a_name"]

    def test_duplicate_binding_rejected(self, planner):
        with pytest.raises(SqlError, match="duplicate"):
            plan_of(planner, "SELECT 1 FROM item x, author x")


class TestAggregatesAndOrdering:
    def test_aggregate_plan_layout(self, planner):
        plan = plan_of(planner,
                       "SELECT i_a_id, COUNT(*), AVG(i_cost) FROM item "
                       "GROUP BY i_a_id")
        assert isinstance(plan.root, p.Project)
        agg = plan.root.child
        assert isinstance(agg, p.Aggregate)
        assert len(agg.group_exprs) == 1
        assert [a.func for a in agg.aggs] == ["COUNT", "AVG"]

    def test_order_by_alias(self, planner):
        plan = plan_of(planner,
                       "SELECT i_a_id, COUNT(*) cnt FROM item "
                       "GROUP BY i_a_id ORDER BY cnt DESC")
        assert isinstance(plan.root, p.Project)
        assert isinstance(plan.root.child, p.Sort)

    def test_non_grouped_select_item_rejected(self, planner):
        with pytest.raises(SqlError):
            plan_of(planner,
                    "SELECT i_title, COUNT(*) FROM item GROUP BY i_a_id")


class TestDmlPlans:
    def test_update_point_plan(self, planner):
        plan = planner.plan_update(
            parse("UPDATE item SET i_cost = 5 WHERE i_id = 2"))
        assert isinstance(plan, p.UpdatePlan)
        assert isinstance(plan.source, p.IndexEqScan)
        assert plan.source.lock_exclusive

    def test_update_scan_is_exclusive(self, planner):
        plan = planner.plan_update(parse("UPDATE item SET i_cost = 5"))
        assert isinstance(plan.source, p.SeqScan)
        assert plan.source.lock_exclusive

    def test_delete_plan(self, planner):
        plan = planner.plan_delete(parse("DELETE FROM item WHERE i_a_id = 1"))
        assert isinstance(plan, p.DeletePlan)
        assert plan.source.lock_exclusive

    def test_insert_fills_missing_columns_with_null(self, planner):
        plan = planner.plan_insert(
            parse("INSERT INTO item (i_id, i_title) VALUES (1, 'x')"))
        assert len(plan.rows[0]) == 4  # full row width

    def test_insert_arity_mismatch(self, planner):
        with pytest.raises(SqlError):
            planner.plan_insert(parse("INSERT INTO item (i_id) VALUES (1, 2)"))

    def test_insert_column_exprs_must_be_constant(self, planner):
        with pytest.raises(SqlError):
            planner.plan_insert(
                parse("INSERT INTO item (i_id) VALUES (i_cost)"))
