"""Property-based tests for the lock manager's safety invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.locks import LockManager, LockMode, compatible
from repro.errors import DeadlockError

txn_ids = st.integers(min_value=1, max_value=6)
resources = st.sampled_from([("row", "db", "t", i) for i in range(4)]
                            + [("tbl", "db", "t")])
modes = st.sampled_from(list(LockMode))


class Action:
    pass


actions = st.one_of(
    st.tuples(st.just("acquire"), txn_ids, resources, modes),
    st.tuples(st.just("release"), txn_ids),
    st.tuples(st.just("release_shared"), txn_ids),
)


def check_lock_table_invariants(manager: LockManager):
    """Core safety: holders pairwise compatible; no granted duplicates."""
    for resource, table in manager._tables.items():
        holders = list(table.holders.items())
        for i, (txn_a, mode_a) in enumerate(holders):
            for txn_b, mode_b in holders[i + 1:]:
                assert compatible(mode_a, mode_b) or \
                    compatible(mode_b, mode_a), (
                        f"incompatible co-holders on {resource}: "
                        f"{txn_a}:{mode_a} vs {txn_b}:{mode_b}")
        for request in table.queue:
            assert not request.granted
            assert request.error is None
        # A queued head must actually be blocked by someone.
        if table.queue:
            head = table.queue[0]
            blocked = any(
                not compatible(mode, head.mode)
                for txn, mode in table.holders.items()
                if txn != head.txn_id)
            assert blocked, f"head of queue on {resource} is not blocked"


@settings(max_examples=150, deadline=None)
@given(st.lists(actions, max_size=60))
def test_lock_manager_invariants_hold(sequence):
    manager = LockManager()
    # A transaction with a pending request may not issue another acquire;
    # track that to drive the API legally.
    pending = set()
    for action in sequence:
        if action[0] == "acquire":
            _, txn, resource, mode = action
            if txn in pending:
                continue
            try:
                request = manager.acquire(txn, resource, mode)
            except DeadlockError:
                # Victim aborts: release everything it holds.
                manager.release_all(txn)
                pending.discard(txn)
            else:
                if not request.granted:
                    pending.add(txn)
                    request.on_grant.append(
                        lambda r: pending.discard(r.txn_id))
                    request.on_fail.append(
                        lambda r: pending.discard(r.txn_id))
        elif action[0] == "release":
            manager.release_all(action[1])
            pending.discard(action[1])
        else:
            if action[1] not in pending:
                manager.release_shared(action[1])
        check_lock_table_invariants(manager)

    # Drain: releasing everyone must leave the manager empty.
    for txn in range(1, 7):
        manager.release_all(txn)
    assert not manager._tables
    assert not manager._waiting


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(txn_ids, resources), min_size=2, max_size=30))
def test_exclusive_acquires_never_coexist(pairs):
    """Two different txns never both hold X on one resource."""
    manager = LockManager()
    for txn, resource in pairs:
        if manager.waiting_request(txn) is not None:
            continue
        try:
            manager.acquire(txn, resource, LockMode.X)
        except DeadlockError:
            manager.release_all(txn)
        holders_by_resource = {}
        for owner in range(1, 7):
            for res, mode in manager.held(owner).items():
                if mode is LockMode.X:
                    assert res not in holders_by_resource, (
                        f"double X on {res}")
                    holders_by_resource[res] = owner
