"""Ablation — distributed deadlock resolution: timeout vs global detector.

The paper notes that Options 2/3 with a conservative controller can
produce "a distributed deadlock" (Section 3.1). Two resolution
strategies exist in this implementation:

* the baseline **lock-wait timeout** (what the benchmarks use), and
* the **global waits-for detector** — transaction ids are global, so the
  cluster controller can union every machine's waits-for graph and abort
  the youngest transaction in any cycle.

This ablation measures the victim's resolution latency and the wasted
blocked time under both, on the canonical cross-machine T1/T2 cycle.
"""

import pytest

from repro.cluster import (ClusterConfig, ClusterController,
                           DistributedDeadlockDetector, ReadOption,
                           WritePolicy)
from repro.cluster.controller import TransactionAborted
from repro.harness import format_table
from repro.sim import Simulator

from common import report

TIMEOUT_S = 5.0


def run_scenario(detector_period=None):
    sim = Simulator()
    config = ClusterConfig(read_option=ReadOption.OPTION_2,
                           write_policy=WritePolicy.CONSERVATIVE,
                           lock_wait_timeout_s=TIMEOUT_S)
    controller = ClusterController(sim, config)
    controller.add_machines(2)
    controller.create_database(
        "db", ["CREATE TABLE kv (k VARCHAR(4) PRIMARY KEY, v INTEGER)"],
        replicas=2)
    controller.bulk_load("db", "kv", [("x", 0), ("y", 0)])
    if detector_period is not None:
        DistributedDeadlockDetector(controller,
                                    period_s=detector_period).start()
    outcomes = []

    def txn(name, read_key, write_key):
        conn = controller.connect("db")
        try:
            yield conn.execute("SELECT v FROM kv WHERE k = ?", (read_key,))
            yield conn.execute("UPDATE kv SET v = 1 WHERE k = ?",
                               (write_key,))
            yield conn.commit()
            outcomes.append((name, "committed", sim.now))
        except TransactionAborted:
            outcomes.append((name, "aborted", sim.now))

    sim.process(txn("T1", "x", "y"))
    sim.process(txn("T2", "y", "x"))
    # Bounded: the detector's periodic sweep keeps the schedule alive.
    sim.run(until=4 * TIMEOUT_S)
    resolution = max(t for _, _, t in outcomes)
    committed = sum(1 for _, verdict, _ in outcomes if verdict == "committed")
    return resolution, committed


def run_ablation():
    rows = []
    data = {}
    for label, period in (("lock-wait timeout (5 s)", None),
                          ("global detector, 500 ms sweep", 0.5),
                          ("global detector, 100 ms sweep", 0.1)):
        resolution, committed = run_scenario(period)
        rows.append([label, resolution, committed])
        data[label] = (resolution, committed)
    text = format_table(
        ["resolution strategy", "resolution latency (s)",
         "txns committed (of 2)"], rows)
    return text, data


@pytest.mark.benchmark(group="ablation-deadlock-resolution")
def test_ablation_deadlock_resolution(benchmark, capsys):
    text, data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_deadlock_resolution", text, capsys)
    timeout_latency, timeout_committed = data["lock-wait timeout (5 s)"]
    fast_latency, fast_committed = data["global detector, 100 ms sweep"]
    # The timeout path burns its full timeout; the detector resolves in
    # about one sweep, and saves the non-victim transaction.
    assert timeout_latency >= TIMEOUT_S
    assert fast_latency < 0.5
    assert fast_committed == 1
