"""Structured cluster event tracing (the observability layer).

The cluster controller, machines, recovery, migration, and the process
pair all emit typed, sim-time-stamped :class:`TraceEvent` records into a
shared ring-buffered :class:`Tracer`. The trace is the ground truth the
2PC invariant checker (:mod:`repro.analysis.invariants`) audits, and is
exportable as JSONL (``python -m repro.harness <experiment> --trace``).

Event taxonomy (the ``kind`` field):

================== ==========================================================
kind               emitted when
================== ==========================================================
trace_meta         tracer attached; carries policy/replication configuration
txn_begin          a connection opens a new transaction
write_issued       a write statement is fanned out to one replica
write_acked        that replica finished the write
write_failed       that replica's write errored (``error`` names the type)
poisoned           an aggressive-mode background write failure was recorded
prepare            2PC phase 1 succeeded on one participant
prepare_failed     2PC phase 1 errored on one participant
fanout_start       a coordinator broadcast was issued (``label`` names the
                   phase, ``width`` the branch count, ``parallel`` the mode)
fanout_done        every gathered branch of that broadcast settled
                   (``elapsed`` is the scatter-to-gather span)
decision_logged    the coordinator decided commit (after mirroring to the
                   process-pair backup when one is attached)
commit_sent        a COMMIT message left the coordinator for one machine
committed          the transaction finished committing
decision_cleared   the backup's mirrored decision was retired
abort              the transaction was rolled back by the platform
rollback           the client voluntarily rolled back
machine_failed     a machine died (``affected`` lists databases that lost
                   a replica)
copy_abandoned     a live copy lost its source or target to a failure
rereplication_*    queued / start / done / abandoned / skipped, from the
                   recovery manager
delta_snapshot     a log-structured copy pinned the commit log at the
                   dump's snapshot instant (``lsn``)
delta_drain_start  the delta handoff began rejecting writes (drain)
delta_handoff      the delta replay converged (``reject_s`` window)
machine_catchup_*  start / done / failed, per database, of a declared
                   machine rejoining with data via delta catch-up
migration_*        start / done / abandoned, from the migration manager
takeover*          process-pair takeover and its per-transaction outcomes
machine_crashed    a machine powered off silently (detector must notice)
machine_suspected  K consecutive heartbeats went unanswered
machine_unsuspected a suspected machine answered again (false suspicion)
machine_declared   the detector declared a silent machine dead
machine_fenced     a declared machine was fenced (serves nothing stale)
machine_readmitted a falsely declared machine rejoined (``mode`` is
                   "spare" for a blank wipe, "catchup" for a delta
                   rejoin from its last durable LSN)
machine_repaired   a failed machine was repaired into a blank spare
link_cut/healed    one fabric link was cut / healed by fault injection
net_partition      the fabric was split into disconnected groups
net_heal_all       every cut fabric link was healed
primary_crashed    the acting primary controller crashed (process pair)
ctl_election_start a consensus controller replica started a leader campaign
                   (``term`` it is campaigning for)
ctl_leader_elected a campaign won its quorum (``term``, ``lease_until``)
ctl_lease_renewed  a leader's lease was extended by a renewal quorum
                   (``term``, new ``lease_until``)
ctl_stepdown       a leader stopped leading (``term``, ``reason``)
ctl_applied        a replica applied log entry ``index`` (``command`` kind,
                   ``digest`` of the command) to its state machine
ctl_takeover       a newly elected leader finished take-over cleanup
                   (``term``, ``previous`` leader, ``completed``/``aborted``
                   transaction counts)
ctl_crashed        a consensus controller replica was fail-stopped
ctl_repaired       a crashed consensus replica rejoined as a follower
txn_orphaned       an in-flight transaction straddled a controller
                   leadership change and was cleaned up by take-over
                   (``term`` it began in, ``current_term``)
dr_protect         a database was placed under cross-colo protection
                   (``primary``/``standby`` colos, ``base_seq`` of the log)
dr_ship            one committed transaction was sequenced into a database's
                   replication log (``rseq`` is the per-link sequence number)
dr_apply           the standby colo applied log entry ``rseq``
dr_drop            a log entry was dropped instead of applied (standby gone
                   or the apply retry budget was exhausted)
dr_link_torn       a replication link was torn down (colo failure or
                   database deregistration)
colo_crashed       a colo went silent (only the detector can notice)
colo_failed        a colo was failed through the oracle path
colo_suspected     K consecutive colo heartbeats went unanswered
colo_unsuspected   a suspected colo answered again (false suspicion)
colo_declared      the system controller declared a silent colo dead
colo_fenced        a declared colo was fenced under a new ``epoch``
colo_repaired      a colo was wiped and rejoined as a blank standby target
dr_promote         a standby colo was promoted to primary for a database
                   (``epoch``, ``rpo_commits`` = acked commits lost)
dr_rto             first successful statement on the promoted primary
                   (``seconds`` since the declare)
dr_reprotect_start snapshot copy toward a fresh standby began
dr_reprotect_done  the fresh standby finished catch-up and is in service
dr_failback        the fresh standby landed on a previously failed colo
admission_reject   a new transaction was turned away at the door: its
                   tenant's token bucket was empty (``rate`` is the
                   provisioned admission rate in tps)
shed_read          a read spilled off an over-watermark replica to the
                   least-loaded one (``machine`` serves it, ``load`` its
                   in-flight count at the choice)
sla_window         one SLA-monitor observation window for one database
                   (``offered_tps``, ``finished``, ``rejected`` =
                   admission rejections, ``bound``, ``within_rate``)
sla_breach         a window's admission-rejected fraction exceeded the
                   tenant's ``max_rejected_fraction`` (``fraction``,
                   ``bound``, ``within_rate``)
================== ==========================================================

Adding an event: call ``tracer.emit(kind, db=..., txn=..., machine=...,
**extra)`` at the site; unknown kinds are accepted (the taxonomy above is
the audited core set, listed in :data:`EVENT_KINDS`). If the checker
should understand it, teach :mod:`repro.analysis.invariants` the kind.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    TextIO, Union)

#: The documented core event kinds (informational; ``emit`` accepts any).
EVENT_KINDS = frozenset({
    "trace_meta",
    "txn_begin",
    "write_issued", "write_acked", "write_failed", "poisoned",
    "fanout_start", "fanout_done",
    "prepare", "prepare_failed",
    "decision_logged", "commit_sent", "committed", "decision_cleared",
    "abort", "rollback",
    "machine_failed", "copy_abandoned",
    "rereplication_queued", "rereplication_start", "rereplication_done",
    "rereplication_abandoned", "rereplication_skipped",
    "delta_snapshot", "delta_drain_start", "delta_handoff",
    "machine_catchup_start", "machine_catchup_done",
    "machine_catchup_failed",
    "migration_start", "migration_done", "migration_abandoned",
    "takeover", "takeover_commit", "takeover_abort",
    "machine_crashed", "machine_suspected", "machine_unsuspected",
    "machine_declared", "machine_fenced", "machine_readmitted",
    "machine_repaired",
    "link_cut", "link_healed", "net_partition", "net_heal_all",
    "primary_crashed",
    "ctl_election_start", "ctl_leader_elected", "ctl_lease_renewed",
    "ctl_stepdown", "ctl_applied", "ctl_takeover", "ctl_crashed",
    "ctl_repaired", "txn_orphaned",
    "dr_protect", "dr_ship", "dr_apply", "dr_drop", "dr_link_torn",
    "colo_crashed", "colo_failed", "colo_suspected", "colo_unsuspected",
    "colo_declared", "colo_fenced", "colo_repaired",
    "dr_promote", "dr_rto", "dr_reprotect_start", "dr_reprotect_done",
    "dr_failback",
    "admission_reject", "shed_read", "sla_window", "sla_breach",
})


@dataclass
class TraceEvent:
    """One sim-time-stamped occurrence in the cluster.

    ``seq`` is a tracer-assigned monotone counter: events emitted at the
    same simulated time keep their emission order under ``(t, seq)``.
    """

    seq: int
    t: float
    kind: str
    db: Optional[str] = None
    txn: Optional[int] = None
    machine: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"seq": self.seq, "t": self.t,
                                  "kind": self.kind}
        if self.db is not None:
            record["db"] = self.db
        if self.txn is not None:
            record["txn"] = self.txn
        if self.machine is not None:
            record["machine"] = self.machine
        if self.extra:
            record["extra"] = self.extra
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(seq=record["seq"], t=record["t"], kind=record["kind"],
                   db=record.get("db"), txn=record.get("txn"),
                   machine=record.get("machine"),
                   extra=dict(record.get("extra", {})))


class LatencyHistogram:
    """Exact-percentile latency accumulator for one phase.

    Simulated runs produce at most a few hundred thousand samples, so we
    keep them all and sort on demand (cached until the next observation).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return (sum(self._samples) / len(self._samples)
                if self._samples else 0.0)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(1, int(round(p / 100.0 * len(self._sorted) + 0.5)))
        return self._sorted[min(rank, len(self._sorted)) - 1]

    def window_percentile(self, p: float, start: int = 0,
                          end: Optional[int] = None) -> float:
        """Nearest-rank percentile over the samples observed between
        positions ``start`` and ``end`` (in observation order) — lets a
        caller snapshot :attr:`count` at a phase boundary and compare a
        baseline window against a later stress window."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        window = self._samples[start:end]
        if not window:
            return 0.0
        window.sort()
        rank = max(1, int(round(p / 100.0 * len(window) + 0.5)))
        return window[min(rank, len(window)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        return {"count": float(self.count), "mean": self.mean,
                "p50": self.p50, "p95": self.p95, "p99": self.p99}


class Tracer:
    """Ring-buffered event trace shared by one cluster's components.

    The buffer holds the most recent ``capacity`` events; older ones are
    dropped (counted in :attr:`dropped`) so long soaks cannot exhaust
    memory. The invariant checker weakens cross-event rules when a trace
    is truncated.
    """

    def __init__(self, capacity: int = 65536,
                 clock: Optional[Callable[[], float]] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self.clock = clock or (lambda: 0.0)
        self._events: List[TraceEvent] = []
        self._start = 0          # ring head index into _events
        self._seq = itertools.count()
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def emit(self, kind: str, db: Optional[str] = None,
             txn: Optional[int] = None, machine: Optional[str] = None,
             **extra: Any) -> TraceEvent:
        event = TraceEvent(seq=next(self._seq), t=self.clock(), kind=kind,
                           db=db, txn=txn, machine=machine, extra=extra)
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            # Overwrite the oldest slot; the ring never reallocates.
            self._events[self._start] = event
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1
        return event

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def events(self, kind: Optional[str] = None, db: Optional[str] = None,
               txn: Optional[int] = None,
               machine: Optional[str] = None) -> List[TraceEvent]:
        """Events in emission order, optionally filtered."""
        ordered = (self._events[self._start:] + self._events[:self._start]
                   if self.dropped else list(self._events))
        return [e for e in ordered
                if (kind is None or e.kind == kind)
                and (db is None or e.db == db)
                and (txn is None or e.txn == txn)
                and (machine is None or e.machine == machine)]

    def phase_latencies(self) -> Dict[str, LatencyHistogram]:
        """Per-phase latency histograms derived from the event stream.

        Phases: ``write`` (write_issued -> acked, per machine),
        ``prepare`` (first prepare/prepare_failed -> decision_logged) and
        ``commit`` (decision_logged -> committed), per transaction.
        """
        write_issue: Dict[tuple, List[float]] = {}
        first_prepare: Dict[int, float] = {}
        decision_at: Dict[int, float] = {}
        out = {"write": LatencyHistogram(), "prepare": LatencyHistogram(),
               "commit": LatencyHistogram()}
        for e in self.events():
            if e.kind == "write_issued":
                write_issue.setdefault((e.txn, e.machine), []).append(e.t)
            elif e.kind == "write_acked":
                queue = write_issue.get((e.txn, e.machine))
                if queue:
                    out["write"].observe(e.t - queue.pop(0))
            elif e.kind in ("prepare", "prepare_failed"):
                first_prepare.setdefault(e.txn, e.t)
            elif e.kind == "decision_logged":
                decision_at[e.txn] = e.t
                if e.txn in first_prepare:
                    out["prepare"].observe(e.t - first_prepare[e.txn])
            elif e.kind == "committed" and e.txn in decision_at:
                out["commit"].observe(e.t - decision_at[e.txn])
        return out

    # -- JSONL export / import -------------------------------------------------

    def dump_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write the trace as JSON Lines; returns the event count.

        The first line is a ``trace_dump`` header carrying the ring's
        capacity and dropped-event count, so consumers of a truncated
        trace know it is truncated.
        """
        events = self.events()
        header = {"kind": "trace_dump", "events": len(events),
                  "capacity": self.capacity, "dropped": self.dropped}

        def write_all(fh: TextIO) -> None:
            fh.write(json.dumps(header) + "\n")
            for event in events:
                fh.write(json.dumps(event.to_dict()) + "\n")

        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                write_all(fh)
        else:
            write_all(target)
        return len(events)


def load_jsonl(source: Union[str, TextIO, Iterable[str]]
               ) -> tuple:
    """Read a trace dump; returns ``(events, dropped_count)``."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: List[TraceEvent] = []
    dropped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("kind") == "trace_dump":
            dropped = int(record.get("dropped", 0))
            continue
        events.append(TraceEvent.from_dict(record))
    events.sort(key=lambda e: (e.t, e.seq))
    return events, dropped
