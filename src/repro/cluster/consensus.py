"""Consensus-replicated control plane: multi-Paxos with leader leases.

The cluster controller's metadata — replica maps, database DDL events,
machine liveness verdicts, recovery placements, and the 2PC
commit-decision mirror — is a small, explicit state machine. This
module replicates it across a group of controller replicas with
multi-Paxos in the style of ScalienDB's master-lease design: one
replicated log of typed commands, applied deterministically on every
replica, with leader election via Paxos prepare rounds and
*time-bounded leader leases* in place of the process pair's fence flag.

Lease rule (the safety core). An acceptor that PROMISEs a ballot to a
candidate, or acks a lease RENEW, grants that node a lease of
``lease_duration_s`` measured on its *own* clock, and refuses to
promise any other node while the grant is unexpired. The leader derives
its own lease conservatively from the *send* time of the request, so
its view always expires no later than any grant it received:

    leader lease  = sent_at        + lease_duration
    acceptor hold = receive_time   + lease_duration  (>= leader lease)

A new leader needs a majority of promises, and any majority intersects
the old leader's grant majority, so no candidate can be elected until
at least one of the old grants — and therefore the old leader's own
lease view — has expired. Leases never overlap: at most one node can
believe it holds a valid lease at any instant, which is exactly the
fencing property the process pair approximated with heartbeats. A
deposed or partitioned leader stops acting not because someone told it
to, but because its own clock ran out.

All messages travel through the shared :class:`NetworkFabric`, so the
seeded drop/latency/partition machinery applies to controller traffic
exactly as it does to 2PC. A pluggable transport lets property tests
substitute seeded message drop, duplication, and reordering.

Everything here is gated behind ``ClusterConfig.consensus_enabled``;
with the flag off (the default) the process pair remains the reference
implementation and nothing in this module runs.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ControllerFailedError, NotLeaderError
from repro.sim import Interrupt, SeededRNG, Simulator

Ballot = Tuple[int, int]  # (round, node_id), compared lexicographically
Command = Tuple[str, Dict[str, Any]]

NO_BALLOT: Ballot = (0, -1)


def ballot_term(ballot: Ballot, n_nodes: int) -> int:
    """Map a ballot to a unique, strictly increasing integer term."""
    rnd, node_id = ballot
    return (rnd - 1) * n_nodes + node_id + 1


def command_digest(kind: str, payload: Dict[str, Any]) -> str:
    """Stable digest of a command for cross-replica log agreement audits."""
    blob = json.dumps([kind, payload], sort_keys=True, default=sorted)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


@dataclass
class ConsensusConfig:
    """Tuning for the replicated controller group."""

    replicas: int = 3
    lease_duration_s: float = 2.0
    renew_interval_s: float = 0.5
    tick_s: float = 0.1
    election_jitter_s: float = 0.5
    election_timeout_s: float = 1.5
    accept_retry_s: float = 0.3
    propose_timeout_s: float = 6.0
    learn_batch: int = 64
    seed: int = 0


class ControllerState:
    """The replicated controller metadata, rebuilt by replaying the log.

    Command taxonomy (see DESIGN §4i):

    ``leader_takeover``    new leader announces its term through the log
    ``db_create/db_drop``  database lifecycle with initial placement
    ``replica_add``        a machine gained a caught-up replica
    ``machine_removed``    hard failure: replicas dropped from the map
    ``machine_declared``   heartbeat verdict: dead + fenced
    ``machine_readmitted`` a suspect proved alive and rejoined
    ``machine_repaired``   operator repair completed
    ``placement``          recovery chose a re-replication target
    ``decision``           2PC commit decision (the ProcessPairBackup
                           mirror, now quorum-replicated)
    ``decision_clear``     all participants acked COMMIT
    ``reconcile``          new leader's authoritative metadata snapshot
    ``noop``               gap filler from leader change-over
    """

    def __init__(self) -> None:
        self.term = 0
        self.leader: Optional[str] = None
        self.replicas: Dict[str, List[str]] = {}
        self.declared_dead: Set[str] = set()
        self.fenced: Set[str] = set()
        self.placements: Dict[str, str] = {}
        self.decisions: Dict[int, Tuple[str, List[str]]] = {}

    def _drop_machine(self, name: str) -> None:
        for hosts in self.replicas.values():
            if name in hosts:
                hosts.remove(name)

    def apply(self, kind: str, payload: Dict[str, Any]) -> None:
        """Apply one command. Must be deterministic and non-mutating of
        the payload — every replica replays the identical log."""
        if kind == "noop":
            return
        elif kind == "leader_takeover":
            self.term = payload["term"]
            self.leader = payload["node"]
        elif kind == "db_create":
            self.replicas[payload["db"]] = list(payload["machines"])
        elif kind == "db_drop":
            self.replicas.pop(payload["db"], None)
            self.placements.pop(payload["db"], None)
        elif kind == "replica_add":
            hosts = self.replicas.setdefault(payload["db"], [])
            if payload["machine"] not in hosts:
                hosts.append(payload["machine"])
        elif kind == "machine_removed":
            self._drop_machine(payload["machine"])
        elif kind == "machine_declared":
            self._drop_machine(payload["machine"])
            self.declared_dead.add(payload["machine"])
            self.fenced.add(payload["machine"])
        elif kind in ("machine_readmitted", "machine_repaired"):
            self.declared_dead.discard(payload["machine"])
            self.fenced.discard(payload["machine"])
        elif kind == "placement":
            self.placements[payload["db"]] = payload["target"]
        elif kind == "decision":
            self.decisions[payload["txn"]] = (
                payload["decision"], list(payload["machines"]))
        elif kind == "decision_clear":
            self.decisions.pop(payload["txn"], None)
        elif kind == "reconcile":
            self.replicas = {db: list(hosts) for db, hosts
                             in payload["replicas"].items()}
            self.declared_dead = set(payload["declared_dead"])
            self.fenced = set(payload["fenced"])
        else:
            raise ValueError(f"unknown controller command {kind!r}")


@dataclass
class _Pending:
    """A log slot this leader is driving toward a quorum."""

    cmd: Command
    done: Any  # Event; succeeds with the index, fails on deposition
    acks: Set[str] = field(default_factory=set)
    last_sent: float = 0.0


@dataclass
class _Campaign:
    """An in-flight prepare round."""

    ballot: Ballot
    started_at: float
    grants: Set[str] = field(default_factory=set)
    nacks: int = 0
    accepted: Dict[int, Tuple[Ballot, Command]] = field(default_factory=dict)
    chosen: Dict[int, Command] = field(default_factory=dict)
    max_index: int = 0
    won: bool = False


class PaxosNode:
    """One controller replica: acceptor state plus (maybe) leader state."""

    def __init__(self, name: str, node_id: int):
        self.name = name
        self.node_id = node_id
        self.alive = True
        # Durable acceptor/learner state — survives crash/repair.
        self.promised: Ballot = NO_BALLOT
        self.accepted: Dict[int, Tuple[Ballot, Command]] = {}
        self.chosen: Dict[int, Command] = {}
        self.applied_to = 0
        self.state = ControllerState()
        self.lease_holder: Optional[str] = None
        self.lease_until = 0.0
        # Volatile state — reset by a crash.
        self.inbox: deque = deque()
        self.wake = None
        self.round_hint = 0
        self.is_leader = False
        self.ballot: Ballot = NO_BALLOT
        self.leader_term = 0
        self.own_lease_until = 0.0
        self.next_index = 1
        self.pending: Dict[int, _Pending] = {}
        self.campaign: Optional[_Campaign] = None
        self.next_campaign_at = 0.0
        self.last_renew_at = 0.0
        self.renew_seq = 0
        self.renew_grants: Dict[int, Tuple[float, Set[str]]] = {}
        self.next_learn_at = 0.0
        self.procs: List[Any] = []


class FabricTransport:
    """Delivers consensus messages through the shared NetworkFabric so
    seeded drops, latency, and partitions apply to controller traffic."""

    def __init__(self, sim: Simulator, fabric):
        self.sim = sim
        self.fabric = fabric

    def send(self, group: "PaxosGroup", src: str, dst: str,
             msg: Dict[str, Any]) -> None:
        proc = self.sim.process(self._deliver(group, src, dst, msg),
                                name=f"ctl:{src}->{dst}:{msg['type']}")
        proc.defused = True

    def _deliver(self, group, src, dst, msg):
        delivered = yield from self.fabric.deliver(src, dst)
        if delivered:
            group.enqueue(dst, msg)


class PaxosGroup:
    """A multi-Paxos group with leader leases over a message transport.

    ``on_leader(node, term)`` fires when a newly elected leader *applies*
    its own ``leader_takeover`` command — i.e. once the new term is
    committed in the log, not merely when the election quorum arrives.
    """

    def __init__(self, sim: Simulator, names: List[str],
                 config: Optional[ConsensusConfig] = None,
                 fabric=None, transport=None, trace=None, metrics=None,
                 on_leader: Optional[Callable] = None):
        self.sim = sim
        self.config = config or ConsensusConfig()
        self.names = list(names)
        if len(self.names) < 3:
            raise ValueError("a consensus group needs at least 3 replicas")
        self.nodes = {name: PaxosNode(name, i)
                      for i, name in enumerate(self.names)}
        self.majority = len(self.names) // 2 + 1
        if transport is None:
            if fabric is None:
                raise ValueError("need a fabric or an explicit transport")
            transport = FabricTransport(sim, fabric)
        self.transport = transport
        self.trace = trace
        self.metrics = metrics
        self.on_leader = on_leader
        base = SeededRNG(self.config.seed)
        self._rngs = {name: base.fork(f"ctl:{name}") for name in self.names}
        self.last_leader: Optional[str] = None
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self, bootstrap: Optional[int] = 0) -> None:
        """Spawn every replica's loops; optionally campaign immediately
        from ``names[bootstrap]`` so the group has a leader at t~=0."""
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.next_campaign_at = (node.node_id + 1) * self._jitter(node)
            self._spawn(node)
        if bootstrap is not None:
            self._start_campaign(self.nodes[self.names[bootstrap]])

    def _spawn(self, node: PaxosNode) -> None:
        loops = [("msg", self._msg_loop(node)),
                 ("timer", self._timer_loop(node))]
        for label, gen in loops:
            proc = self.sim.process(gen, name=f"{node.name}:{label}")
            proc.defused = True
            node.procs.append(proc)

    def crash(self, name: str) -> None:
        """Fail-stop a replica. Durable acceptor state (promises,
        accepted/chosen entries, the applied state machine) survives;
        leadership, campaigns, and queued messages do not."""
        node = self.nodes[name]
        if not node.alive:
            return
        node.alive = False
        node.inbox.clear()
        node.wake = None
        node.is_leader = False
        node.campaign = None
        node.renew_grants.clear()
        for pend in node.pending.values():
            if not pend.done.triggered:
                pend.done.fail(NotLeaderError(f"{name} crashed"))
        node.pending.clear()
        for proc in node.procs:
            if proc.is_alive:
                proc.interrupt("controller crash")
        node.procs = []

    def repair(self, name: str) -> None:
        """Restart a crashed replica as a follower."""
        node = self.nodes[name]
        if node.alive:
            return
        node.alive = True
        node.next_campaign_at = self.sim.now + self._jitter(node)
        node.next_learn_at = 0.0
        self._spawn(node)

    def leader(self) -> Optional[PaxosNode]:
        for node in self.nodes.values():
            if node.alive and node.is_leader:
                return node
        return None

    # -- client interface ------------------------------------------------------

    def propose(self, node: PaxosNode, cmd: Command,
                timeout_s: Optional[float] = None):
        """Replicate one command from ``node`` (which must be leader).

        Generator: yields until the command is chosen, then returns its
        log index. Raises :class:`NotLeaderError` if the node is not (or
        ceases to be) the leader, or if the quorum cannot be reached
        before the deadline. On deadline the slot stays pending — the
        retransmit timer keeps driving it, so the log cannot develop a
        permanent hole from an impatient proposer.
        """
        if not node.alive:
            raise NotLeaderError(f"{node.name} is down",
                                 leader=self.last_leader)
        if not node.is_leader:
            raise NotLeaderError(f"{node.name} is not the leader",
                                 leader=self.last_leader)
        index = node.next_index
        node.next_index += 1
        pend = self._propose_at(node, index, cmd)
        deadline = self.sim.now + (timeout_s if timeout_s is not None
                                   else self.config.propose_timeout_s)
        while not pend.done.triggered:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise NotLeaderError(
                    f"{node.name}: proposal {cmd[0]!r} timed out")
            yield self.sim.any_of([
                pend.done,
                self.sim.timeout(min(remaining, self.config.accept_retry_s)),
            ])
        if pend.done.ok:
            return pend.done.value
        raise pend.done.value

    def enqueue(self, dst: str, msg: Dict[str, Any]) -> None:
        """Transport callback: hand a delivered message to a replica."""
        node = self.nodes[dst]
        if not node.alive:
            return
        node.inbox.append(msg)
        if node.wake is not None and not node.wake.triggered:
            node.wake.succeed()

    # -- loops -----------------------------------------------------------------

    def _msg_loop(self, node: PaxosNode):
        try:
            while node.alive:
                while node.inbox:
                    self._dispatch(node, node.inbox.popleft())
                node.wake = self.sim.event()
                yield node.wake
        except Interrupt:
            return

    def _timer_loop(self, node: PaxosNode):
        cfg = self.config
        try:
            while node.alive:
                yield self.sim.timeout(cfg.tick_s)
                now = self.sim.now
                if node.is_leader:
                    if now >= node.own_lease_until + cfg.lease_duration_s:
                        # A full grace lease has passed without a renewal
                        # quorum: the majority has moved on (or is gone).
                        # Abdicate instead of lingering as a zombie —
                        # lease_valid() already went False long ago.
                        self._step_down(node, "lease expired unrenewed")
                        continue
                    if now - node.last_renew_at >= cfg.renew_interval_s:
                        self._send_renewals(node)
                    self._retransmit(node)
                elif node.campaign is not None:
                    if now - node.campaign.started_at >= cfg.election_timeout_s:
                        node.campaign = None
                        # Back off past our own self-granted lease with
                        # FRESH jitter. The self-grant expires a fixed
                        # lease_duration after the campaign began, so
                        # without the jitter term every failed candidate
                        # retries on an identical 1/lease_duration cycle
                        # and rival candidacies phase-lock forever. The
                        # max() also keeps any nack-reported rival lease
                        # backoff intact.
                        node.next_campaign_at = max(
                            node.next_campaign_at,
                            node.lease_until + self._jitter(node),
                            now + self._jitter(node))
                elif now >= node.lease_until and now >= node.next_campaign_at:
                    self._start_campaign(node)
        except Interrupt:
            return

    def _retransmit(self, node: PaxosNode) -> None:
        now = self.sim.now
        for index in sorted(node.pending):
            if now - node.pending[index].last_sent >= self.config.accept_retry_s:
                self._broadcast_accept(node, index)

    def _jitter(self, node: PaxosNode) -> float:
        return self._rngs[node.name].uniform(self.config.tick_s,
                                             self.config.election_jitter_s)

    # -- messaging -------------------------------------------------------------

    def _send(self, node: PaxosNode, dst: str, msg: Dict[str, Any]) -> None:
        msg = dict(msg, frm=node.name)
        if dst == node.name:
            # A replica is always connected to itself: no fabric hop.
            self._dispatch(node, msg)
        else:
            self.transport.send(self, node.name, dst, msg)

    def _broadcast(self, node: PaxosNode, msg: Dict[str, Any],
                   include_self: bool = True) -> None:
        for name in self.names:
            if include_self or name != node.name:
                self._send(node, name, dict(msg))

    def _dispatch(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        if not node.alive:
            return
        getattr(self, "_on_" + msg["type"])(node, msg)

    # -- election --------------------------------------------------------------

    def _start_campaign(self, node: PaxosNode) -> None:
        cfg = self.config
        rnd = max(node.round_hint, node.promised[0], node.ballot[0]) + 1
        ballot = (rnd, node.node_id)
        node.round_hint = rnd
        node.campaign = _Campaign(ballot=ballot, started_at=self.sim.now)
        node.next_campaign_at = (self.sim.now + cfg.election_timeout_s
                                 + self._jitter(node))
        if self.metrics is not None:
            self.metrics.record_election()
        if self.trace is not None:
            self.trace.emit("ctl_election_start", machine=node.name,
                            term=ballot_term(ballot, len(self.names)))
        self._broadcast(node, {"type": "prepare", "ballot": ballot,
                               "sent_at": self.sim.now,
                               "from_index": node.applied_to})

    def _on_prepare(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        ballot, frm, now = msg["ballot"], msg["frm"], self.sim.now
        node.round_hint = max(node.round_hint, ballot[0])
        if (node.lease_holder is not None and node.lease_holder != frm
                and now < node.lease_until):
            # A standing lease for someone else blocks this election —
            # the mutual-exclusion half of the lease protocol.
            self._send(node, frm, {"type": "promise", "ballot": ballot,
                                   "ok": False, "promised": node.promised,
                                   "lease_until": node.lease_until})
            return
        if ballot <= node.promised:
            self._send(node, frm, {"type": "promise", "ballot": ballot,
                                   "ok": False, "promised": node.promised,
                                   "lease_until": None})
            return
        node.promised = ballot
        node.lease_holder = frm
        node.lease_until = now + self.config.lease_duration_s
        if frm != node.name:
            # Stagger our own candidacy past the grant so that replicas
            # whose leader dies do not all campaign on the same tick.
            node.next_campaign_at = max(node.next_campaign_at,
                                        node.lease_until + self._jitter(node))
        if node.is_leader and ballot > node.ballot:
            self._step_down(node, "higher-ballot prepare")
        start = msg["from_index"]
        accepted = {i: v for i, v in node.accepted.items()
                    if i > start and i not in node.chosen}
        chosen = {i: c for i, c in node.chosen.items() if i > start}
        self._send(node, frm, {
            "type": "promise", "ballot": ballot, "ok": True,
            "accepted": accepted, "chosen": chosen,
            "max_index": max([0, *node.accepted, *node.chosen])})

    def _on_promise(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        camp = node.campaign
        if camp is None or msg["ballot"] != camp.ballot:
            return
        if not msg["ok"]:
            promised = msg.get("promised")
            if promised is not None:
                node.round_hint = max(node.round_hint, promised[0])
            lease = msg.get("lease_until")
            if lease is not None:
                # Back off past the standing lease before trying again.
                node.next_campaign_at = max(node.next_campaign_at,
                                            lease + self._jitter(node))
            camp.nacks += 1
            if camp.nacks >= self.majority:
                # The round is lost; retry after our own self-granted
                # lease runs out, jittered (see the timer-loop comment).
                node.campaign = None
                node.next_campaign_at = max(
                    node.next_campaign_at,
                    node.lease_until + self._jitter(node))
            return
        if msg["frm"] in camp.grants:
            return
        camp.grants.add(msg["frm"])
        for index, (bal, cmd) in msg.get("accepted", {}).items():
            current = camp.accepted.get(index)
            if current is None or bal > current[0]:
                camp.accepted[index] = (bal, cmd)
        camp.chosen.update(msg.get("chosen", {}))
        camp.max_index = max(camp.max_index, msg.get("max_index", 0))
        if len(camp.grants) >= self.majority and not camp.won:
            camp.won = True
            self._become_leader(node, camp)

    def _become_leader(self, node: PaxosNode, camp: _Campaign) -> None:
        node.campaign = None
        node.is_leader = True
        node.ballot = camp.ballot
        node.leader_term = ballot_term(camp.ballot, len(self.names))
        # Conservative: measured from the *send* time of the prepares,
        # so this view expires no later than any acceptor's grant.
        node.own_lease_until = camp.started_at + self.config.lease_duration_s
        node.last_renew_at = camp.started_at
        for index, cmd in camp.chosen.items():
            if index not in node.chosen:
                node.chosen[index] = cmd
        max_index = max([0, camp.max_index, *node.chosen, *node.accepted])
        # Finish what the old leader started: re-propose the
        # highest-ballot accepted value per open slot, no-op the gaps.
        for index in range(node.applied_to + 1, max_index + 1):
            if index in node.chosen:
                continue
            picked = camp.accepted.get(index)
            own = node.accepted.get(index)
            if own is not None and (picked is None or own[0] > picked[0]):
                picked = own
            cmd = picked[1] if picked is not None else ("noop", {})
            self._propose_at(node, index, cmd)
        node.next_index = max_index + 1
        if self.trace is not None:
            self.trace.emit("ctl_leader_elected", machine=node.name,
                            term=node.leader_term,
                            lease_until=node.own_lease_until)
        if self.metrics is not None and self.last_leader != node.name:
            self.metrics.record_leader_change()
        self.last_leader = node.name
        # The new term reaches every replica through the log itself.
        self._propose_at(node, node.next_index,
                         ("leader_takeover", {"node": node.name,
                                              "term": node.leader_term}))
        node.next_index += 1
        self._apply_ready(node)

    def _step_down(self, node: PaxosNode, reason: str) -> None:
        if not node.is_leader:
            return
        node.is_leader = False
        node.renew_grants.clear()
        for pend in node.pending.values():
            if not pend.done.triggered:
                pend.done.fail(NotLeaderError(
                    f"{node.name} deposed ({reason})"))
        node.pending.clear()
        node.next_campaign_at = self.sim.now + self._jitter(node)
        if self.trace is not None:
            self.trace.emit("ctl_stepdown", machine=node.name,
                            term=node.leader_term, reason=reason)

    # -- replication -----------------------------------------------------------

    def _new_done(self):
        event = self.sim.event()
        event.defused = True  # failures settle through propose(), not the kernel
        return event

    def _propose_at(self, node: PaxosNode, index: int,
                    cmd: Command) -> _Pending:
        pend = _Pending(cmd=cmd, done=self._new_done())
        node.pending[index] = pend
        self._broadcast_accept(node, index)
        return pend

    def _broadcast_accept(self, node: PaxosNode, index: int) -> None:
        pend = node.pending.get(index)
        if pend is None:
            return
        pend.last_sent = self.sim.now
        self._broadcast(node, {"type": "accept", "ballot": node.ballot,
                               "index": index, "cmd": pend.cmd,
                               "chosen_upto": node.applied_to})

    def _on_accept(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        ballot, frm, index = msg["ballot"], msg["frm"], msg["index"]
        node.round_hint = max(node.round_hint, ballot[0])
        if ballot >= node.promised:
            node.promised = ballot
            if node.is_leader and ballot > node.ballot:
                self._step_down(node, "higher-ballot accept")
            if index not in node.chosen:
                node.accepted[index] = (ballot, msg["cmd"])
            self._send(node, frm, {"type": "accepted", "ballot": ballot,
                                   "index": index, "ok": True})
        else:
            self._send(node, frm, {"type": "accepted", "ballot": ballot,
                                   "index": index, "ok": False,
                                   "promised": node.promised})
        if msg.get("chosen_upto", 0) > node.applied_to and frm != node.name:
            self._request_learn(node, frm)

    def _on_accepted(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        if not node.is_leader or msg["ballot"] != node.ballot:
            return
        if not msg["ok"]:
            # A single refusal only proves one acceptor promised higher —
            # usually a *failed* candidate's self-promise, not a new
            # leader. Deposing on it livelocks the group under election
            # churn; a real successor reveals itself through a
            # higher-ballot accept/prepare/renew, and a majority of
            # refusals starves the lease until the grace-period
            # abdication fires.
            node.round_hint = max(node.round_hint, msg["promised"][0])
            return
        pend = node.pending.get(msg["index"])
        if pend is None:
            return
        pend.acks.add(msg["frm"])
        if len(pend.acks) >= self.majority:
            self._choose(node, msg["index"])

    def _choose(self, node: PaxosNode, index: int) -> None:
        pend = node.pending.pop(index)
        node.chosen[index] = pend.cmd
        node.accepted.pop(index, None)
        if not pend.done.triggered:
            pend.done.succeed(index)
        self._broadcast(node, {"type": "decide", "index": index,
                               "cmd": pend.cmd}, include_self=False)
        self._apply_ready(node)

    def _on_decide(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        index = msg["index"]
        if index not in node.chosen:
            node.chosen[index] = msg["cmd"]
            node.accepted.pop(index, None)
        self._apply_ready(node)

    def _apply_ready(self, node: PaxosNode) -> None:
        """Advance the applied prefix; contiguous chosen entries only."""
        while node.applied_to + 1 in node.chosen:
            index = node.applied_to + 1
            kind, payload = node.chosen[index]
            node.state.apply(kind, payload)
            node.applied_to = index
            if self.trace is not None:
                self.trace.emit("ctl_applied", machine=node.name,
                                index=index, command=kind,
                                digest=command_digest(kind, payload))
            if (kind == "leader_takeover" and node.is_leader
                    and payload.get("node") == node.name
                    and self.on_leader is not None):
                self.on_leader(node, payload["term"])

    # -- leases ----------------------------------------------------------------

    def _send_renewals(self, node: PaxosNode) -> None:
        now = self.sim.now
        node.last_renew_at = now
        node.renew_seq += 1
        rid = node.renew_seq
        node.renew_grants[rid] = (now, set())
        while len(node.renew_grants) > 8:
            node.renew_grants.pop(min(node.renew_grants))
        self._broadcast(node, {"type": "renew", "ballot": node.ballot,
                               "rid": rid, "sent_at": now,
                               "chosen_upto": node.applied_to})

    def _on_renew(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        ballot, frm, now = msg["ballot"], msg["frm"], self.sim.now
        node.round_hint = max(node.round_hint, ballot[0])
        ok = False
        if ballot >= node.promised and (node.lease_holder in (None, frm)
                                        or now >= node.lease_until):
            node.promised = max(node.promised, ballot)
            node.lease_holder = frm
            node.lease_until = now + self.config.lease_duration_s
            if frm != node.name:
                node.next_campaign_at = max(
                    node.next_campaign_at,
                    node.lease_until + self._jitter(node))
                if node.is_leader:
                    # Granting another node a renewal means its ballot
                    # beat ours: a real successor exists.
                    self._step_down(node, f"granted lease to {frm}")
            ok = True
        self._send(node, frm, {"type": "renew_ack", "ballot": ballot,
                               "rid": msg["rid"], "ok": ok,
                               "promised": node.promised})
        if msg.get("chosen_upto", 0) > node.applied_to and frm != node.name:
            self._request_learn(node, frm)

    def _on_renew_ack(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        if not node.is_leader or msg["ballot"] != node.ballot:
            return
        if not msg["ok"]:
            # Same reasoning as refused accepts: a lone higher promise is
            # a failed candidate, not a verdict. Remember the round and
            # keep renewing with the nodes that still honour our lease.
            node.round_hint = max(node.round_hint, msg["promised"][0])
            return
        entry = node.renew_grants.get(msg["rid"])
        if entry is None:
            return
        sent_at, grants = entry
        grants.add(msg["frm"])
        if len(grants) == self.majority:
            new_until = sent_at + self.config.lease_duration_s
            if new_until > node.own_lease_until:
                node.own_lease_until = new_until
                if self.trace is not None:
                    self.trace.emit("ctl_lease_renewed", machine=node.name,
                                    term=node.leader_term,
                                    lease_until=new_until)

    # -- catch-up --------------------------------------------------------------

    def _request_learn(self, node: PaxosNode, frm: str) -> None:
        now = self.sim.now
        if now < node.next_learn_at:
            return
        node.next_learn_at = now + self.config.tick_s
        self._send(node, frm, {"type": "learn_req",
                               "from_index": node.applied_to})

    def _on_learn_req(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        start = msg["from_index"]
        entries = [(i, node.chosen[i])
                   for i in range(start + 1, start + 1 + self.config.learn_batch)
                   if i in node.chosen]
        if entries:
            self._send(node, msg["frm"], {"type": "learn",
                                          "entries": entries})

    def _on_learn(self, node: PaxosNode, msg: Dict[str, Any]) -> None:
        for index, cmd in msg["entries"]:
            if index not in node.chosen:
                node.chosen[index] = cmd
                node.accepted.pop(index, None)
        self._apply_ready(node)


def takeover_cleanup(controller, decisions: Dict[int, Tuple[str, List[str]]],
                     actor: str) -> Tuple[List[int], List[int]]:
    """Complete the data-plane side of a controller take-over.

    Phase 1: every transaction with a replicated (or mirrored) commit
    decision is driven to commit on its participants — the decision was
    made before the old controller died, so it must stick. Phase 2:
    every other in-flight transaction is presumed aborted on *all* alive
    machines, fenced ones included — a fenced machine is unreachable for
    new work but its engine still holds the old transaction's locks, and
    nothing else will ever release them.

    Shared by :class:`ProcessPairBackup` (mirror decisions) and the
    consensus control plane (quorum-replicated decisions).
    """
    trace = controller.trace
    committed: List[int] = []
    aborted: List[int] = []
    for txn_id in sorted(decisions):
        decision, machines = decisions[txn_id]
        if decision != "commit":
            continue
        for name in machines:
            machine = controller.machines.get(name)
            if machine is None or not machine.alive or machine.fenced:
                continue
            txn = machine.engine.transactions.get(txn_id)
            if txn is not None and not txn.finished:
                machine.engine.commit(txn)
            machine.forget_txn(txn_id)
        committed.append(txn_id)
        trace.emit("takeover_commit", txn=txn_id, actor=actor)
    decided = set(decisions)
    for machine in controller.machines.values():
        if not machine.alive:
            continue  # fenced-but-alive machines are swept too
        for txn_id, txn in list(machine.engine.transactions.items()):
            if txn_id in decided or txn.finished:
                continue
            machine.engine.abort(txn)
            machine.forget_txn(txn_id)
            if txn_id not in aborted:
                aborted.append(txn_id)
                trace.emit("takeover_abort", txn=txn_id, actor=actor)
    # Every transaction settled here had its coordinator die with the
    # old controller, so _finish never ran for it; purge them from the
    # open-writer drain gauge or a later delta handoff on their
    # database would wait on them forever.
    controller.resolve_stale_writers(set(decisions) | set(aborted))
    return committed, aborted


class ConsensusControlPlane:
    """Binds a :class:`PaxosGroup` to one :class:`ClusterController`.

    Each replica notionally co-hosts a full controller; the *acting*
    replica is the one currently driving the data plane. When
    leadership moves, the new leader replica runs the data-plane
    take-over from the quorum-replicated decision table, exactly as the
    process-pair backup did from its mirror — then the data plane
    resumes under the new term. A controller whose lease lapses fails
    every primary-gated operation until re-elected.
    """

    def __init__(self, controller, config: Optional[ConsensusConfig] = None):
        self.controller = controller
        self.sim: Simulator = controller.sim
        self.config = config or getattr(controller.config, "consensus",
                                        None) or ConsensusConfig()
        names = [f"{controller.name}-ctl{i}"
                 for i in range(self.config.replicas)]
        self.group = PaxosGroup(
            controller.sim, names, config=self.config,
            fabric=controller.fabric, trace=controller.trace,
            metrics=controller.metrics, on_leader=self._on_leader)
        self.acting = names[0]
        self.term = 0
        self._had_leader = False
        self.kills: List[Tuple[float, str]] = []
        self.repairs: List[Tuple[float, str]] = []
        controller.consensus = self

    def start(self) -> "ConsensusControlPlane":
        self.group.start(bootstrap=0)
        return self

    # -- leadership / lease queries --------------------------------------------

    @property
    def acting_node(self) -> PaxosNode:
        return self.group.nodes[self.acting]

    def lease_valid(self) -> bool:
        """True iff the acting replica holds an unexpired leader lease.

        This is the consensus replacement for the process pair's fence
        flag: it needs no message from anyone to turn False — the
        lease's own clock does the fencing.
        """
        node = self.acting_node
        return (node.alive and node.is_leader
                and self.sim.now < node.own_lease_until)

    def check_leader(self) -> None:
        """Redirect clients that reached a non-leader controller."""
        node = self.acting_node
        if not (node.alive and node.is_leader):
            raise NotLeaderError(
                f"controller replica {self.acting} is not the leader",
                leader=self.group.last_leader)

    # -- replicated mutations --------------------------------------------------

    def replicate_decision(self, db: str, txn_id: int, decision: str,
                           machines: List[str]):
        """Quorum-replicate a 2PC decision; generator, yields until
        chosen. No decision may leave a controller whose lease lapsed:
        the lease is checked both before proposing and after the quorum
        round-trip, so a deposed leader's in-flight COMMIT is cut off.
        """
        node = self.acting_node
        if not self.lease_valid():
            raise ControllerFailedError(
                f"controller {self.controller.name}: no valid leader lease")
        try:
            yield from self.group.propose(
                node, ("decision", {"txn": txn_id, "decision": decision,
                                    "machines": list(machines), "db": db}))
        except NotLeaderError as exc:
            raise ControllerFailedError(str(exc)) from exc
        if self.acting != node.name or not self.lease_valid():
            raise ControllerFailedError(
                f"controller {self.controller.name}: leader lease lapsed "
                f"while replicating the decision for txn {txn_id}")

    def clear_decision(self, db: str, txn_id: int) -> None:
        self.propose_async("decision_clear", {"txn": txn_id, "db": db})

    def propose_async(self, kind: str, payload: Dict[str, Any]) -> None:
        """Fire-and-forget metadata replication. Retries across leader
        changes; a command that never lands is folded in wholesale by
        the next leader's ``reconcile`` snapshot, so metadata cannot be
        lost — only briefly stale on followers."""
        proc = self.sim.process(self._drive(kind, dict(payload)),
                                name=f"ctl-propose:{kind}")
        proc.defused = True

    def _drive(self, kind: str, payload: Dict[str, Any]):
        cmd: Command = (kind, payload)
        for _ in range(12):
            node = self.acting_node
            if node.alive and node.is_leader:
                try:
                    yield from self.group.propose(node, cmd)
                    return
                except NotLeaderError:
                    pass
            yield self.sim.timeout(self.config.renew_interval_s)

    # -- leader change ---------------------------------------------------------

    def _on_leader(self, node: PaxosNode, term: int) -> None:
        controller = self.controller
        previous = self.acting
        was_down = not controller.primary_alive
        first = not self._had_leader
        self._had_leader = True
        self.term = term
        self.acting = node.name
        if first and node.name == previous and not was_down:
            return  # bootstrap election: nothing to take over
        committed, aborted = takeover_cleanup(
            controller, dict(node.state.decisions), actor=node.name)
        controller.primary_alive = True
        controller.trace.emit("ctl_takeover", machine=node.name, term=term,
                              previous=previous, completed=committed,
                              aborted=aborted)
        if controller.fabric.enabled and controller._detector_proc is not None:
            controller.start_failure_detector()
        self.propose_async("reconcile", {
            "replicas": {db: list(controller.replica_map.replicas(db))
                         for db in controller.replica_map.databases()},
            "declared_dead": sorted(controller.declared_dead),
            "fenced": sorted(m.name for m in controller.machines.values()
                             if m.fenced),
        })

    # -- failure machinery -----------------------------------------------------

    def crash_controller(self, name: str) -> None:
        """Fail-stop one controller replica, exactly like a machine
        crash: no goodbye message, queued work lost, durable log kept."""
        node = self.group.nodes[name]
        if not node.alive:
            return
        self.group.crash(name)
        self.kills.append((self.sim.now, name))
        self.controller.trace.emit("ctl_crashed", machine=name,
                                   term=self.term)
        if name == self.acting:
            # The acting replica took the data plane down with it.
            self.controller.primary_alive = False

    def repair_controller(self, name: str) -> None:
        node = self.group.nodes[name]
        if node.alive:
            return
        self.group.repair(name)
        self.repairs.append((self.sim.now, name))
        self.controller.trace.emit("ctl_repaired", machine=name)

    def alive_replicas(self) -> List[str]:
        return [name for name, node in self.group.nodes.items()
                if node.alive]
