"""Exception hierarchy shared across the platform.

Every error a client of the platform can observe derives from
:class:`PlatformError`; engine-internal errors derive from
:class:`EngineError`. The distinction between :class:`DeadlockError`
(inherent to the application, per the paper's SLA definition) and
:class:`ProactiveRejectionError` (caused by failures/migration, counted
against the availability SLA) mirrors Section 4.1 of the paper.
"""

from __future__ import annotations


class PlatformError(Exception):
    """Base class for all errors raised by the data platform."""


class EngineError(PlatformError):
    """Base class for errors raised by the single-node DBMS engine."""


class SqlError(EngineError):
    """Malformed SQL: lexing, parsing, or binding failure."""


class SchemaError(EngineError):
    """Unknown / duplicate database, table, column, or index."""


class ConstraintError(EngineError):
    """Primary-key or not-null violation."""


class TransactionError(EngineError):
    """Illegal transaction state transition (e.g. commit after abort)."""


class DeadlockError(EngineError):
    """The transaction was chosen as a deadlock victim.

    Per Section 4.1 these are *inherent to the application* and are not
    counted as proactive rejections.
    """


class LockTimeoutError(EngineError):
    """A lock wait exceeded the configured timeout.

    Used to resolve distributed deadlocks that span machines (no single
    machine's waits-for graph contains the cycle).
    """


class WouldBlockError(EngineError):
    """Synchronous (non-simulated) execution hit a lock conflict."""


class ProactiveRejectionError(PlatformError):
    """The platform itself rejected the operation.

    Raised for writes to a table that is currently being copied
    (Algorithm 1, line 11) and for operations lost to machine failures.
    The SLA's availability requirement bounds the fraction of these.

    ``database`` tags the tenant whose SLA the rejection counts against;
    ``retryable`` tells clients whether backing off and retrying can
    succeed (a copy window passes; a machine failure may not).
    """

    def __init__(self, message: str, database: str = None,
                 retryable: bool = False):
        super().__init__(message)
        self.database = database
        self.retryable = retryable


class OverloadRejectedError(ProactiveRejectionError):
    """Admission control turned the transaction away at the door.

    The tenant's token bucket (provisioned from its SLA's minimum
    throughput plus burst headroom) was empty: the database is offering
    more load than it bought. Always retryable — tokens refill at the
    provisioned rate — and always tenant-tagged, so rejections count
    against the *overloading* tenant's ``max_rejected_fraction``, never
    a neighbour's. Subclasses :class:`ProactiveRejectionError` so every
    existing rejection-accounting path treats it as a proactive
    rejection.
    """

    def __init__(self, message: str, database: str = None,
                 retryable: bool = True):
        super().__init__(message, database=database, retryable=retryable)


class MachineFailedError(PlatformError):
    """An operation was in flight on a machine that failed."""


class RPCTimeoutError(MachineFailedError):
    """An RPC to a machine timed out after exhausting its retries.

    Subclasses :class:`MachineFailedError` because the caller cannot
    distinguish a dead machine from an unreachable one — both look like
    silence. Handlers that must be conservative about *unreachable but
    possibly alive* participants (2PC PREPARE) catch this subtype first.
    """


class ControllerFailedError(PlatformError):
    """The acting cluster controller crashed; clients must reconnect.

    Raised to clients whose connection state lived on the failed
    primary. The process-pair backup completes or presumed-aborts their
    in-flight transactions during take-over (Section 2)."""


class NotLeaderError(PlatformError):
    """The contacted controller replica does not hold the leader lease.

    With the consensus control plane enabled a client may reach a
    follower (or a deposed leader whose lease lapsed); the error carries
    the best-known leader so the client can redirect, mirroring a Paxos
    group's NOT_MASTER response.
    """

    def __init__(self, message: str, leader: str = None):
        super().__init__(message)
        self.leader = leader


class NoReplicaError(PlatformError):
    """No live replica of the requested database exists in the cluster."""


class ColoFencedError(PlatformError):
    """The colo was fenced by the system controller after being declared.

    A fenced primary colo rejects new connections and stops shipping its
    replication log; clients must re-route through the system controller,
    which serves the database from the promoted standby colo.
    """


class SlaViolationError(PlatformError):
    """A database's SLA cannot be satisfied with available resources."""
