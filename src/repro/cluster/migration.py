"""Planned replica migration — the SLA model's "reallocation rate".

Section 4.1 counts, besides failures, "the number of times a replica of
database j is moved from one machine to another during time period T due
to system maintenance and reorganization". This module implements those
planned moves with exactly the machinery Algorithm 1 provides for
recovery copies: the same per-table copy pipeline, the same write
rejection window, the same consistency argument — because a migration
*is* a replica creation followed by retiring the old replica.

:class:`MigrationManager` offers one-shot ``migrate_replica`` plus a
simple ``rebalance_once`` policy (move a replica off the most-loaded
machine), the paper's "database placement and migration within a cluster
so that the SLAs ... are satisfied".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.controller import ClusterController, CopyState
from repro.cluster.recovery import CopyGranularity
from repro.errors import NoReplicaError, PlatformError
from repro.sim import Process


class MigrationError(PlatformError):
    """The requested migration is not possible."""


@dataclass
class MigrationRecord:
    """One completed replica move."""

    db: str
    source: str
    target: str
    started_at: float
    finished_at: float
    bytes_copied: int

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class MigrationManager:
    """Moves database replicas between machines under live traffic."""

    def __init__(self, controller: ClusterController,
                 granularity: CopyGranularity = CopyGranularity.TABLE,
                 drop_grace_s: float = 10.0):
        self.controller = controller
        self.sim = controller.sim
        self.granularity = granularity
        # How long the retired replica's data lingers before being
        # dropped (lets transactions that still hold locks there finish).
        self.drop_grace_s = drop_grace_s
        self.records: List[MigrationRecord] = []

    # -- public API ------------------------------------------------------------

    def migrate_replica(self, db: str, source: str,
                        target: str) -> Process:
        """Start moving ``db``'s replica from ``source`` to ``target``.

        Returns the sim process; its value is the
        :class:`MigrationRecord`. Raises :class:`MigrationError`
        synchronously on invalid arguments.
        """
        self._validate(db, source, target)
        return self.sim.process(self._migrate(db, source, target),
                                name=f"migrate:{db}:{source}->{target}")

    def rebalance_once(self) -> Optional[Process]:
        """Move one replica from the most- to the least-loaded machine.

        Load is the hosted-replica count (the paper's coarse-grained
        "observation and appropriate reaction"). Returns None when the
        cluster is already balanced (spread <= 1).
        """
        machines = self.controller.live_machines()
        if len(machines) < 2:
            return None
        loads = sorted(
            machines,
            key=lambda m: self.controller.replica_map.hosted_count(m.name))
        least, most = loads[0], loads[-1]
        most_load = self.controller.replica_map.hosted_count(most.name)
        least_load = self.controller.replica_map.hosted_count(least.name)
        if most_load - least_load <= 1:
            return None
        for db in self.controller.replica_map.hosted_on(most.name):
            try:
                self._validate(db, most.name, least.name)
            except MigrationError:
                continue
            return self.migrate_replica(db, most.name, least.name)
        return None

    # -- internals ---------------------------------------------------------------

    def _validate(self, db: str, source: str, target: str) -> None:
        controller = self.controller
        if db in controller.copy_states:
            raise MigrationError(f"{db!r} is already being copied")
        replicas = controller.replica_map.replicas(db)
        if source not in replicas:
            raise MigrationError(f"{source!r} does not host {db!r}")
        if target in replicas:
            raise MigrationError(f"{target!r} already hosts {db!r}")
        for name in (source, target):
            machine = controller.machines.get(name)
            if machine is None or not machine.alive:
                raise MigrationError(f"machine {name!r} is not alive")
        if controller.machines[target].engine.hosts(db):
            raise MigrationError(f"{target!r} still has old data for {db!r}")

    def _migrate(self, db: str, source_name: str,
                 target_name: str) -> Generator:
        controller = self.controller
        source = controller.machines[source_name]
        target = controller.machines[target_name]
        started = self.sim.now
        controller.ensure_materialised(db)

        # Phase 1: build the new replica (identical to recovery's copy).
        target.engine.create_database(db)
        setup = target.engine.begin()
        for statement in controller.ddl[db]:
            target.engine.execute_sync(setup, db, statement)
        target.engine.commit(setup)

        state = CopyState(db, target_name, source=source_name)
        controller.copy_states[db] = state
        controller.trace.emit("migration_start", db=db, machine=target_name,
                              source=source_name)
        total = 0
        try:
            if self.granularity is CopyGranularity.DATABASE:
                state.copying_all = True
                dumps = yield source.run_copy(
                    source.dump_database_body(db), label=f"mdump:{db}")
                for dump in dumps:
                    yield from self._transfer(dump.bytes_estimate)
                    yield target.run_copy(
                        target.load_rows_body(db, dump.table, dump.rows),
                        label=f"mload:{db}.{dump.table}")
                    total += dump.bytes_estimate
                for dump in dumps:
                    state.copied_tables.add(dump.table)
                state.copying_all = False
            else:
                for table_name in sorted(source.engine.database(db).tables):
                    state.copying_table = table_name
                    dump = yield source.run_copy(
                        source.dump_table_body(db, table_name),
                        label=f"mdump:{db}.{table_name}")
                    yield from self._transfer(dump.bytes_estimate)
                    yield target.run_copy(
                        target.load_rows_body(db, table_name, dump.rows),
                        label=f"mload:{db}.{table_name}")
                    state.copying_table = None
                    state.copied_tables.add(table_name)
                    total += dump.bytes_estimate
        except Exception as exc:
            # Source or target died: abandon; recovery (if attached)
            # will restore the replication factor.
            partial_dropped = False
            if target.alive and target.engine.hosts(db):
                target.engine.drop_database(db)
                partial_dropped = True
            controller.trace.emit("migration_abandoned", db=db,
                                  machine=target_name,
                                  error=type(exc).__name__,
                                  partial_dropped=partial_dropped)
            raise
        finally:
            controller.copy_states.pop(db, None)

        # Phase 2: switch replicas — the new one in, the old one out.
        controller.replica_map.add_replica(db, target_name)
        replicas = controller.replica_map.replicas(db)
        replicas.remove(source_name)
        controller.replica_map.drop_database(db)
        controller.replica_map.add_database(db, replicas)
        controller.trace.emit(
            "migration_done", db=db, machine=target_name, source=source_name,
            replicas=controller.replica_map.replica_count(db), bytes=total)

        record = MigrationRecord(db, source_name, target_name, started,
                                 self.sim.now, total)
        self.records.append(record)

        # Phase 3: retire the old replica's data after a grace period
        # (transactions that already hold locks there still finish).
        self.sim.process(self._retire(db, source_name),
                         name=f"retire:{db}@{source_name}").defused = True
        return record

    def _retire(self, db: str, source_name: str) -> Generator:
        yield self.sim.timeout(self.drop_grace_s)
        machine = self.controller.machines.get(source_name)
        if machine is not None and machine.alive and machine.engine.hosts(db):
            machine.engine.drop_database(db)

    def _transfer(self, nbytes: int) -> Generator:
        machine_cfg = self.controller.config.machine
        scaled = nbytes * machine_cfg.copy_bytes_factor
        seconds = (scaled / (1024.0 * 1024.0)) / machine_cfg.network_mbps
        if seconds > 0:
            yield self.sim.timeout(seconds + machine_cfg.network_latency_s)
