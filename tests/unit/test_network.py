"""Unit tests for the simulated network fabric.

Covers FIFO delivery, random loss, cuts/heals/splits, determinism of
the seeded randomness, retry backoff bounds, and the partition-checked
bulk-transfer stream used by recovery copies.
"""

import pytest

from repro.cluster.network import (BACKUP, CONTROLLER, NetworkConfig,
                                   NetworkFabric, NetworkPartitionedError)
from repro.sim import Simulator


def make_fabric(sim, **kwargs):
    kwargs.setdefault("enabled", True)
    return NetworkFabric(sim, NetworkConfig(**kwargs))


def deliver(sim, fabric, src, dst, log, tag):
    """Spawn a process sending one message; append (tag, t, ok) on arrival."""

    def proc():
        ok = yield from fabric.deliver(src, dst)
        log.append((tag, sim.now, ok))

    return sim.process(proc())


class TestDelivery:
    def test_reliable_link_delivers_after_latency(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency_s=0.01)
        log = []
        deliver(sim, fabric, CONTROLLER, "m1", log, 0)
        sim.run()
        assert log == [(0, pytest.approx(0.01), True)]

    def test_fifo_messages_never_overtake(self):
        # Jitter larger than the mean could reorder arrivals; the FIFO
        # clamp must keep same-link deliveries in send order.
        sim = Simulator()
        fabric = make_fabric(sim, latency_s=0.01, jitter_s=0.009, seed=7)
        log = []
        for i in range(50):
            deliver(sim, fabric, CONTROLLER, "m1", log, i)
        sim.run()
        assert [tag for tag, _, _ in log] == list(range(50))
        times = [t for _, t, _ in log]
        assert times == sorted(times)

    def test_drop_probability_loses_messages(self):
        sim = Simulator()
        fabric = make_fabric(sim, drop_probability=1.0)
        log = []
        deliver(sim, fabric, CONTROLLER, "m1", log, 0)
        sim.run()
        assert log[0][2] is False
        assert fabric.link_stats[(CONTROLLER, "m1")].dropped == 1

    def test_lost_message_still_consumes_latency(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency_s=0.02, drop_probability=1.0)
        log = []
        deliver(sim, fabric, CONTROLLER, "m1", log, 0)
        sim.run()
        assert log == [(0, pytest.approx(0.02), False)]


class TestPartitions:
    def test_cut_blocks_and_heal_restores(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.cut(CONTROLLER, "m1")
        log = []
        deliver(sim, fabric, CONTROLLER, "m1", log, "cut")
        sim.run()
        assert log[0][2] is False
        assert fabric.link_stats[(CONTROLLER, "m1")].cut_dropped == 1
        fabric.heal(CONTROLLER, "m1")
        deliver(sim, fabric, CONTROLLER, "m1", log, "healed")
        sim.run()
        assert log[1][2] is True

    def test_cut_is_symmetric_by_default(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.cut(CONTROLLER, "m1")
        assert not fabric.connected(CONTROLLER, "m1")
        assert not fabric.connected("m1", CONTROLLER)

    def test_asymmetric_cut(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.cut(CONTROLLER, "m1", symmetric=False)
        assert not fabric.connected(CONTROLLER, "m1")
        assert fabric.connected("m1", CONTROLLER)

    def test_split_isolates_groups_not_members(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.split([[CONTROLLER, "m1"], ["m2", "m3"]])
        assert fabric.connected(CONTROLLER, "m1")
        assert fabric.connected("m2", "m3")
        for a in (CONTROLLER, "m1"):
            for b in ("m2", "m3"):
                assert not fabric.connected(a, b)
                assert not fabric.connected(b, a)

    def test_heal_all_clears_every_cut(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.split([[CONTROLLER], ["m1", "m2"]])
        fabric.cut(BACKUP, CONTROLLER)
        assert fabric.cut_links()
        fabric.heal_all()
        assert fabric.cut_links() == []


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        runs = []
        for _ in range(2):
            sim = Simulator()
            fabric = make_fabric(sim, latency_s=0.01, jitter_s=0.008,
                                 drop_probability=0.3, seed=42)
            log = []
            for i in range(40):
                deliver(sim, fabric, CONTROLLER, f"m{i % 3}", log, i)
            sim.run()
            runs.append(log)
        assert runs[0] == runs[1]

    def test_backoff_within_bounds_and_grows(self):
        sim = Simulator()
        fabric = make_fabric(sim, rpc_backoff_base_s=0.05,
                             rpc_backoff_max_s=1.0, seed=5)
        delays = [fabric.backoff_delay(attempt) for attempt in range(1, 8)]
        assert all(0 < d <= 1.0 for d in delays)
        # The deterministic cap doubles until it hits the maximum.
        caps = [min(1.0, 0.05 * 2 ** (a - 1)) for a in range(1, 8)]
        assert all(d <= cap for d, cap in zip(delays, caps))


class TestTransfer:
    def test_transfer_completes_when_connected(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency_s=0.0)
        proc = sim.process(fabric.transfer(CONTROLLER, "m1", 0.5))
        sim.run()
        assert proc.ok

    def test_copy_gate_raises_when_cut(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        fabric.cut(CONTROLLER, "m1")
        with pytest.raises(NetworkPartitionedError):
            fabric.copy_gate(CONTROLLER, "m1")

    def test_transfer_fails_when_cut_midflight(self):
        sim = Simulator()
        fabric = make_fabric(sim, latency_s=0.0)
        proc = sim.process(fabric.transfer(CONTROLLER, "m1", 1.0))
        proc.defused = True

        def cutter():
            yield sim.timeout(0.5)
            fabric.cut(CONTROLLER, "m1")

        sim.process(cutter())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, NetworkPartitionedError)
