"""Unit tests for the error hierarchy and configuration defaults."""

import pytest

from repro import errors
from repro.cluster.config import ClusterConfig, MachineConfig
from repro.engine.config import EngineConfig


class TestErrorHierarchy:
    def test_engine_errors_are_platform_errors(self):
        for exc_type in (errors.SqlError, errors.SchemaError,
                         errors.ConstraintError, errors.TransactionError,
                         errors.DeadlockError, errors.LockTimeoutError,
                         errors.WouldBlockError):
            assert issubclass(exc_type, errors.EngineError)
            assert issubclass(exc_type, errors.PlatformError)

    def test_platform_level_errors(self):
        for exc_type in (errors.ProactiveRejectionError,
                         errors.MachineFailedError, errors.NoReplicaError,
                         errors.SlaViolationError):
            assert issubclass(exc_type, errors.PlatformError)
            assert not issubclass(exc_type, errors.EngineError)

    def test_deadlock_is_not_rejection(self):
        # Section 4.1: deadlocks are inherent to the application and do
        # not count against the availability SLA.
        assert not issubclass(errors.DeadlockError,
                              errors.ProactiveRejectionError)
        assert not issubclass(errors.ProactiveRejectionError,
                              errors.EngineError)


class TestConfigDefaults:
    def test_engine_defaults_sane(self):
        config = EngineConfig()
        assert config.release_read_locks_at_prepare is True
        assert config.nonlocking_reads is False
        assert config.buffer_pool_pages > 0
        assert config.rows_per_page > 0
        assert config.btree_order >= 4

    def test_machine_defaults_match_paper_testbed(self):
        config = MachineConfig()
        # "two 2.80GHz Intel(R) Xeon(TM) CPUs, 4GB RAM"
        assert config.cores == 2
        assert config.memory_mb == 4096.0
        assert config.copy_bytes_factor == 1.0

    def test_cluster_defaults(self):
        config = ClusterConfig()
        # The paper's evaluation hosts 2 replicas per database.
        assert config.replication_factor == 2
        assert config.lock_wait_timeout_s > 0
        assert config.record_history is False

    def test_configs_are_independent(self):
        a = ClusterConfig()
        b = ClusterConfig()
        a.machine.engine.buffer_pool_pages = 1
        assert b.machine.engine.buffer_pool_pages != 1
