"""Seeded random-number helpers used by workloads and experiments.

Everything random in the repository goes through :class:`SeededRNG` so
experiments are exactly reproducible. :class:`ZipfGenerator` implements the
bounded zipfian distribution the paper uses for SLA skew experiments
(database sizes and throughput requirements drawn from zipf with skew
factors 0.4-2.0).
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_right
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRNG:
    """A thin wrapper over :mod:`random` with domain helpers."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "SeededRNG":
        """Derive an independent stream keyed by ``label``.

        Forked streams decouple unrelated consumers: adding draws in one
        subsystem does not perturb another. The derivation uses a stable
        hash (crc32), not Python's randomized ``hash()``, so experiments
        reproduce across processes.
        """
        digest = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        return SeededRNG(digest & 0x7FFFFFFF)

    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate."""
        return self._rng.expovariate(rate)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with probability proportional to its weight."""
        return self._rng.choices(items, weights=weights, k=1)[0]

    def string(self, length: int, alphabet: str = "abcdefghijklmnopqrstuvwxyz") -> str:
        """A random fixed-length lowercase string (TPC-W text fields)."""
        return "".join(self._rng.choice(alphabet) for _ in range(length))


class ZipfGenerator:
    """Bounded zipfian sampler over ranks 1..n with skew ``theta``.

    P(rank k) is proportional to 1 / k**theta. ``theta=0`` degenerates to
    uniform. Sampling is O(log n) via a precomputed CDF.
    """

    def __init__(self, n: int, theta: float, rng: SeededRNG):
        if n < 1:
            raise ValueError(f"zipf support must be >= 1: {n}")
        if theta < 0:
            raise ValueError(f"zipf skew must be >= 0: {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        cdf: List[float] = []
        total = 0.0
        for k in range(1, n + 1):
            total += 1.0 / (k ** theta)
            cdf.append(total)
        self._cdf = [c / total for c in cdf]

    def sample_rank(self) -> int:
        """Draw a rank in [1, n]; rank 1 is the most popular."""
        u = self._rng.random()
        return bisect_right(self._cdf, u) + 1

    def sample_in_range(self, lo: float, hi: float) -> float:
        """Map a sampled rank onto [lo, hi].

        Rank 1 maps to ``lo``; rank n maps to ``hi``. With skew, the mass
        concentrates near ``lo`` — matching the paper's Table 2, where the
        average database size and throughput shrink as skew grows.
        """
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        rank = self.sample_rank()
        if self.n == 1:
            return lo
        return lo + (hi - lo) * (rank - 1) / (self.n - 1)
