"""Shared driver for Figures 5-7 (deadlock rate vs database size).

One figure = one TPC-W mix; curves = read Options 1/2/3; x-axis =
database size (scaled by item count, with all dependent tables following
the TPC-W ratios).

Expected shape (paper Section 5): the deadlock rate falls as the
database grows (lock conflicts dilute over more rows), and there is "no
significant difference in the number of deadlocks for the different
options".

The dominant deadlock is buy-confirm's check-then-decrement on item
stock: two buyers of the same item both hold S and both upgrade to X.
The chance two concurrent carts share an item falls as the catalog
grows — the falling curve. (`bench_ablation_nonlocking_reads` shows the
same sweep under MySQL-style consistent reads, where plain SELECTs take
no locks at all.)
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster import ReadOption, WritePolicy
from repro.harness import format_table, run_tpcw_cluster
from repro.workloads.tpcw import TpcwScale

SIZES = (100, 250, 600)        # items per database (size sweep)
OPTIONS = (ReadOption.OPTION_1, ReadOption.OPTION_2, ReadOption.OPTION_3)
CLIENTS = 12
DURATION_S = 12.0


def _scale_for(items: int) -> TpcwScale:
    """Scale the *whole* database with the item count.

    The paper varies "the size of each database": customers, orders, and
    order lines grow with the catalog (TPC-W's own ratios), so lock
    conflicts dilute across every table as the database grows.
    """
    return TpcwScale(items=items, emulated_browsers=max(4, items // 12))


def run_deadlock_figure(mix_name: str) -> Tuple[str, Dict]:
    rates: Dict[ReadOption, Dict[int, float]] = {opt: {} for opt in OPTIONS}
    counts: Dict[ReadOption, Dict[int, int]] = {opt: {} for opt in OPTIONS}
    for option in OPTIONS:
        for items in SIZES:
            result = run_tpcw_cluster(
                mix_name=mix_name,
                read_option=option,
                write_policy=WritePolicy.CONSERVATIVE,
                machines=4,
                n_databases=2,
                replicas=2,
                clients_per_db=CLIENTS,
                duration_s=DURATION_S,
                scale=_scale_for(items),
                think_time_s=0.005,
                buffer_pool_pages=1024,
                lock_wait_timeout_s=1.0,
            )
            rates[option][items] = result.deadlock_rate_per_s
            counts[option][items] = result.deadlocks
    headers = ["db size (items)"] + [opt.name.lower() for opt in OPTIONS]
    rows = [
        [items] + [rates[opt][items] for opt in OPTIONS]
        for items in SIZES
    ]
    text = ("deadlock rate (deadlocks/second)\n"
            + format_table(headers, rows))
    return text, {"rates": rates, "counts": counts}


def assert_deadlock_shape(data: Dict, write_heavy: bool) -> None:
    rates = data["rates"]
    for option in OPTIONS:
        smallest = rates[option][SIZES[0]]
        largest = rates[option][SIZES[-1]]
        # Rate falls (or stays flat at ~zero) as the database grows.
        assert largest <= smallest + 0.2, (
            f"{option}: rate grew with size ({smallest} -> {largest})")
    if write_heavy:
        # The write-heavy mix must actually exhibit deadlocks at the
        # smallest size for the trend to mean anything.
        assert any(data["counts"][opt][SIZES[0]] > 0 for opt in OPTIONS)
