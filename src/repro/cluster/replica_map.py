"""The cluster controller's map of databases to machines.

Each database maps to an *ordered* list of machine names; the first live
entry acts as the designated primary for read Option 1. The map is the
authority on which machines writes fan out to and which machine serves a
read.

The map also maintains *incremental* per-machine placement counts —
how many databases each machine hosts and for how many it is the
designated primary — so the controller's placement decision at
``create_database`` is O(live machines) instead of a rescan of every
hosted database (O(N) per create, O(N²) for N creates).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import NoReplicaError


class ReplicaMap:
    """Ordered replica placement for every hosted database."""

    def __init__(self):
        self._replicas: Dict[str, List[str]] = {}
        # machine -> number of databases whose replica list it appears in.
        self._hosted_counts: Dict[str, int] = {}
        # machine -> number of databases whose *first* replica it is.
        self._primary_counts: Dict[str, int] = {}

    def databases(self) -> List[str]:
        return list(self._replicas)

    def database_count(self) -> int:
        return len(self._replicas)

    def has(self, db: str) -> bool:
        return db in self._replicas

    def __contains__(self, db: str) -> bool:
        return db in self._replicas

    def add_database(self, db: str, machines: List[str]) -> None:
        if db in self._replicas:
            raise ValueError(f"database {db!r} already placed")
        if len(set(machines)) != len(machines):
            raise ValueError(f"duplicate machines in placement: {machines}")
        self._replicas[db] = list(machines)
        for name in machines:
            self._bump(self._hosted_counts, name, 1)
        if machines:
            self._bump(self._primary_counts, machines[0], 1)

    def drop_database(self, db: str) -> None:
        replicas = self._replicas.pop(db, None)
        if not replicas:
            return
        for name in replicas:
            self._bump(self._hosted_counts, name, -1)
        self._bump(self._primary_counts, replicas[0], -1)

    def replicas(self, db: str) -> List[str]:
        """Ordered replica list (may include failed machines)."""
        if db not in self._replicas:
            raise NoReplicaError(f"database {db!r} is not hosted here")
        return list(self._replicas[db])

    def replicas_view(self, db: str) -> Sequence[str]:
        """Like :meth:`replicas` but without the defensive copy.

        Hot-path accessor: callers must not mutate the returned list and
        must not hold it across map mutations.
        """
        replicas = self._replicas.get(db)
        if replicas is None:
            raise NoReplicaError(f"database {db!r} is not hosted here")
        return replicas

    def add_replica(self, db: str, machine: str) -> None:
        replicas = self._replicas.get(db)
        if replicas is None:
            raise NoReplicaError(f"database {db!r} is not hosted here")
        if machine not in replicas:
            was_empty = not replicas
            replicas.append(machine)
            self._bump(self._hosted_counts, machine, 1)
            if was_empty:
                self._bump(self._primary_counts, machine, 1)

    def remove_machine(self, machine: str) -> List[str]:
        """Remove a failed machine everywhere; returns affected databases."""
        if self._hosted_counts.get(machine, 0) == 0:
            return []  # hosts nothing: skip the scan entirely
        affected = []
        for db, replicas in self._replicas.items():
            if machine in replicas:
                was_primary = replicas[0] == machine
                replicas.remove(machine)
                self._bump(self._hosted_counts, machine, -1)
                if was_primary:
                    self._bump(self._primary_counts, machine, -1)
                    if replicas:
                        # Primary hand-off: the next ordered replica
                        # serves Option-1 reads from now on.
                        self._bump(self._primary_counts, replicas[0], 1)
                affected.append(db)
        return affected

    def hosted_on(self, machine: str) -> List[str]:
        return [db for db, reps in self._replicas.items() if machine in reps]

    def hosted_count(self, machine: str) -> int:
        """Databases with a replica on ``machine`` — O(1), equals
        ``len(hosted_on(machine))``."""
        return self._hosted_counts.get(machine, 0)

    def primary_count(self, machine: str) -> int:
        """Databases whose designated primary is ``machine`` — O(1)."""
        return self._primary_counts.get(machine, 0)

    def replica_count(self, db: str) -> int:
        return len(self._replicas.get(db, ()))

    @staticmethod
    def _bump(counts: Dict[str, int], name: str, delta: int) -> None:
        value = counts.get(name, 0) + delta
        if value:
            counts[name] = value
        else:
            counts.pop(name, None)
