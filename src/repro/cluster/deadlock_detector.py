"""Distributed deadlock detection at the cluster controller.

A deadlock that spans machines leaves no cycle in any single engine's
waits-for graph — the paper's conservative Option 2/3 runs hit exactly
this (T1 blocks on machine B while T2 blocks on machine A). The baseline
resolution is the lock-wait timeout; this detector is the precise
alternative: because transaction ids are global, the union of every
machine's waits-for edges is the *global* waits-for graph, and any cycle
in it is a real deadlock.

The detector runs as a periodic controller process; victims (youngest
transaction in the cycle, deterministically) are rolled back on every
machine, which fails their pending lock requests and propagates a
:class:`DeadlockError` to the waiting client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.analysis.serialization_graph import SerializationGraph
from repro.cluster.controller import ClusterController
from repro.sim import Process


@dataclass
class DetectorStats:
    sweeps: int = 0
    deadlocks_found: int = 0
    victims: List[int] = field(default_factory=list)


class DistributedDeadlockDetector:
    """Periodic global waits-for-graph cycle detection."""

    def __init__(self, controller: ClusterController,
                 period_s: float = 0.2):
        if period_s <= 0:
            raise ValueError("detector period must be positive")
        self.controller = controller
        self.period_s = period_s
        self.stats = DetectorStats()
        self._proc: Optional[Process] = None

    def start(self) -> None:
        if self._proc is not None:
            return
        proc = self.controller.sim.process(self._loop(),
                                           name="deadlock-detector")
        proc.defused = True  # runs until stop()
        self._proc = proc

    def stop(self) -> None:
        """Cancel the periodic sweep.

        The sweep loop keeps the simulation schedule non-empty, so an
        unbounded ``sim.run()`` never returns while a detector is
        running — either stop it when done or run with ``until=``.
        """
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("detector stopped")
        self._proc = None

    def global_waits_for(self) -> Dict[int, Set[int]]:
        """Union of the live machines' waits-for graphs."""
        edges: Dict[int, Set[int]] = {}
        for machine in self.controller.live_machines():
            for waiter, holders in machine.engine.locks.waits_for_edges(
            ).items():
                edges.setdefault(waiter, set()).update(holders)
        return edges

    def sweep(self) -> List[int]:
        """One detection pass; returns the victims aborted."""
        self.stats.sweeps += 1
        victims: List[int] = []
        while True:
            graph = SerializationGraph(
                (src, dst)
                for src, dsts in self.global_waits_for().items()
                for dst in dsts)
            cycle = graph.find_cycle()
            if cycle is None:
                return victims
            self.stats.deadlocks_found += 1
            victim = max(cycle)  # youngest transaction (largest global id)
            self.stats.victims.append(victim)
            victims.append(victim)
            self._abort_victim(victim)

    def _abort_victim(self, txn_id: int) -> None:
        """Roll the victim back everywhere.

        ``abort_local`` releases the victim's locks and fails its pending
        requests, so blocked statements of the victim raise
        :class:`DeadlockError` into the controller, which finishes the
        client-visible abort.
        """
        for machine in self.controller.live_machines():
            machine.abort_local(txn_id)

    def _loop(self) -> Generator:
        from repro.sim import Interrupt
        try:
            while True:
                yield self.controller.sim.timeout(self.period_s)
                self.sweep()
        except Interrupt:
            return
