"""Unit tests for the multi-granularity lock manager."""

import pytest

from repro.engine.locks import (LockManager, LockMode, compatible, supremum)
from repro.errors import DeadlockError

ROW_A = ("row", "db", "t", 1)
ROW_B = ("row", "db", "t", 2)
TBL = ("tbl", "db", "t")


class TestModeLattice:
    def test_compatibility_matrix(self):
        # (held, requested) -> compatible
        expectations = {
            (LockMode.IS, LockMode.IS): True,
            (LockMode.IS, LockMode.IX): True,
            (LockMode.IS, LockMode.S): True,
            (LockMode.IS, LockMode.SIX): True,
            (LockMode.IS, LockMode.X): False,
            (LockMode.IX, LockMode.IX): True,
            (LockMode.IX, LockMode.S): False,
            (LockMode.IX, LockMode.SIX): False,
            (LockMode.S, LockMode.S): True,
            (LockMode.S, LockMode.IX): False,
            (LockMode.S, LockMode.X): False,
            (LockMode.SIX, LockMode.IS): True,
            (LockMode.SIX, LockMode.IX): False,
            (LockMode.X, LockMode.IS): False,
            (LockMode.X, LockMode.X): False,
        }
        for (held, req), expected in expectations.items():
            assert compatible(held, req) is expected, (held, req)

    def test_supremum_examples(self):
        assert supremum(LockMode.S, LockMode.IX) is LockMode.SIX
        assert supremum(LockMode.IS, LockMode.IX) is LockMode.IX
        assert supremum(LockMode.S, LockMode.X) is LockMode.X
        assert supremum(LockMode.S, LockMode.S) is LockMode.S

    def test_supremum_commutes(self):
        for a in LockMode:
            for b in LockMode:
                assert supremum(a, b) is supremum(b, a)


class TestAcquireRelease:
    def test_grant_compatible(self):
        lm = LockManager()
        assert lm.acquire(1, ROW_A, LockMode.S).granted
        assert lm.acquire(2, ROW_A, LockMode.S).granted

    def test_conflict_queues(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        req = lm.acquire(2, ROW_A, LockMode.S)
        assert not req.granted
        assert lm.stats.waits == 1

    def test_release_grants_fifo(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        r2 = lm.acquire(2, ROW_A, LockMode.S)
        lm.release_all(1)
        assert r2.granted
        assert lm.holds(2, ROW_A, LockMode.S)

    def test_fifo_prevents_overtaking(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        rx = lm.acquire(2, ROW_A, LockMode.X)   # queued
        rs = lm.acquire(3, ROW_A, LockMode.S)   # compatible with holder but
        assert not rx.granted
        assert not rs.granted                   # must not starve the writer

    def test_reentrant_weaker_request(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        again = lm.acquire(1, ROW_A, LockMode.S)
        assert again.granted
        assert lm.holds(1, ROW_A, LockMode.X)

    def test_upgrade_granted_when_alone(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        up = lm.acquire(1, ROW_A, LockMode.X)
        assert up.granted
        assert lm.holds(1, ROW_A, LockMode.X)

    def test_upgrade_jumps_queue(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        lm.acquire(2, ROW_A, LockMode.S)
        waiting_x = lm.acquire(3, ROW_A, LockMode.X)   # queued behind holders
        up = lm.acquire(1, ROW_A, LockMode.X)          # upgrade: front of queue
        assert not up.granted                          # txn2 still holds S
        lm.release_all(2)
        assert up.granted                              # upgrade won over txn3
        assert not waiting_x.granted

    def test_release_shared_keeps_exclusive(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        lm.acquire(1, ROW_B, LockMode.X)
        lm.acquire(1, TBL, LockMode.IX)
        lm.release_shared(1)
        held = lm.held(1)
        assert ROW_A not in held
        assert held[ROW_B] is LockMode.X
        assert held[TBL] is LockMode.IX

    def test_release_shared_weakens_six_to_ix(self):
        lm = LockManager()
        lm.acquire(1, TBL, LockMode.S)
        lm.acquire(1, TBL, LockMode.IX)  # -> SIX
        assert lm.holds(1, TBL, LockMode.SIX)
        lm.release_shared(1)
        assert lm.held(1)[TBL] is LockMode.IX

    def test_release_shared_unblocks_waiters(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        waiting = lm.acquire(2, ROW_A, LockMode.X)
        lm.release_shared(1)
        assert waiting.granted

    def test_release_all_fails_pending_request(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        pending = lm.acquire(2, ROW_A, LockMode.X)
        failures = []
        pending.on_fail.append(lambda r: failures.append(r.error))
        lm.release_all(2)
        assert pending.error is not None
        assert failures

    def test_release_of_queued_txn_unblocks_followers(self):
        # txn 2 queues an IX behind txn 1's S; txn 3's IS queues behind
        # txn 2 (FIFO, no overtaking) even though IS is compatible with
        # S. When txn 2 aborts while still queued — holding nothing —
        # txn 3 must be granted, not left stuck behind a ghost.
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        lm.acquire(2, ROW_A, LockMode.IX)
        follower = lm.acquire(3, ROW_A, LockMode.IS)
        assert follower.pending
        lm.release_all(2)
        assert follower.granted
        assert lm.holds(3, ROW_A, at_least=LockMode.IS)

    def test_grant_callbacks_fire(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        pending = lm.acquire(2, ROW_A, LockMode.S)
        grants = []
        pending.on_grant.append(lambda r: grants.append(r))
        lm.release_all(1)
        assert grants == [pending]


class TestDeadlocks:
    def test_two_txn_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        lm.acquire(2, ROW_B, LockMode.X)
        lm.acquire(1, ROW_B, LockMode.X)  # 1 waits on 2
        with pytest.raises(DeadlockError):
            lm.acquire(2, ROW_A, LockMode.X)  # 2 waits on 1 -> cycle
        assert lm.stats.deadlocks == 1

    def test_victim_request_removed_from_queue(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        lm.acquire(2, ROW_B, LockMode.X)
        lm.acquire(1, ROW_B, LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(2, ROW_A, LockMode.X)
        # txn2 can abort; releasing it unblocks txn1
        pending_1 = lm.waiting_request(1)
        lm.release_all(2)
        assert pending_1.granted

    def test_three_txn_cycle(self):
        lm = LockManager()
        rows = [("row", "db", "t", i) for i in range(3)]
        for txn, row in enumerate(rows, start=1):
            lm.acquire(txn, row, LockMode.X)
        lm.acquire(1, rows[1], LockMode.X)
        lm.acquire(2, rows[2], LockMode.X)
        with pytest.raises(DeadlockError):
            lm.acquire(3, rows[0], LockMode.X)

    def test_upgrade_deadlock(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.S)
        lm.acquire(2, ROW_A, LockMode.S)
        lm.acquire(1, ROW_A, LockMode.X)  # waits on 2
        with pytest.raises(DeadlockError):
            lm.acquire(2, ROW_A, LockMode.X)  # cycle through upgrades

    def test_no_false_positive_on_chain(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        lm.acquire(2, ROW_A, LockMode.X)  # 2 waits on 1
        req3 = lm.acquire(3, ROW_A, LockMode.X)  # 3 waits; no cycle
        assert not req3.granted

    def test_waits_for_edges_structure(self):
        lm = LockManager()
        lm.acquire(1, ROW_A, LockMode.X)
        lm.acquire(2, ROW_A, LockMode.S)
        edges = lm.waits_for_edges()
        assert edges == {2: {1}}
