"""Query planning: name resolution and physical plan construction.

The planner binds a parsed statement against the catalog and emits a tree
of physical operators that the executor interprets:

* access paths — ``IndexEqScan`` / ``IndexRangeScan`` when a WHERE
  conjunct matches an index prefix, ``SeqScan`` otherwise;
* joins — tables join in syntactic order; an ``IndexLookupJoin`` is used
  when the join key hits an index on the inner table, a ``HashJoin`` when
  there is an equality conjunct without an index, and a filtered
  cross-product as the last resort;
* ``Filter`` / ``Project`` / ``Aggregate`` / ``Sort`` / ``Limit`` /
  ``Distinct`` on top.

Rows flow through the plan as concatenated tuples (one slot range per
FROM-table in syntactic order), so a column reference binds to a fixed
global offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.schema import DatabaseSchema, IndexDef, TableSchema
from repro.engine.sqlparse import nodes as n
from repro.errors import SchemaError, SqlError


# -- binding ------------------------------------------------------------------


@dataclass
class Binding:
    """One FROM-clause table: its binding name and global slot range."""

    name: str          # alias or table name
    table: str         # real table name
    schema: TableSchema
    offset: int        # first global slot of this table's columns

    @property
    def width(self) -> int:
        return len(self.schema.columns)


class Scope:
    """Column-name resolution over the bound FROM tables."""

    def __init__(self, bindings: List[Binding]):
        self.bindings = bindings
        self._by_name: Dict[str, Binding] = {}
        for binding in bindings:
            if binding.name in self._by_name:
                raise SqlError(f"duplicate table binding {binding.name!r}")
            self._by_name[binding.name] = binding

    def binding(self, name: str) -> Binding:
        if name not in self._by_name:
            raise SqlError(f"unknown table {name!r}")
        return self._by_name[name]

    def resolve(self, ref: n.ColumnRef) -> int:
        """Global slot of a column reference."""
        if ref.qualifier is not None:
            binding = self.binding(ref.qualifier)
            return binding.offset + binding.schema.column_position(ref.name)
        matches = [
            b for b in self.bindings if b.schema.has_column(ref.name)
        ]
        if not matches:
            raise SqlError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise SqlError(f"ambiguous column {ref.name!r}")
        binding = matches[0]
        return binding.offset + binding.schema.column_position(ref.name)

    def column_name(self, slot: int) -> str:
        for binding in self.bindings:
            if binding.offset <= slot < binding.offset + binding.width:
                return binding.schema.columns[slot - binding.offset].name
        raise SqlError(f"slot {slot} out of range")


# -- bound expressions ---------------------------------------------------------
# The planner rewrites parser expressions into "bound" forms where column
# references carry global slots. Bound nodes reuse the parser dataclasses
# except ColumnRef, which becomes Slot.


@dataclass(frozen=True)
class Slot(n.Expr):
    """A resolved column reference: global slot index into the row tuple."""

    index: int
    name: str = ""


def bind_expr(expr: n.Expr, scope: Scope) -> n.Expr:
    """Rewrite ColumnRefs to Slots, recursively."""
    if isinstance(expr, n.ColumnRef):
        slot = scope.resolve(expr)
        return Slot(slot, str(expr))
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(expr.op, bind_expr(expr.left, scope),
                          bind_expr(expr.right, scope))
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op, bind_expr(expr.operand, scope))
    if isinstance(expr, n.InList):
        return n.InList(bind_expr(expr.expr, scope),
                        tuple(bind_expr(i, scope) for i in expr.items),
                        expr.negated)
    if isinstance(expr, n.Between):
        return n.Between(bind_expr(expr.expr, scope),
                         bind_expr(expr.low, scope),
                         bind_expr(expr.high, scope), expr.negated)
    if isinstance(expr, n.IsNull):
        return n.IsNull(bind_expr(expr.expr, scope), expr.negated)
    if isinstance(expr, n.FuncCall):
        arg = bind_expr(expr.arg, scope) if expr.arg is not None else None
        return n.FuncCall(expr.name, arg, expr.star, expr.distinct)
    if isinstance(expr, (n.Literal, n.Param, Slot)):
        return expr
    raise SqlError(f"cannot bind expression {expr!r}")


def expr_slots(expr: n.Expr) -> Set[int]:
    """All row slots an expression reads."""
    out: Set[int] = set()
    _collect_slots(expr, out)
    return out


def _collect_slots(expr: n.Expr, out: Set[int]) -> None:
    if isinstance(expr, Slot):
        out.add(expr.index)
    elif isinstance(expr, n.BinaryOp):
        _collect_slots(expr.left, out)
        _collect_slots(expr.right, out)
    elif isinstance(expr, n.UnaryOp):
        _collect_slots(expr.operand, out)
    elif isinstance(expr, n.InList):
        _collect_slots(expr.expr, out)
        for item in expr.items:
            _collect_slots(item, out)
    elif isinstance(expr, n.Between):
        _collect_slots(expr.expr, out)
        _collect_slots(expr.low, out)
        _collect_slots(expr.high, out)
    elif isinstance(expr, n.IsNull):
        _collect_slots(expr.expr, out)
    elif isinstance(expr, n.FuncCall) and expr.arg is not None:
        _collect_slots(expr.arg, out)


def contains_aggregate(expr: n.Expr) -> bool:
    if isinstance(expr, n.FuncCall):
        return True
    if isinstance(expr, n.BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, n.UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, (n.InList, n.Between, n.IsNull)):
        inner = getattr(expr, "expr")
        return contains_aggregate(inner)
    return False


# -- physical plan nodes --------------------------------------------------------


class Plan:
    """Base class for physical operators."""


@dataclass
class SeqScan(Plan):
    binding: Binding
    db: str
    lock_exclusive: bool = False   # True for UPDATE/DELETE target scans


@dataclass
class IndexEqScan(Plan):
    binding: Binding
    db: str
    index: IndexDef
    # One bound expression per index-key column prefix; evaluated against
    # the partial outer row (empty for a top-level scan).
    key_exprs: List[n.Expr] = field(default_factory=list)
    lock_exclusive: bool = False


@dataclass
class IndexRangeScan(Plan):
    binding: Binding
    db: str
    index: IndexDef
    # Single-column range on the index's first column.
    lo: Optional[n.Expr] = None
    hi: Optional[n.Expr] = None
    lo_inclusive: bool = True
    hi_inclusive: bool = True
    lock_exclusive: bool = False


@dataclass
class Filter(Plan):
    child: Plan
    predicate: n.Expr


@dataclass
class IndexLookupJoin(Plan):
    """For each outer row, probe the inner table through an index."""

    outer: Plan
    inner: Plan   # an IndexEqScan whose key_exprs read outer slots


@dataclass
class HashJoin(Plan):
    outer: Plan
    inner: Plan
    outer_keys: List[n.Expr]
    inner_keys: List[n.Expr]
    inner_width: int
    inner_offset: int


@dataclass
class CrossJoin(Plan):
    outer: Plan
    inner: Plan


@dataclass
class Project(Plan):
    child: Plan
    exprs: List[n.Expr]
    names: List[str]


@dataclass
class AggItem:
    func: str                # COUNT/SUM/AVG/MIN/MAX
    arg: Optional[n.Expr]
    star: bool
    distinct: bool
    name: str


@dataclass
class Aggregate(Plan):
    child: Plan
    group_exprs: List[n.Expr]
    aggs: List[AggItem]
    # Output layout: group values first, then aggregate values; the
    # final Project above maps them into the SELECT list.
    output_exprs: List[n.Expr]
    output_names: List[str]
    # Optional HAVING predicate over the raw (group ++ agg) layout.
    having: Optional[n.Expr] = None


@dataclass
class Sort(Plan):
    child: Plan
    keys: List[Tuple[n.Expr, bool]]  # (expr, descending)


@dataclass
class Limit(Plan):
    child: Plan
    limit: Optional[int]
    offset: int


@dataclass
class Distinct(Plan):
    child: Plan


# Post-aggregation slot: reads the aggregate operator's output row.
@dataclass(frozen=True)
class AggSlot(n.Expr):
    index: int
    name: str = ""


# -- DML plans -------------------------------------------------------------------


@dataclass
class InsertPlan(Plan):
    db: str
    table: TableSchema
    # Each row: one bound expression per table column (defaults filled).
    rows: List[List[n.Expr]]


@dataclass
class UpdatePlan(Plan):
    db: str
    binding: Binding
    source: Plan                    # yields target rows (X-locked)
    # (column position, bound expression) pairs
    assignments: List[Tuple[int, n.Expr]]


@dataclass
class DeletePlan(Plan):
    db: str
    binding: Binding
    source: Plan


@dataclass
class SelectPlan(Plan):
    root: Plan
    column_names: List[str]
    # Alternatives the cost-based optimizer priced and discarded
    # (EXPLAIN verbose); empty under the heuristic planner.
    rejected: List[str] = field(default_factory=list)


# -- planner ---------------------------------------------------------------------


class Planner:
    """Builds physical plans for one database's statements.

    With ``storage`` and a ``config`` whose ``cost_based`` flag is on,
    SELECT planning runs the cost-based optimizer stage (see
    :mod:`repro.engine.optimizer`): join order, access paths, and join
    methods are priced against the catalogue statistics, and plan nodes
    carry ``est_rows``/``est_cost`` annotations. Without them the
    original purely syntactic heuristics apply (the reference path
    behind ``EngineConfig.cost_based=False``). DML target scans always
    use the heuristic access path: their lock granularity (row X vs
    table X) is part of the concurrency behavior tests pin down.
    """

    def __init__(self, db_schema: DatabaseSchema, storage=None,
                 config=None):
        self.db = db_schema
        self.storage = storage
        self.config = config

    def _cost_model(self):
        if (self.storage is None or self.config is None
                or not self.config.cost_based):
            return None
        from repro.engine import optimizer
        return optimizer.CostModel(self.storage)

    # .. SELECT ..................................................................

    def _make_bindings(self, refs, order: List[int]
                       ) -> Tuple[List[Binding], Scope]:
        """Bindings in syntactic list order, slot offsets assigned in
        join order (``order`` permutes syntactic positions)."""
        bindings: List[Optional[Binding]] = [None] * len(refs)
        offset = 0
        for idx in order:
            ref = refs[idx]
            schema = self.db.table(ref.table)
            bindings[idx] = Binding(ref.binding, ref.table, schema, offset)
            offset += len(schema.columns)
        return bindings, Scope(bindings)

    def _bind_conjuncts(self, stmt: n.Select, scope: Scope) -> List[n.Expr]:
        conjuncts: List[n.Expr] = []
        if stmt.where is not None:
            _split_conjuncts(bind_expr(stmt.where, scope), conjuncts)
        for join in stmt.joins:
            _split_conjuncts(bind_expr(join.condition, scope), conjuncts)
        return conjuncts

    def plan_select(self, stmt: n.Select) -> SelectPlan:
        refs = list(stmt.tables) + [j.table for j in stmt.joins]
        order = list(range(len(refs)))
        model = self._cost_model()
        rejected: List[str] = []
        if model is not None and len(refs) > 1:
            from repro.engine import optimizer
            # Bind once in syntactic order purely for cardinality
            # analysis; the real bindings below re-assign slot offsets
            # in the chosen join order and everything is rebound.
            syn_bindings, syn_scope = self._make_bindings(refs, order)
            syn_conjuncts = self._bind_conjuncts(stmt, syn_scope)
            picked = optimizer.choose_join_order(syn_bindings,
                                                 syn_conjuncts, model)
            if picked is not None:
                order, notes = picked
                rejected.extend(notes)

        bindings, scope = self._make_bindings(refs, order)
        conjuncts = self._bind_conjuncts(stmt, scope)
        join_sequence = [bindings[i] for i in order]

        if model is not None:
            from repro.engine import optimizer
            root = optimizer.plan_joins(self, join_sequence, conjuncts,
                                        model, rejected)
        else:
            root = self._plan_joins(join_sequence, conjuncts)
        if stmt.for_update:
            _set_exclusive_recursive(root)

        # SELECT list
        if stmt.star:
            exprs: List[n.Expr] = []
            names: List[str] = []
            for binding in bindings:
                for i, col in enumerate(binding.schema.columns):
                    exprs.append(Slot(binding.offset + i, col.name))
                    names.append(col.name)
            items = list(zip(exprs, names))
        else:
            items = []
            for item in stmt.items:
                bound = bind_expr(item.expr, scope)
                name = item.alias or _default_name(item.expr)
                items.append((bound, name))

        has_agg = bool(stmt.group_by) or any(
            contains_aggregate(e) for e, _ in items
        )

        # ORDER BY may reference SELECT-list aliases (e.g. ORDER BY cnt).
        aliases: Dict[str, n.Expr] = {}
        for item in stmt.items:
            if item.alias:
                aliases[item.alias] = bind_expr(item.expr, scope)
        order_exprs = []
        for order in stmt.order_by:
            if (isinstance(order.expr, n.ColumnRef)
                    and order.expr.qualifier is None
                    and order.expr.name in aliases):
                bound_order = aliases[order.expr.name]
            else:
                bound_order = bind_expr(order.expr, scope)
            order_exprs.append((bound_order, order.descending))

        if has_agg:
            # The Aggregate operator emits raw rows laid out as
            # (group values ++ aggregate values); HAVING, ORDER BY, and
            # the final projection all address that raw layout via
            # AggSlot.
            agg = self._plan_aggregate(stmt, scope, root, items)
            root = agg
            if agg.having is not None:
                root = Filter(root, agg.having)
            if order_exprs:
                rewritten = [
                    (_rewrite_over_agg(expr, agg), desc)
                    for expr, desc in order_exprs
                ]
                root = Sort(root, rewritten)
            root = Project(root, agg.output_exprs, agg.output_names)
            column_names = agg.output_names
        else:
            if order_exprs and not _sort_elidable(root, order_exprs):
                root = Sort(root, order_exprs)
            root = Project(root, [e for e, _ in items], [nm for _, nm in items])
            column_names = [nm for _, nm in items]

        if stmt.distinct:
            root = Distinct(root)
        if stmt.limit is not None or stmt.offset is not None:
            root = Limit(root, stmt.limit, stmt.offset or 0)
        if model is not None:
            from repro.engine import optimizer
            optimizer.finalize_estimates(
                root, optimizer.SlotMap(bindings, model))
        return SelectPlan(root, column_names, rejected=rejected)

    def _plan_aggregate(self, stmt: n.Select, scope: Scope, child: Plan,
                        items: List[Tuple[n.Expr, str]]) -> Aggregate:
        group_exprs = [bind_expr(g, scope) for g in stmt.group_by]
        aggs: List[AggItem] = []

        def register(func: n.FuncCall, name: str) -> AggSlot:
            aggs.append(AggItem(func.name, func.arg, func.star,
                                func.distinct, name))
            return AggSlot(len(group_exprs) + len(aggs) - 1, name)

        output_exprs: List[n.Expr] = []
        output_names: List[str] = []
        for expr, name in items:
            rewritten = _rewrite_aggregates(expr, group_exprs, register, name)
            output_exprs.append(rewritten)
            output_names.append(name)
        having = None
        if stmt.having is not None:
            # HAVING may reference aggregates not in the SELECT list;
            # they register extra accumulator slots like any other.
            bound = bind_expr(stmt.having, scope)
            having = _rewrite_aggregates(bound, group_exprs, register,
                                         "having")
        return Aggregate(child, group_exprs, aggs, output_exprs,
                         output_names, having=having)

    def _plan_joins(self, bindings: List[Binding],
                    conjuncts: List[n.Expr]) -> Plan:
        remaining = list(conjuncts)
        available: Set[int] = set()

        def usable(expr: n.Expr) -> bool:
            return expr_slots(expr) <= available

        first = bindings[0]
        root, used = self._access_path(first, remaining, available)
        for conjunct in used:
            remaining.remove(conjunct)
        available |= set(range(first.offset, first.offset + first.width))
        root = self._apply_filters(root, remaining, usable)

        for binding in bindings[1:]:
            root, used = self._join_one(root, binding, remaining, available)
            for conjunct in used:
                remaining.remove(conjunct)
            available |= set(range(binding.offset,
                                   binding.offset + binding.width))
            root = self._apply_filters(root, remaining, usable)
        if remaining:
            leftovers = remaining
            raise SqlError(f"unplaceable predicates: {leftovers}")
        return root

    def _apply_filters(self, plan: Plan, remaining: List[n.Expr],
                       usable) -> Plan:
        for conjunct in [c for c in remaining if usable(c)]:
            plan = Filter(plan, conjunct)
            remaining.remove(conjunct)
        return plan

    def _access_path(self, binding: Binding, conjuncts: List[n.Expr],
                     available: Set[int]) -> Tuple[Plan, List[n.Expr]]:
        """Pick the best access path for a base table.

        Considers equality conjuncts of the form slot = constant/param
        (or = available outer slot) matching an index prefix; then a
        one-column range; falls back to a sequential scan.
        """
        local = set(range(binding.offset, binding.offset + binding.width))
        eq: Dict[str, Tuple[n.Expr, n.Expr]] = {}
        ranges: Dict[str, List[Tuple[str, n.Expr, n.Expr]]] = {}
        for conjunct in conjuncts:
            parsed = _match_comparison(conjunct, local, available)
            if parsed is None:
                continue
            op, slot_expr, other = parsed
            col = binding.schema.columns[slot_expr.index - binding.offset].name
            if op == "=":
                eq.setdefault(col, (conjunct, other))
            else:
                ranges.setdefault(col, []).append((op, conjunct, other))

        best: Optional[Tuple[IndexDef, List[str]]] = None
        for index in binding.schema.indexes.values():
            prefix: List[str] = []
            for col in index.columns:
                if col in eq:
                    prefix.append(col)
                else:
                    break
            if prefix and (best is None or len(prefix) > len(best[1])):
                best = (index, prefix)
        if best is not None:
            index, prefix = best
            used = [eq[c][0] for c in prefix]
            key_exprs = [eq[c][1] for c in prefix]
            return (IndexEqScan(binding, self.db.name, index, key_exprs), used)

        # Range on the first column of some index.
        for index in binding.schema.indexes.values():
            col = index.columns[0]
            if col in ranges:
                lo = hi = None
                lo_inc = hi_inc = True
                used = []
                for op, conjunct, other in ranges[col]:
                    if op in (">", ">=") and lo is None:
                        lo, lo_inc = other, (op == ">=")
                        used.append(conjunct)
                    elif op in ("<", "<=") and hi is None:
                        hi, hi_inc = other, (op == "<=")
                        used.append(conjunct)
                if used:
                    return (IndexRangeScan(binding, self.db.name, index,
                                           lo, hi, lo_inc, hi_inc), used)
        return SeqScan(binding, self.db.name), []

    def _join_one(self, outer: Plan, binding: Binding,
                  conjuncts: List[n.Expr],
                  available: Set[int]) -> Tuple[Plan, List[n.Expr]]:
        """Join the next table onto the running plan."""
        inner_path, used = self._access_path(binding, conjuncts, available)
        if isinstance(inner_path, (IndexEqScan, IndexRangeScan)):
            keyed = (isinstance(inner_path, IndexEqScan)
                     and any(expr_slots(e) & available
                             for e in inner_path.key_exprs))
            top_level_const = (isinstance(inner_path, IndexEqScan)
                               and not keyed)
            if keyed or top_level_const or isinstance(inner_path, IndexRangeScan):
                return IndexLookupJoin(outer, inner_path), used

        # Hash join on equality conjuncts linking outer and inner.
        local = set(range(binding.offset, binding.offset + binding.width))
        outer_keys: List[n.Expr] = []
        inner_keys: List[n.Expr] = []
        used = []
        for conjunct in conjuncts:
            if not isinstance(conjunct, n.BinaryOp) or conjunct.op != "=":
                continue
            left_slots = expr_slots(conjunct.left)
            right_slots = expr_slots(conjunct.right)
            if left_slots <= available and right_slots <= local and right_slots:
                outer_keys.append(conjunct.left)
                inner_keys.append(conjunct.right)
                used.append(conjunct)
            elif right_slots <= available and left_slots <= local and left_slots:
                outer_keys.append(conjunct.right)
                inner_keys.append(conjunct.left)
                used.append(conjunct)
        inner_scan = SeqScan(binding, self.db.name)
        if outer_keys:
            return (HashJoin(outer, inner_scan, outer_keys, inner_keys,
                             binding.width, binding.offset), used)
        return CrossJoin(outer, inner_scan), []

    # .. DML .....................................................................

    def plan_insert(self, stmt: n.Insert) -> InsertPlan:
        schema = self.db.table(stmt.table)
        columns = stmt.columns or schema.column_names
        positions = [schema.column_position(c) for c in columns]
        rows: List[List[n.Expr]] = []
        for value_row in stmt.rows:
            if len(value_row) != len(columns):
                raise SqlError(
                    f"INSERT {stmt.table}: {len(columns)} columns but "
                    f"{len(value_row)} values"
                )
            full: List[n.Expr] = [n.Literal(None)] * len(schema.columns)
            for pos, expr in zip(positions, value_row):
                full[pos] = _bind_constant(expr)
            rows.append(full)
        return InsertPlan(self.db.name, schema, rows)

    def plan_update(self, stmt: n.Update) -> UpdatePlan:
        schema = self.db.table(stmt.table)
        binding = Binding(stmt.table, stmt.table, schema, 0)
        scope = Scope([binding])
        conjuncts: List[n.Expr] = []
        if stmt.where is not None:
            _split_conjuncts(bind_expr(stmt.where, scope), conjuncts)
        source, used = self._access_path(binding, conjuncts, set())
        for conjunct in used:
            conjuncts.remove(conjunct)
        _set_exclusive(source)
        for conjunct in conjuncts:
            source = Filter(source, conjunct)
        assignments = [
            (schema.column_position(col), bind_expr(expr, scope))
            for col, expr in stmt.assignments
        ]
        return UpdatePlan(self.db.name, binding, source, assignments)

    def plan_delete(self, stmt: n.Delete) -> DeletePlan:
        schema = self.db.table(stmt.table)
        binding = Binding(stmt.table, stmt.table, schema, 0)
        scope = Scope([binding])
        conjuncts: List[n.Expr] = []
        if stmt.where is not None:
            _split_conjuncts(bind_expr(stmt.where, scope), conjuncts)
        source, used = self._access_path(binding, conjuncts, set())
        for conjunct in used:
            conjuncts.remove(conjunct)
        _set_exclusive(source)
        for conjunct in conjuncts:
            source = Filter(source, conjunct)
        return DeletePlan(self.db.name, binding, source)


def _sort_elidable(plan: Plan, order_exprs) -> bool:
    """True when the plan already streams rows in the requested order.

    Covers the common top-k pattern — ``WHERE col >= ? AND col <= ?
    ORDER BY col LIMIT k`` over an index on ``col`` — where eliding the
    sort lets LIMIT stop the scan early, bounding both work and the
    number of rows the statement locks.
    """
    if len(order_exprs) != 1:
        return False
    expr, descending = order_exprs[0]
    if descending or not isinstance(expr, Slot):
        return False
    scan = plan
    while isinstance(scan, Filter):
        scan = scan.child
    if not isinstance(scan, IndexRangeScan):
        return False
    first_col = scan.index.columns[0]
    first_slot = scan.binding.offset + scan.binding.schema.column_position(
        first_col)
    return first_slot == expr.index


def _set_exclusive(plan: Plan) -> None:
    if isinstance(plan, (SeqScan, IndexEqScan, IndexRangeScan)):
        plan.lock_exclusive = True


def _set_exclusive_recursive(plan: Plan) -> None:
    """SELECT ... FOR UPDATE: every scanned row is X-locked."""
    _set_exclusive(plan)
    for attr in ("child", "outer", "inner", "source"):
        node = getattr(plan, attr, None)
        if isinstance(node, Plan):
            _set_exclusive_recursive(node)


def _bind_constant(expr: n.Expr) -> n.Expr:
    """Bind an expression that may not reference any column."""
    if isinstance(expr, (n.Literal, n.Param)):
        return expr
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(expr.op, _bind_constant(expr.left),
                          _bind_constant(expr.right))
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op, _bind_constant(expr.operand))
    raise SqlError(f"expected a constant expression, got {expr!r}")


def _split_conjuncts(expr: n.Expr, out: List[n.Expr]) -> None:
    if isinstance(expr, n.BinaryOp) and expr.op == "AND":
        _split_conjuncts(expr.left, out)
        _split_conjuncts(expr.right, out)
    else:
        out.append(expr)


def _match_comparison(expr: n.Expr, local: Set[int], available: Set[int]):
    """Match ``local_slot OP constant-or-available`` (either side).

    Returns (op, slot_expr, other_expr) with op normalized so the slot is
    on the left, or None.
    """
    if not isinstance(expr, n.BinaryOp):
        return None
    if expr.op not in ("=", "<", "<=", ">", ">="):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    left, right = expr.left, expr.right
    if isinstance(left, Slot) and left.index in local:
        other_slots = expr_slots(right)
        if other_slots <= available and left.index not in other_slots:
            return expr.op, left, right
    if isinstance(right, Slot) and right.index in local:
        other_slots = expr_slots(left)
        if other_slots <= available and right.index not in other_slots:
            return flip[expr.op], right, left
    return None


def _default_name(expr: n.Expr) -> str:
    if isinstance(expr, n.ColumnRef):
        return expr.name
    if isinstance(expr, n.FuncCall):
        return expr.name.lower()
    return "expr"


def _rewrite_aggregates(expr: n.Expr, group_exprs: List[n.Expr],
                        register, name: str) -> n.Expr:
    """Rewrite a SELECT item over (group keys ++ aggregates) output."""
    for i, group in enumerate(group_exprs):
        if expr == group:
            return AggSlot(i, name)
    if isinstance(expr, n.FuncCall):
        return register(expr, name)
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(expr.op,
                          _rewrite_aggregates(expr.left, group_exprs,
                                              register, name),
                          _rewrite_aggregates(expr.right, group_exprs,
                                              register, name))
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op,
                         _rewrite_aggregates(expr.operand, group_exprs,
                                             register, name))
    if isinstance(expr, (n.Literal, n.Param)):
        return expr
    raise SqlError(
        f"SELECT item {name!r} must be a group key or aggregate"
    )


def _rewrite_over_agg(expr: n.Expr, agg: Aggregate) -> n.Expr:
    """Rewrite an ORDER BY expression over an Aggregate's output."""
    for i, group in enumerate(agg.group_exprs):
        if expr == group:
            return AggSlot(i, "")
    if isinstance(expr, n.FuncCall):
        for i, item in enumerate(agg.aggs):
            if (item.func == expr.name and item.arg == expr.arg
                    and item.star == expr.star):
                return AggSlot(len(agg.group_exprs) + i, "")
        raise SqlError(f"ORDER BY aggregate {expr.name} not in SELECT list")
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(expr.op, _rewrite_over_agg(expr.left, agg),
                          _rewrite_over_agg(expr.right, agg))
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op, _rewrite_over_agg(expr.operand, agg))
    if isinstance(expr, (n.Literal, n.Param)):
        return expr
    raise SqlError(f"cannot order by {expr!r} over aggregated output")
