"""Unit tests for SQL value types and NULL-aware semantics."""

import pytest

from repro.engine.types import (SqlType, coerce, like_match, sql_compare,
                                sql_eq)


class TestSqlType:
    @pytest.mark.parametrize("name,expected", [
        ("INT", SqlType.INTEGER), ("integer", SqlType.INTEGER),
        ("BIGINT", SqlType.INTEGER), ("FLOAT", SqlType.FLOAT),
        ("NUMERIC", SqlType.FLOAT), ("decimal", SqlType.FLOAT),
        ("VARCHAR", SqlType.VARCHAR), ("char", SqlType.VARCHAR),
        ("TEXT", SqlType.VARCHAR), ("DATE", SqlType.DATE),
        ("DATETIME", SqlType.DATE),
    ])
    def test_aliases(self, name, expected):
        assert SqlType.from_name(name) is expected

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            SqlType.from_name("BLOB")


class TestCoerce:
    def test_null_passes_through(self):
        assert coerce(None, SqlType.INTEGER) is None

    def test_integer_coercions(self):
        assert coerce(5, SqlType.INTEGER) == 5
        assert coerce(5.0, SqlType.INTEGER) == 5
        assert coerce("7", SqlType.INTEGER) == 7
        assert coerce(True, SqlType.INTEGER) == 1

    def test_integer_rejects_fractional(self):
        with pytest.raises(ValueError):
            coerce(5.5, SqlType.INTEGER)

    def test_float_coercions(self):
        assert coerce(5, SqlType.FLOAT) == 5.0
        assert isinstance(coerce(5, SqlType.FLOAT), float)
        assert coerce("2.5", SqlType.FLOAT) == 2.5

    def test_varchar_coercions(self):
        assert coerce("abc", SqlType.VARCHAR) == "abc"
        assert coerce(12, SqlType.VARCHAR) == "12"


class TestComparisons:
    def test_eq_null_is_unknown(self):
        assert sql_eq(None, 1) is None
        assert sql_eq(1, None) is None

    def test_eq_values(self):
        assert sql_eq(1, 1) is True
        assert sql_eq(1, 2) is False
        assert sql_eq(1, 1.0) is True
        assert sql_eq("a", "a") is True

    def test_eq_mixed_kinds_false(self):
        assert sql_eq(1, "1") is False

    def test_compare_null_is_unknown(self):
        assert sql_compare(None, 5) is None
        assert sql_compare(5, None) is None

    def test_compare_orders(self):
        assert sql_compare(1, 2) == -1
        assert sql_compare(2, 1) == 1
        assert sql_compare(2, 2) == 0
        assert sql_compare("a", "b") == -1

    def test_compare_mixed_kinds_raises(self):
        with pytest.raises(TypeError):
            sql_compare(1, "a")


class TestLike:
    @pytest.mark.parametrize("value,pattern,expected", [
        ("hello", "hello", True),
        ("hello", "h%", True),
        ("hello", "%llo", True),
        ("hello", "h_llo", True),
        ("hello", "h_o", False),
        ("hello", "%", True),
        ("", "%", True),
        ("", "_", False),
        ("abc", "a%c", True),
        ("abc", "a%%c", True),
        ("abcdef", "%cd%", True),
        ("abcdef", "%dc%", False),
        ("title42", "title4%", True),
    ])
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null_value_is_unknown(self):
        assert like_match(None, "%") is None
